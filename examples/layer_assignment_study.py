"""Compare the two layer-assignment heuristics (Tables V and VI).

Generates the 50 random layer-assignment instances, prints their
density characteristics (Table V), and compares the maximum-spanning-
tree k-coloring of [Chen et al.] with the paper's flow-based heuristic
for 2-5 available layers (Table VI).

Run:  python examples/layer_assignment_study.py
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

from repro.algorithms import coloring_cost
from repro.assign import (
    build_conflict_graph,
    flow_kcoloring,
    instance_suite,
    mst_kcoloring,
    suite_stats,
)
from repro.reporting import format_table


def main() -> None:
    suite = instance_suite()
    stats = suite_stats(suite)
    print(
        format_table(
            [
                {
                    "instances": stats.count,
                    "max_seg_density": stats.max_segment_density,
                    "avg_seg_density": stats.avg_segment_density,
                    "max_end_density": stats.max_line_end_density,
                    "avg_end_density": stats.avg_line_end_density,
                }
            ],
            title="Layer-assignment instances (Table V)",
        )
    )

    rows = []
    for k in (2, 3, 4, 5):
        mst_total = flow_total = 0.0
        for panel in suite:
            vertices, edges = build_conflict_graph(panel)
            spans = {s.index: s.span for s in panel.segments}
            mst_total += coloring_cost(edges, mst_kcoloring(vertices, edges, k))
            flow_total += coloring_cost(
                edges, flow_kcoloring(vertices, spans, edges, k)
            )
        rows.append(
            {
                "layers": k,
                "max_spanning_tree": mst_total / len(suite),
                "ours_flow_based": flow_total / len(suite),
                "improvement_pct": 100 * (1 - flow_total / mst_total),
            }
        )
    print()
    print(format_table(rows, title="Average coloring cost (Table VI)"))
    print(
        "\nThe improvement grows with the number of layers — the paper's"
        "\nargument for the flow-based heuristic on modern stacks."
    )


if __name__ == "__main__":
    main()
