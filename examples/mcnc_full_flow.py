"""Route an MCNC circuit end to end and emit the Fig. 15 style plot.

Generates the synthetic S38417 (scaled for quick turnaround), routes it
with the baseline and the stitch-aware framework, prints a Table III
style comparison, and writes ``s38417_routing.svg`` — the full-chip
routing view corresponding to Fig. 15 of the paper.

Run:  python examples/mcnc_full_flow.py [scale]
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

import sys
import time

from repro.api import BaselineRouter, StitchAwareRouter
from repro.benchmarks_gen import mcnc_design
from repro.reporting import format_table
from repro.viz import render_routing_svg


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.03
    design = mcnc_design("S38417", scale=scale)
    print(
        f"S38417 at scale {scale}: {design.num_nets} nets, "
        f"{design.num_pins} pins, die {design.width}x{design.height}, "
        f"{len(design.stitches)} stitching lines"
    )

    rows = []
    svg_source = None
    for label, router in (
        ("baseline", BaselineRouter()),
        ("stitch-aware", StitchAwareRouter()),
    ):
        start = time.perf_counter()
        result = router.route(design)
        elapsed = time.perf_counter() - start
        report = result.report
        rows.append(
            {
                "router": label,
                "rout_pct": 100 * report.routability,
                "vv": report.via_violations,
                "sp": report.short_polygons,
                "wl": report.wirelength,
                "cpu_s": elapsed,
            }
        )
        if label == "stitch-aware":
            svg_source = result.detailed_result

    print()
    print(format_table(rows, title="S38417 routing comparison (Table III row)"))

    assert svg_source is not None
    svg = render_routing_svg(svg_source)
    out = "s38417_routing.svg"
    with open(out, "w") as f:
        f.write(svg)
    print(f"\nwrote {out} (the Fig. 15 full-chip view)")


if __name__ == "__main__":
    main()
