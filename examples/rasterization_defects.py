"""The MEBL rasterization failure mechanisms (Figs. 1b, 3 and 4).

Demonstrates, on the rasterization substrate, why the three routing
constraints exist:

1. rendering + error-diffusion dithering leaves irregular pixels on
   gray feature edges (Fig. 3);
2. those pixels are a large fraction of a *short polygon*, so short
   stubs print badly — and the shorter, the worse (Fig. 4);
3. overlay error between stripes hurts vertical wires crossing a
   stitching line far more than horizontal ones (Fig. 1b).

Run:  python examples/rasterization_defects.py
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

import numpy as np

from repro.raster import (
    DitherKernel,
    Polygon,
    apply_overlay,
    boundary_error_pixels,
    dither,
    render,
    short_polygon_experiment,
)


def show(binary: np.ndarray, title: str) -> None:
    print(title)
    for row in binary:
        print("  " + "".join("#" if v else "." for v in row))


def main() -> None:
    # --- Fig. 3: irregular edge pixels from error diffusion ----------
    wire = Polygon(1.4, 3.3, 14.6, 4.8)  # off-grid wire -> gray edges
    gray = render([wire], 16, 8)
    binary = dither(gray, DitherKernel.PAPER)
    show(binary, "dithered wire (note the irregular edge pixels):")
    print(
        f"irregular pixels vs naive thresholding: "
        f"{boundary_error_pixels(binary, gray)}\n"
    )

    # --- Fig. 4: short polygons distort disproportionately -----------
    print("relative pattern error after rasterization (Fig. 4 effect):")
    print(f"  {'stub length':>12} {'relative error':>15}")
    for length in (1.5, 2.5, 4.0, 8.0, 16.0):
        score = short_polygon_experiment(length, wire_width=1.4)
        print(f"  {length:>10.1f}px {score.relative_error:>14.2f}")
    print("  -> the stitching-line stub (short polygon) prints worst\n")

    # --- Fig. 1b: overlay error across a stitching line --------------
    stitch_x = 8
    canvas = np.zeros((10, 16), dtype=np.uint8)
    canvas[5, :] = 1          # horizontal wire crossing the line
    canvas[1:9, stitch_x] = 1  # vertical wire on the line
    shifted = apply_overlay(canvas, stitch_x=stitch_x, dx=1, dy=0)
    show(shifted, "after 1px x overlay error on the right stripe:")
    horizontal_ok = bool(shifted[5, stitch_x - 1]) and bool(
        shifted[5, stitch_x + 1]
    )
    vertical_displaced = not shifted[1, stitch_x] and bool(
        shifted[1, stitch_x + 1]
    )
    print(
        f"horizontal wire still continuous: {horizontal_ok}; "
        f"vertical wire displaced off its track: {vertical_displaced}"
    )


if __name__ == "__main__":
    main()
