"""Why MEBL exists: throughput vs beam count (Section I motivation).

Sweeps the number of parallel beams for a fixed die and prints wafers
per hour, the stripe count, and therefore the number of stitching
lines the router has to live with — the trade this whole library is
about.

Run:  python examples/throughput_study.py
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

from repro.raster import WriterConfig, beams_for_target, estimate_throughput
from repro.reporting import format_table


def main() -> None:
    # A 26x33 mm die at 5 nm pixels ~ 5.2e6 x 6.6e6 pixels; scaled to
    # keep the arithmetic friendly while preserving every ratio.
    width_px, height_px = 5_200_000, 6_600_000
    base = WriterConfig(
        pixel_rate_hz=5e9, stripe_width_pixels=65_000, overhead_s=60.0
    )

    # Real MEBL systems shrink the stripe to match the beam count
    # (MAPPER: ~13k beams writing ~2 um stripes), so more parallelism
    # means more stripes *and* more stitching lines — the trade this
    # library's router exists to make safe.
    rows = []
    for beams in (1, 10, 100, 1_000, 13_000, 80_000):
        stripe = max(2_000, width_px // beams)
        config = WriterConfig(
            pixel_rate_hz=base.pixel_rate_hz,
            num_beams=beams,
            stripe_width_pixels=stripe,
            overhead_s=base.overhead_s,
        )
        est = estimate_throughput(config, width_px, height_px)
        rows.append(
            {
                "beams": beams,
                "stripes": est.num_stripes,
                "stitch_lines": est.num_stitching_lines,
                "wafer_time_s": est.write_time_s,
                "wafers_per_hour": est.wafers_per_hour,
            }
        )
    print(format_table(rows, title="MEBL throughput vs beam count"))

    target = 1.0
    needed = beams_for_target(
        WriterConfig(
            pixel_rate_hz=base.pixel_rate_hz,
            stripe_width_pixels=10_000,
            overhead_s=base.overhead_s,
        ),
        width_px,
        height_px,
        target_wafers_per_hour=target,
    )
    print(
        f"\n{target:.0f} wafer/hour at 10k-pixel stripes needs >= {needed} "
        f"beams (single-beam EBL delivers "
        f"{rows[0]['wafers_per_hour']:.4f} wafers/hour)."
    )
    print(
        "Each stripe boundary is a stitching line — the patterns this"
        "\nlibrary's router keeps critical features away from."
    )


if __name__ == "__main__":
    main()
