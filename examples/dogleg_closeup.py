"""Local view of short-polygon avoidance with doglegs (Fig. 16).

Routes a synthetic circuit with and without stitch awareness, finds a
window where the baseline produced a short polygon, and writes side by
side SVG close-ups: ``dogleg_before.svg`` (short polygons marked with
magenta circles) and ``dogleg_after.svg``.

Run:  python examples/dogleg_closeup.py
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

from repro.api import BaselineRouter, StitchAwareRouter
from repro.benchmarks_gen import mcnc_design
from repro.detailed.wiring import short_polygon_sites, trim_dangling
from repro.geometry import Rect
from repro.viz import render_routing_svg


def find_sp_window(result, design, margin=12):
    """Window around the first short polygon of a routing result."""
    assert design.stitches is not None
    for name in sorted(result.nets):
        record = result.nets[name]
        edges = trim_dangling(record.edges, record.pin_nodes)
        sites = short_polygon_sites(edges, record.pin_nodes, design.stitches)
        if sites:
            (line_x, y, _layer), _end = sites[0]
            return Rect(
                max(0, line_x - margin),
                max(0, y - margin),
                min(design.width - 1, line_x + margin),
                min(design.height - 1, y + margin),
            )
    return None


def main() -> None:
    design = mcnc_design("S13207", scale=0.05)
    print(f"routing {design.name} ({design.num_nets} nets) twice...")

    baseline = BaselineRouter().route(design)
    aware = StitchAwareRouter().route(design)
    print(
        f"short polygons: baseline={baseline.report.short_polygons}, "
        f"stitch-aware={aware.report.short_polygons}"
    )

    window = find_sp_window(baseline.detailed_result, design)
    if window is None:
        print("baseline produced no short polygon on this seed; "
              "try a different scale")
        return
    for tag, result in (("before", baseline), ("after", aware)):
        svg = render_routing_svg(result.detailed_result, window=window)
        path = f"dogleg_{tag}.svg"
        with open(path, "w") as f:
            f.write(svg)
        print(f"wrote {path} (window {window})")
    print("magenta circles mark short-polygon line ends (Fig. 16a); the "
          "stitch-aware view shows them resolved (Fig. 16b)")


if __name__ == "__main__":
    main()
