"""Make ``repro`` importable when an example runs as a plain script.

The examples are meant to run as ``python examples/<name>.py`` from
anywhere — including test harnesses that copy outputs into a temporary
working directory — without requiring an installed package or an
absolute ``PYTHONPATH``.  Python always puts the script's own directory
on ``sys.path``, so every example does ``import _bootstrap`` first and
this module pins the repository's ``src/`` directory onto the path.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
