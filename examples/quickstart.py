"""Quickstart: route a small design with the stitch-aware framework.

Builds a toy MEBL routing instance, runs both the baseline and the
stitch-aware router, and prints the violation report plus an ASCII view
of the lowest metal layer.

Run:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

from repro.api import BaselineRouter, RouterConfig, StitchAwareRouter
from repro.geometry import Point, Rect
from repro.layout import Design, Net, Netlist, Pin, Technology
from repro.viz import render_layer_ascii


def build_design() -> Design:
    """A 90x60 die, 3 metal layers, stitching lines every 15 pitches."""
    nets = []
    pin_pairs = [
        ((3, 5), (70, 40)),
        ((20, 10), (50, 50)),
        ((14, 30), (40, 30)),   # pin right next to a stitching line
        ((60, 8), (88, 55)),
        ((5, 45), (35, 12)),
        ((75, 20), (15, 55)),
    ]
    for i, (a, b) in enumerate(pin_pairs):
        nets.append(
            Net(
                f"net{i}",
                (Pin(f"net{i}.a", Point(*a), 1), Pin(f"net{i}.b", Point(*b), 1)),
            )
        )
    return Design(
        name="quickstart",
        width=90,
        height=60,
        technology=Technology(3),
        netlist=Netlist(nets),
        config=RouterConfig(),
    )


def main() -> None:
    design = build_design()
    print(f"design: {design.name}, {design.width}x{design.height} pitches, "
          f"{design.num_nets} nets, stitching lines at {list(design.stitches)}")

    for label, router in (
        ("baseline (stitch-oblivious)", BaselineRouter()),
        ("stitch-aware framework", StitchAwareRouter()),
    ):
        result = router.route(design)
        r = result.report
        print(f"\n== {label} ==")
        print(f"  routability        : {100 * r.routability:.1f}%")
        print(f"  short polygons     : {r.short_polygons}")
        print(f"  via violations     : {r.via_violations}")
        print(f"  vertical violations: {r.vertical_violations}")
        print(f"  wirelength / vias  : {r.wirelength} / {r.vias}")

    result = StitchAwareRouter().route(design)
    print("\nlayer 1 (| = stitching line, - wire, o pin, x via):")
    print(render_layer_ascii(result.detailed_result, layer=1,
                             window=Rect(0, 0, 89, 25)))


if __name__ == "__main__":
    main()
