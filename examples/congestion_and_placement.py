"""Congestion analysis and the stitch-aware placement extension.

Routes a congestion-stressed circuit, prints the line-end utilization
heat map (the quantity Table IV's vertex capacities bound), and then
applies the stitch-aware placement refinement of Section V's future
work to eliminate the fixed-pin via violations.

Run:  python examples/congestion_and_placement.py
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

from repro.api import StitchAwareRouter
from repro.benchmarks_gen import mcnc_stress_design
from repro.eval import (
    detailed_layer_utilization,
    global_congestion_stats,
    vertex_heatmap,
)
from repro.globalroute import GlobalRouter
from repro.place import refine_pin_placement
from repro.reporting import format_table


def main() -> None:
    design = mcnc_stress_design("S13207", scale=0.05)
    print(f"{design.name} (stressed): {design.num_nets} nets, "
          f"die {design.width}x{design.height}")

    # --- line-end congestion of the two global routing modes ---------
    for label, aware in (("without line-end term", False),
                         ("with line-end term", True)):
        gr = GlobalRouter(stitch_aware=aware).route(design)
        print(f"\n{label}: TVOF={gr.total_vertex_overflow} "
              f"MVOF={gr.max_vertex_overflow}")
        rows = [
            {
                "resource": s.resource,
                "mean_util": s.mean_utilization,
                "max_util": s.max_utilization,
                "overflowed": s.overflowed,
            }
            for s in global_congestion_stats(gr)
        ]
        print(format_table(rows))
        print("line-end heat map (@ = saturated):")
        print(vertex_heatmap(gr))

    # --- placement refinement (the paper's future work) --------------
    before = StitchAwareRouter().route(design)
    refinement = refine_pin_placement(design)
    after = StitchAwareRouter().route(refinement.design)
    print(
        f"\nplacement refinement: moved {refinement.moved_pins} pins "
        f"(avg shift {refinement.total_displacement / max(refinement.moved_pins, 1):.1f} "
        f"pitches), {refinement.unmovable_pins} unmovable"
    )
    print(f"via violations: {before.report.via_violations} -> "
          f"{after.report.via_violations}")
    print(f"short polygons: {before.report.short_polygons} -> "
          f"{after.report.short_polygons}")

    util = detailed_layer_utilization(after.detailed_result)
    print("\nper-layer metal utilization after routing:")
    for layer, fraction in util.items():
        print(f"  layer {layer}: {100 * fraction:.1f}%")


if __name__ == "__main__":
    main()
