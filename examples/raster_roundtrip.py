"""Route -> rasterize -> score: the full MEBL loop on real geometry.

Routes a circuit with the baseline and the stitch-aware framework,
rasterizes the short polygons each one left behind (exactly what the
MEBL data-preparation flow would print), and compares their Fig. 4
defect scores.  Also writes a PGM bitmap of one routed window so you
can look at the dithered result.

Run:  python examples/raster_roundtrip.py
"""

import _bootstrap  # noqa: F401  (repo-local import path setup)

from repro.api import BaselineRouter, StitchAwareRouter
from repro.benchmarks_gen import mcnc_design
from repro.geometry import Rect
from repro.raster import rasterize_window, save_pgm, score_short_polygons
from repro.reporting import format_table


def main() -> None:
    design = mcnc_design("S13207", scale=0.05)
    print(f"routing {design.name} ({design.num_nets} nets) twice...")

    rows = []
    for label, router in (
        ("baseline", BaselineRouter()),
        ("stitch-aware", StitchAwareRouter()),
    ):
        flow = router.route(design)
        scores = score_short_polygons(flow.detailed_result)
        rows.append(
            {
                "router": label,
                "short_polygons": len(scores),
                "mean_defect": (
                    sum(s.relative_error for s in scores) / len(scores)
                    if scores
                    else 0.0
                ),
                "worst_defect": max(
                    (s.relative_error for s in scores), default=0.0
                ),
            }
        )
        if label == "baseline":
            baseline_result = flow.detailed_result

    print()
    print(
        format_table(
            rows,
            title="Rasterized defect scores of routed short polygons",
            decimals=3,
        )
    )
    print(
        "\nEvery short polygon the stitch-aware router avoids is a wire"
        "\nstub that would have printed with the defect level above."
    )

    # A viewable bitmap of one routed window (layer 1, die corner).
    window = Rect(0, 0, 44, 29)
    gray, binary = rasterize_window(
        baseline_result, window, layer=1, pixels_per_pitch=4
    )
    save_pgm(gray, "routed_window_gray.pgm")
    save_pgm(binary, "routed_window_dithered.pgm")
    print("\nwrote routed_window_gray.pgm / routed_window_dithered.pgm "
          f"({gray.shape[1]}x{gray.shape[0]} px)")


if __name__ == "__main__":
    main()
