"""Tests for rasterizing routed geometry (routing → raster bridge)."""

import numpy as np
import pytest

from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.api import BaselineRouter
from repro.geometry import Rect
from repro.raster import (
    rasterize_window,
    score_short_polygons,
    window_polygons,
)

SPEC = SyntheticSpec(
    name="raster-bridge", nets=60, pins=160, layers=3,
    cells_per_pin=24.0, stitch_pin_fraction=0.1,
)


@pytest.fixture(scope="module")
def routed():
    design = generate_design(SPEC)
    return design, BaselineRouter().route(design).detailed_result


class TestWindowPolygons:
    def test_polygons_within_window(self, routed):
        design, result = routed
        window = Rect(0, 0, 19, 19)
        polygons = window_polygons(result, window, layer=1, pixels_per_pitch=4)
        assert polygons, "layer 1 must contain wire in a routed design"
        for poly in polygons:
            assert 0 <= poly.x0 < poly.x1 <= window.width * 4
            assert 0 <= poly.y0 < poly.y1 <= window.height * 4

    def test_invalid_wire_width(self, routed):
        _, result = routed
        with pytest.raises(ValueError):
            window_polygons(result, Rect(0, 0, 9, 9), 1, wire_width=0.0)

    def test_layer_filtering(self, routed):
        _, result = routed
        window = Rect(0, 0, 19, 19)
        l1 = window_polygons(result, window, layer=1)
        l2 = window_polygons(result, window, layer=2)
        # Horizontal wires are wider than tall and vice versa.
        if l1:
            p = l1[0]
            assert (p.x1 - p.x0) >= (p.y1 - p.y0)
        if l2:
            p = l2[0]
            assert (p.y1 - p.y0) >= (p.x1 - p.x0)


class TestRasterizeWindow:
    def test_bitmap_shapes(self, routed):
        _, result = routed
        window = Rect(0, 0, 9, 7)
        gray, binary = rasterize_window(result, window, layer=1,
                                        pixels_per_pitch=3)
        # Rect(0,0,9,7) covers 10 columns x 8 rows (inclusive bounds).
        assert gray.shape == (8 * 3, 10 * 3)
        assert binary.shape == gray.shape
        assert set(np.unique(binary)) <= {0, 1}

    def test_gray_levels_exist(self, routed):
        """Sub-pixel wire widths must produce fractional coverage."""
        _, result = routed
        window = Rect(0, 0, 19, 19)
        gray, _ = rasterize_window(result, window, layer=1)
        fractional = gray[(gray > 0.01) & (gray < 0.99)]
        assert fractional.size > 0


class TestScoreShortPolygons:
    def test_scores_match_report_sites(self, routed):
        design, result = routed
        from repro.eval import evaluate

        report = evaluate(result)
        scores = score_short_polygons(result)
        assert len(scores) == report.short_polygons

    def test_scores_have_defects(self, routed):
        _, result = routed
        scores = score_short_polygons(result, limit=5)
        if scores:  # baseline on this seed leaves short polygons
            assert all(s.relative_error >= 0 for s in scores)
            assert any(s.relative_error > 0 for s in scores)
            assert all(s.stub_length >= 1 for s in scores)

    def test_limit_respected(self, routed):
        _, result = routed
        scores = score_short_polygons(result, limit=2)
        assert len(scores) <= 2
