"""Tests for PGM image output."""

import numpy as np
import pytest

from repro.raster import load_pgm, save_pgm, to_pgm


class TestToPgm:
    def test_header(self):
        doc = to_pgm(np.zeros((2, 3)))
        lines = doc.splitlines()
        assert lines[0] == "P2"
        assert lines[1] == "3 2"
        assert lines[2] == "255"

    def test_float_scaling(self):
        doc = to_pgm(np.array([[0.0, 0.5, 1.0]]))
        assert doc.splitlines()[3] == "0 128 255"

    def test_binary_image_scaled(self):
        doc = to_pgm(np.array([[0, 1]], dtype=np.uint8))
        assert doc.splitlines()[3] == "0 255"

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            to_pgm(np.zeros(4))


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        image = np.linspace(0, 1, 12).reshape(3, 4)
        path = tmp_path / "img.pgm"
        save_pgm(image, path)
        back = load_pgm(path)
        assert back.shape == image.shape
        assert np.allclose(back, image, atol=1 / 255)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_text("not a pgm")
        with pytest.raises(ValueError):
            load_pgm(path)

    def test_load_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.pgm"
        path.write_text("P2\n3 2\n255\n0 1 2\n")
        with pytest.raises(ValueError):
            load_pgm(path)
