"""Tests for the Fig. 1b overlay-distortion study."""

import pytest

from repro.raster import (
    PATTERN_KINDS,
    overlay_study,
    pattern_distortion,
)


class TestPatternDistortion:
    def test_zero_overlay_perfect(self):
        for kind in PATTERN_KINDS:
            d = pattern_distortion(kind, (0, 0))
            assert d.distortion == 0.0

    def test_horizontal_wire_tolerates_x_shift(self):
        d = pattern_distortion("horizontal wire", (1, 0))
        assert d.distortion < 0.3

    def test_via_breaks_under_x_shift(self):
        d = pattern_distortion("via", (1, 0))
        assert d.distortion >= 0.5

    def test_vertical_wire_breaks_under_x_shift(self):
        d = pattern_distortion("vertical wire", (1, 0))
        assert d.distortion >= 0.5

    def test_bigger_overlay_no_better(self):
        small = pattern_distortion("via", (1, 0)).distortion
        large = pattern_distortion("via", (2, 0)).distortion
        assert large >= small

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            pattern_distortion("diagonal wire", (1, 0))


class TestOverlayStudy:
    def test_full_grid(self):
        rows = overlay_study(overlays=((1, 0), (0, 1)))
        assert len(rows) == len(PATTERN_KINDS) * 2

    def test_critical_patterns_always_worse(self):
        """The Fig. 1b ordering holds for every overlay tried."""
        overlays = ((1, 0), (2, 0), (1, 1))
        rows = overlay_study(overlays=overlays)
        for overlay in overlays:
            h = next(
                r.distortion
                for r in rows
                if r.pattern == "horizontal wire" and r.overlay == overlay
            )
            via = next(
                r.distortion
                for r in rows
                if r.pattern == "via" and r.overlay == overlay
            )
            assert h < via
