"""Tests for the MEBL throughput model."""

import pytest

from repro.raster import (
    WriterConfig,
    beams_for_target,
    estimate_throughput,
)

CONFIG = WriterConfig(pixel_rate_hz=1e9, stripe_width_pixels=1000)
LAYOUT = dict(layout_width_pixels=10_000, layout_height_pixels=10_000)


class TestWriterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WriterConfig(pixel_rate_hz=0)
        with pytest.raises(ValueError):
            WriterConfig(pixel_rate_hz=1e9, num_beams=0)
        with pytest.raises(ValueError):
            WriterConfig(pixel_rate_hz=1e9, stripe_width_pixels=0)


class TestEstimate:
    def test_stripe_and_stitch_counts(self):
        est = estimate_throughput(CONFIG, **LAYOUT)
        assert est.num_stripes == 10
        assert est.num_stitching_lines == 9

    def test_single_beam_slow(self):
        est = estimate_throughput(CONFIG, **LAYOUT)
        assert est.wafers_per_hour < 100

    def test_more_beams_faster(self):
        one = estimate_throughput(CONFIG, **LAYOUT)
        many = estimate_throughput(
            WriterConfig(pixel_rate_hz=1e9, stripe_width_pixels=1000,
                         num_beams=10),
            **LAYOUT,
        )
        assert many.write_time_s < one.write_time_s
        assert many.wafers_per_hour > one.wafers_per_hour

    def test_beams_beyond_stripes_saturate(self):
        ten = estimate_throughput(
            WriterConfig(pixel_rate_hz=1e9, stripe_width_pixels=1000,
                         num_beams=10),
            **LAYOUT,
        )
        hundred = estimate_throughput(
            WriterConfig(pixel_rate_hz=1e9, stripe_width_pixels=1000,
                         num_beams=100),
            **LAYOUT,
        )
        assert hundred.write_time_s == ten.write_time_s

    def test_invalid_layout(self):
        with pytest.raises(ValueError):
            estimate_throughput(CONFIG, 0, 100)


class TestBeamsForTarget:
    def test_finds_minimum_power_of_two(self):
        beams = beams_for_target(CONFIG, target_wafers_per_hour=10, **LAYOUT)
        est = estimate_throughput(
            WriterConfig(pixel_rate_hz=1e9, stripe_width_pixels=1000,
                         num_beams=beams),
            **LAYOUT,
        )
        assert est.wafers_per_hour >= 10

    def test_unreachable_target_raises(self):
        config = WriterConfig(
            pixel_rate_hz=1e9, stripe_width_pixels=1000, overhead_s=3600
        )
        with pytest.raises(ValueError):
            beams_for_target(config, target_wafers_per_hour=10, **LAYOUT)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            beams_for_target(CONFIG, target_wafers_per_hour=0, **LAYOUT)
