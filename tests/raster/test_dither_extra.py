"""Extra dithering properties across kernels."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raster import DitherKernel, dither


class TestKernelProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(list(DitherKernel)),
    )
    def test_dose_conservation_random_images(self, seed, kernel):
        """Error diffusion loses intensity only at the image borders."""
        rng = np.random.default_rng(seed)
        gray = rng.random((12, 12)) * 0.8
        out = dither(gray, kernel)
        # The diffused error that can leave the image is bounded by the
        # border length; interior dose is conserved.
        assert abs(float(out.sum()) - float(gray.sum())) <= 24

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(list(DitherKernel)))
    def test_idempotent_on_binary_input(self, kernel):
        rng = np.random.default_rng(3)
        binary = (rng.random((10, 10)) > 0.5).astype(np.float64)
        out = dither(binary, kernel)
        assert np.array_equal(out, binary.astype(np.uint8))

    def test_kernels_differ_on_gray(self):
        gray = np.full((8, 8), 0.37)
        paper = dither(gray, DitherKernel.PAPER)
        floyd = dither(gray, DitherKernel.FLOYD_STEINBERG)
        # Same average dose, different pixel patterns.
        assert abs(int(paper.sum()) - int(floyd.sum())) <= 6
        assert not np.array_equal(paper, floyd)

    def test_threshold_parameter(self):
        gray = np.full((6, 6), 0.4)
        low = dither(gray, threshold=0.3)
        high = dither(gray, threshold=0.9)
        assert low.sum() >= high.sum()
