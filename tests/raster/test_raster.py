"""Tests for rendering, dithering, overlay, and defect scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raster import (
    DitherKernel,
    Polygon,
    apply_overlay,
    boundary_error_pixels,
    dither,
    relative_pattern_error,
    render,
    short_polygon_experiment,
)


class TestPolygon:
    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Polygon(2, 2, 2, 5)
        with pytest.raises(ValueError):
            Polygon(2, 5, 4, 3)

    def test_area(self):
        assert Polygon(0, 0, 3, 2).area == 6.0


class TestRender:
    def test_full_pixel_coverage(self):
        img = render([Polygon(1, 1, 3, 2)], 5, 4)
        assert img[1, 1] == 1.0 and img[1, 2] == 1.0
        assert img[0, 1] == 0.0
        assert img.sum() == pytest.approx(2.0)

    def test_fractional_coverage(self):
        img = render([Polygon(0.5, 0.0, 1.5, 1.0)], 3, 1)
        assert img[0, 0] == pytest.approx(0.5)
        assert img[0, 1] == pytest.approx(0.5)

    def test_overlap_saturates(self):
        img = render([Polygon(0, 0, 2, 2), Polygon(0, 0, 2, 2)], 3, 3)
        assert img.max() == 1.0

    def test_outside_clipped(self):
        img = render([Polygon(-5, -5, 100, 100)], 4, 4)
        assert img.shape == (4, 4)
        assert np.all(img == 1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(0.1, 6), st.floats(0.1, 6),
        st.floats(0.1, 5), st.floats(0.1, 5),
    )
    def test_total_intensity_equals_area(self, x0, y0, w, h):
        poly = Polygon(x0, y0, x0 + w, y0 + h)
        img = render([poly], 16, 16)
        assert img.sum() == pytest.approx(poly.area, rel=1e-9)


class TestDither:
    def test_binary_output(self):
        gray = np.random.default_rng(0).random((8, 8))
        for kernel in DitherKernel:
            out = dither(gray, kernel)
            assert set(np.unique(out)) <= {0, 1}

    def test_solid_regions_unchanged(self):
        gray = np.zeros((6, 6))
        gray[2:4, 2:4] = 1.0
        out = dither(gray)
        assert np.array_equal(out, gray.astype(np.uint8))

    def test_intensity_roughly_conserved(self):
        """Error diffusion preserves total dose (up to edge losses)."""
        gray = np.full((20, 20), 0.5)
        out = dither(gray)
        assert out.sum() == pytest.approx(gray.sum(), rel=0.15)

    def test_gray_edges_create_irregular_pixels(self):
        # A half-covered column of pixels dithers to an alternating
        # pattern: some pixels disagree with naive thresholding.
        gray = np.zeros((10, 10))
        gray[:, 4] = 0.45
        out = dither(gray)
        assert boundary_error_pixels(out, gray) > 0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            dither(np.zeros(5))


class TestOverlay:
    def test_shift_right_stripe(self):
        img = np.zeros((4, 8), dtype=np.uint8)
        img[1, :] = 1  # a horizontal wire across the whole width
        shifted = apply_overlay(img, stitch_x=4, dx=0, dy=1)
        assert shifted[1, 2] == 1  # left stripe untouched
        assert shifted[1, 5] == 0
        assert shifted[2, 5] == 1  # right stripe moved down

    def test_horizontal_wire_tolerates_x_shift(self):
        """The Fig. 1b claim: horizontal wires survive overlay in x."""
        img = np.zeros((4, 8), dtype=np.uint8)
        img[1, :] = 1
        shifted = apply_overlay(img, stitch_x=4, dx=1, dy=0)
        # The wire is still continuous (row 1 connected across line).
        assert shifted[1, 3] == 1 and shifted[1, 5] == 1

    def test_vertical_wire_breaks_under_x_shift(self):
        img = np.zeros((6, 8), dtype=np.uint8)
        img[:, 4] = 1  # vertical wire exactly on the line
        shifted = apply_overlay(img, stitch_x=4, dx=1, dy=0)
        # The written wire half moved off its track.
        assert shifted[0, 4] == 0
        assert shifted[0, 5] == 1


class TestDefects:
    def test_relative_error_larger_for_shorter_stub(self):
        """The Fig. 4 effect: short polygons distort more."""
        short = short_polygon_experiment(1.5)
        long = short_polygon_experiment(12)
        assert short.relative_error > long.relative_error

    def test_monotone_trend_over_lengths(self):
        errors = [
            short_polygon_experiment(length).relative_error
            for length in (1.5, 3, 6, 12)
        ]
        assert errors[0] == max(errors)
        assert errors[-1] == min(errors)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            short_polygon_experiment(0)

    def test_relative_error_bounds(self):
        score = short_polygon_experiment(4)
        assert 0.0 <= score.relative_error < 2.0

    def test_perfect_pattern_scores_zero(self):
        # An exactly pixel-aligned rectangle dithers losslessly.
        poly = Polygon(2, 2, 6, 4)
        gray = render([poly], 10, 10)
        binary = dither(gray)
        assert relative_pattern_error(binary, poly) == 0.0
