"""Tests for the Hungarian assignment solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import hungarian, matching_cost


def brute_force_best(cost):
    n = len(cost)
    return min(
        sum(cost[i][perm[i]] for i in range(n))
        for perm in itertools.permutations(range(n))
    )


class TestHungarian:
    def test_empty(self):
        assert hungarian([]) == []

    def test_identity_cheapest(self):
        cost = [
            [0.0, 9.0, 9.0],
            [9.0, 0.0, 9.0],
            [9.0, 9.0, 0.0],
        ]
        assignment = hungarian(cost)
        assert assignment == [0, 1, 2]
        assert matching_cost(cost, assignment) == 0.0

    def test_forced_swap(self):
        cost = [[10.0, 1.0], [1.0, 10.0]]
        assert hungarian(cost) == [1, 0]

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            hungarian([[1.0, 2.0]])

    def test_assignment_is_permutation(self):
        cost = [[float((i * 3 + j) % 7) for j in range(5)] for i in range(5)]
        assignment = hungarian(cost)
        assert sorted(assignment) == list(range(5))

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda n: st.lists(
                st.lists(
                    st.floats(0, 100, allow_nan=False, allow_infinity=False),
                    min_size=n,
                    max_size=n,
                ),
                min_size=n,
                max_size=n,
            )
        )
    )
    def test_matches_brute_force(self, cost):
        assignment = hungarian(cost)
        assert sorted(assignment) == list(range(len(cost)))
        got = matching_cost(cost, assignment)
        assert got <= brute_force_best(cost) + 1e-6

    def test_negative_costs_supported(self):
        cost = [[-5.0, 0.0], [0.0, -5.0]]
        assignment = hungarian(cost)
        assert matching_cost(cost, assignment) == -10.0
