"""Tests for the greedy 1-Steiner rectilinear tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    manhattan,
    mst_edges,
    mst_length,
    steiner_points,
    steiner_tree_edges,
)


def tree_length(edges):
    return sum(manhattan(a, b) for a, b in edges)


class TestMst:
    def test_two_points(self):
        assert mst_length([(0, 0), (3, 4)]) == 7
        assert mst_edges([(0, 0), (3, 4)]) == [((0, 0), (3, 4))]

    def test_degenerate(self):
        assert mst_length([(1, 1)]) == 0
        assert mst_edges([]) == []

    def test_edges_span_all_points(self):
        points = [(0, 0), (4, 0), (2, 5), (7, 3)]
        edges = mst_edges(points)
        assert len(edges) == len(points) - 1
        touched = {p for e in edges for p in e}
        assert touched == set(points)

    def test_edges_length_matches_mst_length(self):
        points = [(0, 0), (4, 0), (2, 5), (7, 3), (1, 9)]
        assert tree_length(mst_edges(points)) == mst_length(points)


class TestSteiner:
    def test_l_corner_gains_steiner_point(self):
        """Three corner points of a rectangle: one Steiner point saves."""
        points = [(0, 0), (10, 0), (0, 10), (10, 10)]
        added = steiner_points(points)
        # A 4-point square gains nothing (MST is already optimal-ish);
        # use the classic cross instead:
        cross = [(5, 0), (0, 5), (10, 5), (5, 10)]
        added = steiner_points(cross)
        assert added, "the cross needs a centre Steiner point"
        assert (5, 5) in added

    def test_never_longer_than_mst(self):
        points = [(0, 0), (9, 1), (2, 8), (7, 7), (4, 3)]
        steiner_len = tree_length(steiner_tree_edges(points))
        assert steiner_len <= mst_length(points)

    def test_two_points_no_steiner(self):
        assert steiner_points([(0, 0), (5, 5)]) == []

    def test_duplicates_ignored(self):
        points = [(0, 0), (0, 0), (5, 0), (0, 5)]
        edges = steiner_tree_edges(points)
        assert tree_length(edges) <= mst_length([(0, 0), (5, 0), (0, 5)])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=3,
            max_size=7,
            unique=True,
        )
    )
    def test_property_improvement_and_connectivity(self, points):
        edges = steiner_tree_edges(points)
        assert tree_length(edges) <= mst_length(points)
        # Connectivity over the augmented point set.
        from repro.algorithms import DisjointSet

        ds = DisjointSet()
        for a, b in edges:
            ds.union(a, b)
        for p in points[1:]:
            assert ds.connected(points[0], p)
