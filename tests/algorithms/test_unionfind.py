"""Tests for the disjoint-set structure."""

from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import DisjointSet


class TestDisjointSet:
    def test_initial_singletons(self):
        ds = DisjointSet(range(5))
        assert ds.num_sets == 5
        assert len(ds) == 5
        assert not ds.connected(0, 1)

    def test_union_merges(self):
        ds = DisjointSet(range(4))
        assert ds.union(0, 1)
        assert ds.connected(0, 1)
        assert ds.num_sets == 3

    def test_union_idempotent(self):
        ds = DisjointSet(range(3))
        ds.union(0, 1)
        assert not ds.union(1, 0)
        assert ds.num_sets == 2

    def test_transitivity(self):
        ds = DisjointSet(range(4))
        ds.union(0, 1)
        ds.union(1, 2)
        assert ds.connected(0, 2)
        assert not ds.connected(0, 3)

    def test_lazy_add_on_find(self):
        ds = DisjointSet()
        assert ds.find("a") == "a"
        assert len(ds) == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=40,
        )
    )
    def test_matches_naive_partition(self, unions):
        ds = DisjointSet(range(10))
        groups = [{i} for i in range(10)]

        def group_of(x):
            for g in groups:
                if x in g:
                    return g
            raise AssertionError

        for a, b in unions:
            ds.union(a, b)
            ga, gb = group_of(a), group_of(b)
            if ga is not gb:
                ga |= gb
                groups.remove(gb)
        assert ds.num_sets == len(groups)
        for a in range(10):
            for b in range(10):
                assert ds.connected(a, b) == (group_of(a) is group_of(b))
