"""Tests for topological ordering and DAG longest paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import CycleError, longest_path_lengths, topological_order


class TestTopologicalOrder:
    def test_linear_chain(self):
        edges = [(0, 1, 1.0), (1, 2, 1.0)]
        order = topological_order(range(3), edges)
        assert order.index(0) < order.index(1) < order.index(2)

    def test_cycle_detected(self):
        with pytest.raises(CycleError):
            topological_order(range(2), [(0, 1, 1.0), (1, 0, 1.0)])

    def test_self_loop_detected(self):
        with pytest.raises(CycleError):
            topological_order(range(1), [(0, 0, 1.0)])

    @given(st.integers(min_value=1, max_value=15), st.data())
    def test_order_respects_random_dag(self, n, data):
        edges = []
        for u in range(n):
            for v in range(u + 1, n):
                if data.draw(st.booleans()):
                    edges.append((u, v, 1.0))
        order = topological_order(range(n), edges)
        pos = {v: i for i, v in enumerate(order)}
        assert all(pos[u] < pos[v] for u, v, _ in edges)
        assert sorted(order) == list(range(n))


class TestLongestPath:
    def test_diamond(self):
        edges = [(0, 1, 2.0), (0, 2, 5.0), (1, 3, 4.0), (2, 3, 1.0)]
        dist = longest_path_lengths(range(4), edges, sources=[0])
        assert dist[3] == 6.0  # through 0 -> 2 ... no: 0->1->3 = 6

    def test_unreachable_absent(self):
        dist = longest_path_lengths(range(3), [(0, 1, 1.0)], sources=[0])
        assert 2 not in dist

    def test_multiple_sources(self):
        edges = [(0, 2, 1.0), (1, 2, 10.0)]
        dist = longest_path_lengths(range(3), edges, sources=[0, 1])
        assert dist[2] == 10.0

    def test_weighted_edges(self):
        # The track-assignment use case: unit edges except a heavy
        # source->dummy edge modelling the stitch unfriendly width.
        edges = [("s", "d", 3.0), ("d", "a", 1.0), ("s", "a", 1.0)]
        dist = longest_path_lengths(["s", "d", "a"], edges, sources=["s"])
        assert dist["a"] == 4.0

    @given(st.integers(min_value=2, max_value=10), st.data())
    def test_longest_path_is_upper_bound_of_any_path(self, n, data):
        edges = []
        for u in range(n):
            for v in range(u + 1, n):
                if data.draw(st.booleans()):
                    w = data.draw(st.integers(min_value=0, max_value=5))
                    edges.append((u, v, float(w)))
        dist = longest_path_lengths(range(n), edges, sources=[0])
        # Every edge relaxation is tight or slack, never violated.
        for u, v, w in edges:
            if u in dist:
                assert dist[v] >= dist[u] + w - 1e-9
