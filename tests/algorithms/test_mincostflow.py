"""Tests for the successive-shortest-path min-cost max-flow solver."""


import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import MinCostFlow


class TestBasics:
    def test_single_edge(self):
        net = MinCostFlow()
        net.add_edge("s", "t", capacity=3, cost=2.0)
        flow, cost = net.min_cost_flow("s", "t")
        assert flow == 3
        assert cost == 6.0

    def test_prefers_cheap_path(self):
        net = MinCostFlow()
        cheap = net.add_edge("s", "t", capacity=1, cost=1.0)
        pricey = net.add_edge("s", "t", capacity=1, cost=5.0)
        flow, cost = net.min_cost_flow("s", "t", max_flow=1)
        assert (flow, cost) == (1, 1.0)
        assert net.flow_on(cheap) == 1
        assert net.flow_on(pricey) == 0

    def test_max_flow_cap_respected(self):
        net = MinCostFlow()
        net.add_edge("s", "t", capacity=10, cost=1.0)
        flow, _ = net.min_cost_flow("s", "t", max_flow=4)
        assert flow == 4

    def test_disconnected(self):
        net = MinCostFlow()
        net.node("s")
        net.node("t")
        flow, cost = net.min_cost_flow("s", "t")
        assert (flow, cost) == (0, 0.0)

    def test_negative_cost_edges(self):
        net = MinCostFlow()
        e1 = net.add_edge("s", "a", capacity=1, cost=-5.0)
        net.add_edge("a", "t", capacity=1, cost=1.0)
        net.add_edge("s", "t", capacity=1, cost=0.0)
        flow, cost = net.min_cost_flow("s", "t", max_flow=2)
        assert flow == 2
        assert cost == -4.0
        assert net.flow_on(e1) == 1

    def test_negative_capacity_rejected(self):
        net = MinCostFlow()
        with pytest.raises(ValueError):
            net.add_edge("s", "t", capacity=-1, cost=0.0)

    def test_bottleneck_through_middle(self):
        net = MinCostFlow()
        net.add_edge("s", "m", capacity=5, cost=1.0)
        net.add_edge("m", "t", capacity=2, cost=1.0)
        flow, cost = net.min_cost_flow("s", "t")
        assert (flow, cost) == (2, 4.0)


def random_graph_cases():
    return st.tuples(
        st.integers(min_value=2, max_value=6),
        st.lists(
            st.tuples(
                st.integers(0, 5),
                st.integers(0, 5),
                st.integers(0, 4),
                st.integers(0, 9),
            ),
            max_size=12,
        ),
    )


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(random_graph_cases())
    def test_min_cost_matches_networkx(self, case):
        n, raw_edges = case
        edges = [
            (u % n, v % n, cap, cost)
            for u, v, cap, cost in raw_edges
            if u % n != v % n
        ]
        ours = MinCostFlow()
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u, v, cap, cost in edges:
            ours.add_edge(u, v, capacity=cap, cost=float(cost))
            if g.has_edge(u, v):
                g[u][v]["capacity"] += cap
            else:
                g.add_edge(u, v, capacity=cap, weight=cost)
        # networkx max_flow_min_cost requires consistent parallel edges;
        # merging capacities is only valid when costs match, so rebuild
        # with a MultiDiGraph-free approach: skip cases with parallel
        # edges of differing costs.
        seen = {}
        ok = True
        for u, v, _cap, cost in edges:
            if (u, v) in seen and seen[(u, v)] != cost:
                ok = False
            seen[(u, v)] = cost
        if not ok:
            return
        source, sink = 0, n - 1
        flow_value, flow_cost = ours.min_cost_flow(source, sink)
        mincostflow = nx.max_flow_min_cost(g, source, sink)
        expected_flow = sum(mincostflow[source].values()) - sum(
            flows.get(source, 0) for flows in mincostflow.values()
        )
        expected_cost = nx.cost_of_flow(g, mincostflow)
        assert flow_value == expected_flow
        assert abs(flow_cost - expected_cost) < 1e-6


class TestFlowConservation:
    def test_flow_on_reports_per_edge(self):
        net = MinCostFlow()
        a = net.add_edge("s", "a", 2, 1.0)
        b = net.add_edge("s", "b", 2, 1.0)
        net.add_edge("a", "t", 1, 0.0)
        net.add_edge("b", "t", 1, 0.0)
        flow, _ = net.min_cost_flow("s", "t")
        assert flow == 2
        assert net.flow_on(a) == 1
        assert net.flow_on(b) == 1
