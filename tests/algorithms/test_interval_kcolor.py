"""Tests for Carlisle–Lloyd max-weight k-colorable interval subsets."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    greedy_interval_coloring,
    is_k_colorable,
    max_weight_k_colorable,
)
from repro.geometry import Interval, max_overlap_density


def brute_force_best_weight(intervals, weights, k):
    best = 0.0
    for r in range(len(intervals) + 1):
        for subset in itertools.combinations(range(len(intervals)), r):
            chosen = [intervals[i] for i in subset]
            if max_overlap_density(chosen) <= k:
                best = max(best, sum(weights[i] for i in subset))
    return best


def interval_case():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=12),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=0,
        max_size=8,
    ).map(
        lambda items: (
            [Interval(lo, lo + span) for lo, span, _ in items],
            [float(w) for _, _, w in items],
        )
    )


class TestMaxWeightKColorable:
    def test_empty(self):
        selected, colors = max_weight_k_colorable([], [], 2)
        assert selected == [] and colors == {}

    def test_disjoint_all_selected(self):
        ivs = [Interval(0, 1), Interval(3, 4), Interval(6, 7)]
        selected, colors = max_weight_k_colorable(ivs, [1.0, 1.0, 1.0], 1)
        assert selected == [0, 1, 2]
        assert set(colors.values()) == {0}

    def test_overlapping_pair_k1_picks_heavier(self):
        ivs = [Interval(0, 5), Interval(3, 8)]
        selected, _ = max_weight_k_colorable(ivs, [2.0, 7.0], 1)
        assert selected == [1]

    def test_endpoint_touch_counts_as_overlap(self):
        ivs = [Interval(0, 3), Interval(3, 6)]
        selected, _ = max_weight_k_colorable(ivs, [1.0, 1.0], 1)
        assert len(selected) == 1

    def test_k2_takes_both(self):
        ivs = [Interval(0, 5), Interval(3, 8)]
        selected, colors = max_weight_k_colorable(ivs, [2.0, 7.0], 2)
        assert selected == [0, 1]
        assert colors[0] != colors[1]

    def test_heavier_duplicate_wins(self):
        ivs = [Interval(0, 5), Interval(0, 5)]
        selected, _ = max_weight_k_colorable(ivs, [0.0, 3.0], 1)
        assert 1 in selected
        assert len(selected) == 1

    @settings(max_examples=60, deadline=None)
    @given(interval_case(), st.integers(min_value=1, max_value=3))
    def test_optimal_weight(self, case, k):
        intervals, weights = case
        selected, colors = max_weight_k_colorable(intervals, weights, k)
        got = sum(weights[i] for i in selected)
        assert abs(got - brute_force_best_weight(intervals, weights, k)) < 1e-6

    @settings(max_examples=60, deadline=None)
    @given(interval_case(), st.integers(min_value=1, max_value=3))
    def test_coloring_is_proper(self, case, k):
        intervals, weights = case
        selected, colors = max_weight_k_colorable(intervals, weights, k)
        assert sorted(colors) == sorted(selected)
        for i, j in itertools.combinations(selected, 2):
            if intervals[i].overlaps(intervals[j]):
                assert colors[i] != colors[j]
        assert all(0 <= c < k for c in colors.values())


class TestIsKColorable:
    def test_density_bound(self):
        ivs = [Interval(0, 4), Interval(1, 5), Interval(2, 6)]
        assert not is_k_colorable(ivs, 2)
        assert is_k_colorable(ivs, 3)


class TestGreedyColoring:
    def test_uses_minimum_colors(self):
        ivs = [Interval(0, 4), Interval(1, 5), Interval(2, 6), Interval(7, 9)]
        colors = greedy_interval_coloring(ivs)
        assert len(set(colors.values())) == max_overlap_density(ivs) == 3

    @given(interval_case())
    def test_proper_and_optimal(self, case):
        intervals, _ = case
        colors = greedy_interval_coloring(intervals)
        for i, j in itertools.combinations(range(len(intervals)), 2):
            if intervals[i].overlaps(intervals[j]):
                assert colors[i] != colors[j]
        if intervals:
            assert len(set(colors.values())) == max_overlap_density(intervals)
