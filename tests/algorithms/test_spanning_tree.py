"""Tests for maximum spanning forests and depth-based tree coloring."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import (
    DisjointSet,
    color_forest_by_depth,
    coloring_cost,
    maximum_spanning_forest,
)


def brute_force_max_spanning_weight(vertices, edges):
    """Max total weight over all spanning forests (tiny graphs only)."""
    best = 0.0
    for r in range(len(edges) + 1):
        for subset in itertools.combinations(edges, r):
            ds = DisjointSet(vertices)
            acyclic = all(ds.union(u, v) for u, v, _ in subset)
            if acyclic:
                best = max(best, sum(w for _, _, w in subset))
    return best


class TestMaximumSpanningForest:
    def test_triangle_drops_lightest(self):
        edges = [("a", "b", 3.0), ("b", "c", 2.0), ("a", "c", 1.0)]
        forest = maximum_spanning_forest(["a", "b", "c"], edges)
        assert sorted(w for _, _, w in forest) == [2.0, 3.0]

    def test_disconnected_components(self):
        edges = [("a", "b", 1.0), ("c", "d", 2.0)]
        forest = maximum_spanning_forest("abcd", edges)
        assert len(forest) == 2

    def test_empty_graph(self):
        assert maximum_spanning_forest(["a"], []) == []

    @given(
        st.integers(min_value=2, max_value=6).flatmap(
            lambda n: st.lists(
                st.tuples(
                    st.integers(0, n - 1),
                    st.integers(0, n - 1),
                    st.floats(0, 10, allow_nan=False),
                ),
                max_size=8,
            ).map(lambda es: (n, [(u, v, w) for u, v, w in es if u != v]))
        )
    )
    def test_weight_matches_brute_force(self, case):
        n, edges = case
        vertices = list(range(n))
        forest = maximum_spanning_forest(vertices, edges)
        got = sum(w for _, _, w in forest)
        assert abs(got - brute_force_max_spanning_weight(vertices, edges)) < 1e-9

    def test_forest_is_acyclic_and_spanning(self):
        edges = [
            (u, v, float((u * 7 + v) % 5))
            for u in range(6)
            for v in range(u + 1, 6)
        ]
        forest = maximum_spanning_forest(range(6), edges)
        ds = DisjointSet(range(6))
        for u, v, _ in forest:
            assert ds.union(u, v), "forest must be acyclic"
        assert ds.num_sets == 1


class TestColorForestByDepth:
    def test_path_alternates(self):
        edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]
        colors = color_forest_by_depth(range(4), edges, 2)
        assert colors[0] != colors[1]
        assert colors[1] != colors[2]
        assert colors[2] != colors[3]

    def test_tree_edges_always_bichromatic(self):
        edges = [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (1, 4, 1.0)]
        for k in (2, 3, 4):
            colors = color_forest_by_depth(range(5), edges, k)
            for u, v, _ in edges:
                assert colors[u] != colors[v]
            assert set(colors.values()) <= set(range(k))

    def test_isolated_vertices_colored(self):
        colors = color_forest_by_depth(range(3), [], 2)
        assert set(colors) == {0, 1, 2}

    def test_k_one_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            color_forest_by_depth(range(2), [(0, 1, 1.0)], 1)


class TestColoringCost:
    def test_counts_monochromatic_weight(self):
        edges = [(0, 1, 5.0), (1, 2, 3.0)]
        colors = {0: 0, 1: 0, 2: 1}
        assert coloring_cost(edges, colors) == 5.0

    def test_zero_when_proper(self):
        edges = [(0, 1, 5.0)]
        assert coloring_cost(edges, {0: 0, 1: 1}) == 0.0
