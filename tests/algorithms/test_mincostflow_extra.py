"""Additional min-cost flow scenarios exercised by the layer assigner."""

import pytest

from repro.algorithms import MinCostFlow


class TestCarlisleLloydShapes:
    """Networks shaped like the interval-selection reduction."""

    def build_spine(self, coords, k):
        net = MinCostFlow()
        for a, b in zip(coords, coords[1:]):
            net.add_edge(("x", a), ("x", b), capacity=k, cost=0.0)
        return net

    def test_spine_always_carries_k(self):
        net = self.build_spine([0, 1, 2, 3], k=3)
        flow, cost = net.min_cost_flow(("x", 0), ("x", 3), max_flow=3)
        assert flow == 3
        assert cost == 0.0

    def test_profitable_bypass_taken(self):
        net = self.build_spine([0, 1, 2, 3], k=2)
        bypass = net.add_edge(("x", 0), ("x", 2), capacity=1, cost=-7.0)
        flow, cost = net.min_cost_flow(("x", 0), ("x", 3), max_flow=2)
        assert flow == 2
        assert cost == -7.0
        assert net.flow_on(bypass) == 1

    def test_conflicting_bypasses_capacity_limited(self):
        # Two overlapping "intervals" both want the same unit of spine
        # headroom (k=1): only the heavier one fits.
        net = self.build_spine([0, 1, 2, 3], k=1)
        light = net.add_edge(("x", 0), ("x", 2), capacity=1, cost=-3.0)
        heavy = net.add_edge(("x", 1), ("x", 3), capacity=1, cost=-8.0)
        flow, cost = net.min_cost_flow(("x", 0), ("x", 3), max_flow=1)
        assert flow == 1
        assert cost == -8.0
        assert net.flow_on(heavy) == 1
        assert net.flow_on(light) == 0

    def test_disjoint_bypasses_share_one_unit(self):
        net = self.build_spine([0, 1, 2, 3, 4], k=1)
        first = net.add_edge(("x", 0), ("x", 2), capacity=1, cost=-3.0)
        second = net.add_edge(("x", 2), ("x", 4), capacity=1, cost=-5.0)
        flow, cost = net.min_cost_flow(("x", 0), ("x", 4), max_flow=1)
        assert flow == 1
        assert cost == -8.0
        assert net.flow_on(first) == 1 and net.flow_on(second) == 1

    def test_fractional_free_reuse(self):
        """Residual edges let a later unit re-route an earlier one."""
        net = MinCostFlow()
        net.add_edge("s", "a", 1, 1.0)
        net.add_edge("s", "b", 1, 5.0)
        net.add_edge("a", "t", 1, 1.0)
        net.add_edge("b", "t", 1, 1.0)
        net.add_edge("a", "b", 1, 0.0)
        flow, cost = net.min_cost_flow("s", "t")
        assert flow == 2
        assert cost == pytest.approx(8.0)
