"""Tests for RouterConfig validation and benchmark scaling."""

import dataclasses

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    Engine,
    RouterConfig,
    benchmark_scale,
    resolve_engine,
)


class TestRouterConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_CONFIG.stitch_spacing == 15
        assert DEFAULT_CONFIG.epsilon == 1
        assert DEFAULT_CONFIG.escape_width == 4
        assert (DEFAULT_CONFIG.alpha, DEFAULT_CONFIG.beta, DEFAULT_CONFIG.gamma) == (
            1.0,
            10.0,
            5.0,
        )

    def test_beta_much_larger_than_gamma(self):
        """Section IV: beta must dominate gamma."""
        assert DEFAULT_CONFIG.beta > DEFAULT_CONFIG.gamma

    def test_tiny_spacing_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(stitch_spacing=2)

    def test_overlapping_unfriendly_regions_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(stitch_spacing=5, epsilon=2)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(alpha=-1.0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(epsilon=-1)

    def test_tiny_tile_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig(tile_size=1)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.alpha = 2.0  # type: ignore[misc]


class TestBenchmarkScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert benchmark_scale(default=0.2) == 0.2

    def test_full_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.setenv("REPRO_SCALE", "0.3")
        assert benchmark_scale() == 1.0

    def test_explicit_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert benchmark_scale() == 0.25

    def test_oversize_scale_for_speedup_runs(self, monkeypatch):
        # Factors above 1 (up to 100) grow instances beyond the
        # paper's statistics for engine-speedup measurements.
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "10")
        assert benchmark_scale() == 10.0

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        for bad in ("0", "-0.5", "101"):
            monkeypatch.setenv("REPRO_SCALE", bad)
            with pytest.raises(ValueError):
                benchmark_scale()


class TestWorkersValidation:
    def test_default_is_serial(self):
        assert DEFAULT_CONFIG.workers == 1

    def test_accepts_positive_counts(self):
        assert RouterConfig(workers=4).workers == 4

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            RouterConfig(workers=0)
        with pytest.raises(ValueError):
            RouterConfig(workers=-2)

    def test_rejects_non_integers(self):
        with pytest.raises(ValueError):
            RouterConfig(workers=2.5)
        with pytest.raises(ValueError):
            RouterConfig(workers=True)
        with pytest.raises(ValueError):
            RouterConfig(workers="4")


class TestAuditFlag:
    def test_default_is_off(self):
        assert DEFAULT_CONFIG.audit is False

    def test_accepts_bools(self):
        assert RouterConfig(audit=True).audit is True
        assert RouterConfig(audit=False).audit is False

    def test_rejects_non_bools(self):
        with pytest.raises(ValueError):
            RouterConfig(audit=1)
        with pytest.raises(ValueError):
            RouterConfig(audit="yes")


class TestProfileField:
    def test_default_is_off(self):
        assert DEFAULT_CONFIG.profile == "off"

    def test_accepts_known_levels(self):
        assert RouterConfig(profile="counters").profile == "counters"
        assert RouterConfig(profile="full").profile == "full"

    def test_rejects_unknown_levels(self):
        with pytest.raises(ValueError):
            RouterConfig(profile="verbose")
        with pytest.raises(ValueError):
            RouterConfig(profile=True)


class TestEngineField:
    def test_default_is_auto(self):
        assert DEFAULT_CONFIG.engine is Engine.AUTO

    def test_accepts_enum_and_string(self):
        assert RouterConfig(engine=Engine.ARRAY).engine is Engine.ARRAY
        assert RouterConfig(engine="object").engine is Engine.OBJECT
        assert RouterConfig(engine="auto").engine is Engine.AUTO

    def test_rejects_unknown_engines(self):
        with pytest.raises(ValueError):
            RouterConfig(engine="vectorized")
        with pytest.raises(ValueError):
            RouterConfig(engine=3)

    def test_resolve_never_returns_auto(self):
        assert resolve_engine(Engine.OBJECT) is Engine.OBJECT
        assert resolve_engine("array") is Engine.ARRAY
        assert resolve_engine(Engine.AUTO) in (Engine.OBJECT, Engine.ARRAY)

    def test_auto_prefers_array_with_numpy(self):
        pytest.importorskip("numpy")
        assert resolve_engine(Engine.AUTO) is Engine.ARRAY
