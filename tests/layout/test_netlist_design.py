"""Tests for netlist containers and the Design instance."""

import pytest

from repro.config import RouterConfig
from repro.geometry import Point, Rect
from repro.layout import Design, Net, Netlist, Pin, StitchingLines, Technology


def two_pin_net(name, a, b, layer=1):
    return Net(
        name,
        (
            Pin(f"{name}.1", Point(*a), layer),
            Pin(f"{name}.2", Point(*b), layer),
        ),
    )


class TestNet:
    def test_single_pin_rejected(self):
        with pytest.raises(ValueError):
            Net("n", (Pin("p", Point(0, 0)),))

    def test_bbox_and_hpwl(self):
        net = two_pin_net("n", (1, 2), (4, 6))
        assert net.bbox == Rect(1, 2, 4, 6)
        assert net.hpwl == 7


class TestNetlist:
    def test_duplicate_names_rejected(self):
        nets = [two_pin_net("n", (0, 0), (1, 1))] * 2
        with pytest.raises(ValueError):
            Netlist(nets)

    def test_lookup(self):
        nl = Netlist([two_pin_net("a", (0, 0), (1, 1))])
        assert nl["a"].name == "a"
        assert "a" in nl and "b" not in nl
        assert nl.num_pins == 2

    def test_bbox(self):
        nl = Netlist(
            [
                two_pin_net("a", (0, 0), (2, 2)),
                two_pin_net("b", (5, 1), (6, 8)),
            ]
        )
        assert nl.bbox() == Rect(0, 0, 6, 8)

    def test_empty_bbox_raises(self):
        with pytest.raises(ValueError):
            Netlist([]).bbox()


class TestTechnology:
    def test_alternating_directions(self):
        tech = Technology(4)
        assert tech.is_horizontal(1)
        assert tech.is_vertical(2)
        assert tech.is_horizontal(3)
        assert tech.is_vertical(4)
        assert tech.horizontal_layers == [1, 3]
        assert tech.vertical_layers == [2, 4]

    def test_single_layer_rejected(self):
        with pytest.raises(ValueError):
            Technology(1)

    def test_out_of_range_layer(self):
        with pytest.raises(ValueError):
            Technology(3).direction(4)


class TestDesign:
    def make(self, **kwargs):
        nl = Netlist([two_pin_net("a", (1, 1), (20, 20))])
        defaults = dict(
            name="t",
            width=46,
            height=46,
            technology=Technology(3),
            netlist=nl,
        )
        defaults.update(kwargs)
        return Design(**defaults)

    def test_default_stitches_built(self):
        d = self.make()
        assert d.stitches is not None
        assert d.stitches.xs == (15, 30, 45)

    def test_pin_outside_die_rejected(self):
        nl = Netlist([two_pin_net("a", (1, 1), (100, 1))])
        with pytest.raises(ValueError):
            self.make(netlist=nl)

    def test_pin_on_bad_layer_rejected(self):
        nl = Netlist([two_pin_net("a", (1, 1), (2, 2), layer=9)])
        with pytest.raises(ValueError):
            self.make(netlist=nl)

    def test_pin_on_stitch_line(self):
        d = self.make()
        assert d.pin_on_stitch_line(Point(15, 3))
        assert not d.pin_on_stitch_line(Point(16, 3))

    def test_summary(self):
        s = self.make().summary()
        assert s["circuit"] == "t"
        assert s["nets"] == 1
        assert s["pins"] == 2
        assert s["stitch_lines"] == 3

    def test_explicit_stitches_respected(self):
        lines = StitchingLines((10,))
        d = self.make(stitches=lines)
        assert d.stitches is lines

    def test_config_spacing_respected(self):
        d = self.make(config=RouterConfig(stitch_spacing=10, tile_size=10))
        assert d.stitches.xs == (10, 20, 30, 40)
