"""Extra technology-stack cases: VHV stacks and deep stacks."""

import pytest

from repro.layout import Direction, Technology


class TestAlternativeStacks:
    def test_vhv_stack(self):
        tech = Technology(3, first_direction=Direction.VERTICAL)
        assert tech.is_vertical(1)
        assert tech.is_horizontal(2)
        assert tech.is_vertical(3)
        assert tech.vertical_layers == [1, 3]
        assert tech.horizontal_layers == [2]

    def test_deep_stack_partitions_layers(self):
        tech = Technology(8)
        assert len(tech.horizontal_layers) == 4
        assert len(tech.vertical_layers) == 4
        assert set(tech.horizontal_layers) | set(tech.vertical_layers) == set(
            tech.layers
        )
        assert not set(tech.horizontal_layers) & set(tech.vertical_layers)

    def test_directions_strictly_alternate(self):
        tech = Technology(6)
        for a, b in zip(tech.layers, list(tech.layers)[1:]):
            assert tech.direction(a) != tech.direction(b)

    def test_layer_zero_rejected(self):
        with pytest.raises(ValueError):
            Technology(4).direction(0)
