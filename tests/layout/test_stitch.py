"""Tests for stitching lines and stitch-unfriendly regions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import RouterConfig
from repro.geometry import Interval
from repro.layout import StitchingLines


class TestConstruction:
    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            StitchingLines((10, 5))

    def test_duplicates_raise(self):
        with pytest.raises(ValueError):
            StitchingLines((5, 5))

    def test_uniform_spacing(self):
        lines = StitchingLines.uniform(61, RouterConfig(stitch_spacing=15))
        assert lines.xs == (15, 30, 45, 60)

    def test_uniform_excludes_width(self):
        # A line at x == width would lie outside the die.
        lines = StitchingLines.uniform(45, RouterConfig(stitch_spacing=15))
        assert lines.xs == (15, 30)


class TestQueries:
    lines = StitchingLines((15, 30), epsilon=1, escape_width=4)

    def test_is_on_line(self):
        assert self.lines.is_on_line(15)
        assert not self.lines.is_on_line(16)

    def test_nearest_line(self):
        assert self.lines.nearest_line(0) == 15
        assert self.lines.nearest_line(22) == 15
        assert self.lines.nearest_line(23) == 30

    def test_nearest_line_empty(self):
        assert StitchingLines(()).nearest_line(5) is None

    def test_unfriendly_region(self):
        for x in (14, 15, 16):
            assert self.lines.in_unfriendly_region(x)
        assert not self.lines.in_unfriendly_region(13)
        assert not self.lines.in_unfriendly_region(17)

    def test_escape_region_excludes_line(self):
        assert not self.lines.in_escape_region(15)
        for x in (11, 12, 13, 14, 16, 17, 18, 19):
            assert self.lines.in_escape_region(x)
        assert not self.lines.in_escape_region(10)

    def test_lines_crossing_strict(self):
        # A wire ending exactly on the line is not cut in two.
        assert self.lines.lines_crossing(Interval(10, 20)) == [15]
        assert self.lines.lines_crossing(Interval(15, 20)) == []
        assert self.lines.lines_crossing(Interval(10, 15)) == []
        assert self.lines.lines_crossing(Interval(0, 45)) == [15, 30]

    def test_lines_in_range_inclusive(self):
        assert self.lines.lines_in_range(15, 30) == [15, 30]
        assert self.lines.lines_in_range(16, 29) == []

    def test_usable_vertical_tracks(self):
        # [10, 20] has 11 tracks, one occupied by the line at 15.
        assert self.lines.usable_vertical_tracks(10, 20) == 10

    def test_friendly_vertical_tracks(self):
        # [10, 20]: tracks 14, 15, 16 are unfriendly -> 8 remain.
        assert self.lines.friendly_vertical_tracks(10, 20) == 8


@given(
    st.integers(min_value=40, max_value=400),
    st.integers(min_value=5, max_value=40),
)
def test_uniform_lines_inside_die_and_spaced(width, spacing):
    lines = StitchingLines.uniform(width, RouterConfig(stitch_spacing=spacing))
    assert all(0 < x < width for x in lines)
    gaps = [b - a for a, b in zip(lines.xs, lines.xs[1:])]
    assert all(g == spacing for g in gaps)


@given(st.integers(min_value=0, max_value=100))
def test_region_nesting(x):
    """The unfriendly region is a subset of {line} union escape region."""
    lines = StitchingLines((20, 60), epsilon=1, escape_width=4)
    if lines.in_unfriendly_region(x):
        assert lines.is_on_line(x) or lines.in_escape_region(x)
