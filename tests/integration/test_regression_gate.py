"""The benchmark regression gate runs green against committed baselines.

This is the same check the ``regression-gate`` CI job performs; having
it in the tier-1 suite means a PR that changes routing behavior cannot
land without refreshing ``benchmarks/baselines/`` (the gate fails) and
a PR that refreshes baselines cannot drift from the code (this test
fails).
"""

import importlib.util
import json
import pathlib
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
GATE = REPO / "benchmarks" / "regression.py"


@pytest.fixture(scope="module")
def regression():
    spec = importlib.util.spec_from_file_location("regression", GATE)
    module = importlib.util.module_from_spec(spec)
    sys.modules["regression"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("regression", None)


def test_gate_passes_against_committed_baselines(regression, capsys, tmp_path):
    code = regression.main(
        ["--only", "S9234", "--no-wall", "--out-dir", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "regression gate passed" in out
    # The CI artifact copy is a loadable BENCH document.
    produced = tmp_path / "BENCH_S9234.json"
    assert produced.exists()
    traces = regression.load_traces(produced)
    assert set(traces) == {"baseline", "stitch-aware"}


def test_gate_fails_on_injected_counter_regression(
    regression, capsys, tmp_path, monkeypatch
):
    # Copy the committed baseline, bump one deterministic counter, and
    # point the gate at the tampered copy.
    src = regression.baseline_path("S9234")
    doc = json.loads(src.read_text())
    spans = doc["stitch-aware"]["spans"]

    def bump_first_counter(span_list):
        for span in span_list:
            for name in span.get("counters", {}):
                span["counters"][name] += 1
                return True
            if bump_first_counter(span.get("children", [])):
                return True
        return False

    assert bump_first_counter(spans)
    baseline_dir = tmp_path / "baselines"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_S9234.json").write_text(json.dumps(doc))
    monkeypatch.setattr(regression, "BASELINE_DIR", baseline_dir)

    code = regression.main(["--only", "S9234", "--no-wall"])
    out = capsys.readouterr().out
    assert code == 1
    assert "regression gate FAILED" in out
    assert "counter" in out


def test_gate_reports_missing_baseline(regression, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(regression, "BASELINE_DIR", tmp_path / "nowhere")
    code = regression.main(["--only", "S9234", "--no-wall"])
    out = capsys.readouterr().out
    assert code == 1
    assert "missing baseline" in out


def test_gate_rejects_unknown_circuit(regression):
    with pytest.raises(SystemExit):
        regression.main(["--only", "NotACircuit"])
