"""The benchmark regression gate runs green against committed baselines.

This is the same check the ``regression-gate`` CI job performs; having
it in the tier-1 suite means a PR that changes routing behavior cannot
land without refreshing ``benchmarks/baselines/`` (the gate fails) and
a PR that refreshes baselines cannot drift from the code (this test
fails).
"""

import importlib.util
import json
import pathlib
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
GATE = REPO / "benchmarks" / "regression.py"


@pytest.fixture(scope="module")
def regression():
    spec = importlib.util.spec_from_file_location("regression", GATE)
    module = importlib.util.module_from_spec(spec)
    sys.modules["regression"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("regression", None)


def test_gate_passes_against_committed_baselines(regression, capsys, tmp_path):
    code = regression.main(
        ["--only", "S9234", "--no-wall", "--out-dir", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "regression gate passed" in out
    # The CI artifact copy is a loadable BENCH document.
    produced = tmp_path / "BENCH_S9234.json"
    assert produced.exists()
    traces = regression.load_traces(produced)
    assert set(traces) == {"baseline", "stitch-aware"}


def test_gate_fails_on_injected_counter_regression(
    regression, capsys, tmp_path, monkeypatch
):
    # Copy the committed baseline, bump one deterministic counter, and
    # point the gate at the tampered copy.
    src = regression.baseline_path("S9234")
    doc = json.loads(src.read_text())
    spans = doc["stitch-aware"]["spans"]

    def bump_first_counter(span_list):
        for span in span_list:
            for name in span.get("counters", {}):
                span["counters"][name] += 1
                return True
            if bump_first_counter(span.get("children", [])):
                return True
        return False

    assert bump_first_counter(spans)
    baseline_dir = tmp_path / "baselines"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_S9234.json").write_text(json.dumps(doc))
    monkeypatch.setattr(regression, "BASELINE_DIR", baseline_dir)

    code = regression.main(["--only", "S9234", "--no-wall"])
    out = capsys.readouterr().out
    assert code == 1
    assert "regression gate FAILED" in out
    assert "counter" in out


def test_gate_reports_missing_baseline(regression, capsys, tmp_path, monkeypatch):
    monkeypatch.setattr(regression, "BASELINE_DIR", tmp_path / "nowhere")
    code = regression.main(["--only", "S9234", "--no-wall"])
    out = capsys.readouterr().out
    assert code == 1
    assert "missing baseline" in out


def test_gate_rejects_unknown_circuit(regression):
    with pytest.raises(SystemExit):
        regression.main(["--only", "NotACircuit"])


def test_gate_audits_fresh_solutions(regression, capsys, tmp_path):
    code = regression.main(["--only", "S9234", "--no-wall"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "S9234/baseline: audit clean" in out
    assert "S9234/stitch-aware: audit clean" in out


def test_no_audit_skips_the_auditor(regression, capsys, monkeypatch):
    def boom(circuit, flows):
        raise AssertionError("audit ran despite --no-audit")

    monkeypatch.setattr(regression, "audit_flows", boom)
    code = regression.main(["--only", "S9234", "--no-wall", "--no-audit"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "audit" not in out


def test_audit_failure_fails_the_gate(regression, capsys, monkeypatch):
    def failing_audit(circuit, flows):
        return [f"{circuit}/stitch-aware: audit AUD004 net split"]

    monkeypatch.setattr(regression, "audit_flows", failing_audit)
    code = regression.main(["--only", "S9234", "--no-wall"])
    out = capsys.readouterr().out
    assert code == 1
    assert "regression gate FAILED" in out
    assert "AUD004" in out


def test_snapshot_dir_writes_bench_documents(regression, capsys, tmp_path):
    code = regression.main(
        [
            "--only",
            "S9234",
            "--no-wall",
            "--snapshot-dir",
            str(tmp_path / "snaps"),
        ]
    )
    assert code == 0, capsys.readouterr().out
    snapshot = tmp_path / "snaps" / "BENCH_S9234.json"
    assert snapshot.exists()
    # Same label -> trace schema as the committed baselines, and the
    # counters match what the gate itself just verified.
    fresh = regression.load_traces(snapshot)
    committed = regression.load_traces(regression.baseline_path("S9234"))
    assert set(fresh) == set(committed) == {"baseline", "stitch-aware"}
    for label in fresh:
        assert fresh[label].counters == committed[label].counters


def test_committed_snapshots_match_baseline_counters(regression):
    """The top-level BENCH_*.json trajectory mirrors the gate baselines."""
    for circuit in regression.CIRCUITS:
        snapshot = REPO / f"BENCH_{circuit}.json"
        assert snapshot.exists(), f"missing committed snapshot {snapshot}"
        fresh = regression.load_traces(snapshot)
        committed = regression.load_traces(regression.baseline_path(circuit))
        assert set(fresh) == set(committed)
        for label in fresh:
            assert fresh[label].counters == committed[label].counters
