"""Regression tests for bugs found and fixed during development.

Each test documents a real failure mode; keep them even if the code
they guard is refactored away.
"""

import pytest

from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.api import StitchAwareRouter
from repro.detailed import DetailedGrid
from repro.detailed.wiring import path_edges
from repro.geometry import GridPoint, WireSegment


class TestWireSegmentNormalization:
    def test_swapped_endpoints_both_correct(self):
        """Endpoint normalization once assigned b to both fields."""
        seg = WireSegment(GridPoint(5, 2, 1), GridPoint(0, 2, 1))
        assert seg.a == GridPoint(0, 2, 1)
        assert seg.b == GridPoint(5, 2, 1)


class TestPathEdgesValidation:
    def test_diagonal_gap_rejected(self):
        """Dogleg materialization once skipped the jog corner node,
        silently fabricating diagonal wire."""
        with pytest.raises(ValueError):
            path_edges([(18, 14, 2), (19, 15, 2)])


class TestPinOwnershipPermanence:
    def test_release_never_frees_pins(self):
        """A transiently free pin was once claimed by another net's
        negotiated search, making its owner permanently unroutable."""
        spec = SyntheticSpec(name="regress-pin", nets=20, pins=50, layers=3)
        design = generate_design(spec)
        grid = DetailedGrid(design)
        pin = (3, 3, 1)
        grid.occupy(pin, "a")
        grid.mark_pin(pin)
        grid.release(pin, "a")
        assert grid.owner(pin) == "a"

    def test_force_occupy_rejects_pin_theft(self):
        spec = SyntheticSpec(name="regress-pin2", nets=20, pins=50, layers=3)
        design = generate_design(spec)
        grid = DetailedGrid(design)
        pin = (3, 3, 1)
        grid.occupy(pin, "a")
        grid.mark_pin(pin)
        with pytest.raises(ValueError):
            grid.force_occupy(pin, "b")


class TestNoPhantomGeometry:
    def test_adjacent_same_net_wires_stay_separate(self):
        """Node-set geometry reconstruction once merged two parallel
        horizontal wires on adjacent tracks into phantom vertical wire
        (counted as vertical routing violations on stitching lines)."""
        from repro.detailed.wiring import edges_to_segments
        from repro.geometry import Orientation

        e1 = path_edges([(x, 4, 1) for x in range(0, 6)])
        e2 = path_edges([(x, 5, 1) for x in range(0, 6)])
        segments = edges_to_segments(e1 | e2)
        assert all(
            s.orientation is Orientation.HORIZONTAL for s in segments
        )
        assert len(segments) == 2


class TestExclusiveMetal:
    def test_full_flow_no_cross_net_overlap(self):
        """Negotiated rip-up once left stolen nodes inside the victim's
        recorded geometry."""
        # Dense enough that negotiated rip-up actually fires.
        spec = SyntheticSpec(
            name="regress-overlap", nets=90, pins=240, layers=3,
            cells_per_pin=13.0, locality=0.25,
        )
        design = generate_design(spec)
        flow = StitchAwareRouter().route(design)
        seen = {}
        for name, rn in flow.detailed_result.nets.items():
            for node in rn.nodes:
                assert seen.setdefault(node, name) == name
            for a, b in rn.edges:
                for node in (a, b):
                    assert seen.setdefault(node, name) == name
