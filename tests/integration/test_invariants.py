"""Property-based end-to-end invariants on random small designs.

Whatever the netlist, a completed flow must satisfy the hard MEBL
constraints and basic electrical sanity: no vertical wire on a
stitching line, vias on lines only at fixed pins, no two nets sharing
metal, and every routed net connected.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import DisjointSet
from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.api import StitchAwareRouter


def spec_strategy():
    return st.builds(
        SyntheticSpec,
        name=st.just("prop"),
        nets=st.integers(min_value=12, max_value=45),
        pins=st.integers(min_value=30, max_value=120),
        layers=st.sampled_from([3, 4, 6]),
        aspect=st.floats(min_value=0.6, max_value=1.8),
        stitch_pin_fraction=st.floats(min_value=0.0, max_value=0.2),
        cells_per_pin=st.floats(min_value=20.0, max_value=40.0),
        locality=st.floats(min_value=0.1, max_value=0.3),
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec_strategy(), st.integers(min_value=0, max_value=10_000))
def test_flow_invariants(spec, seed):
    design = generate_design(spec, seed=seed)
    flow = StitchAwareRouter().route(design)
    report = flow.report
    assert design.stitches is not None

    # Hard constraint: zero vertical routing violations.
    assert report.vertical_violations == 0

    # Via violations only at fixed pins on stitching lines.
    on_line_pins = sum(
        1
        for p in design.netlist.pins
        if design.stitches.is_on_line(p.location.x)
    )
    assert report.via_violations <= on_line_pins

    # Exclusive metal ownership.
    seen = {}
    for name, rn in flow.detailed_result.nets.items():
        for node in rn.nodes:
            assert seen.setdefault(node, name) == name

    # Electrical connectivity of routed nets.
    for rn in flow.detailed_result.nets.values():
        if not rn.routed:
            continue
        ds = DisjointSet()
        for a, b in rn.edges:
            ds.union(a, b)
        pins = sorted(rn.pin_nodes)
        for pin in pins[1:]:
            assert ds.connected(pins[0], pin)

    # Report self-consistency.
    assert report.total_nets == design.num_nets
    assert 0 <= report.routed_nets <= report.total_nets
    assert report.wirelength >= 0 and report.vias >= 0
