"""Tests for the global router."""


from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.config import RouterConfig
from repro.geometry import Point
from repro.layout import Design, Net, Netlist, Pin, Technology
from repro.globalroute import (
    GlobalGraph,
    GlobalRouter,
    vertical_run_line_ends,
)


def design_with_nets(nets, width=60, height=45, layers=3):
    config = RouterConfig(stitch_spacing=15, tile_size=15)
    return Design(
        name="toy",
        width=width,
        height=height,
        technology=Technology(layers),
        netlist=Netlist(nets),
        config=config,
    )


def two_pin(name, a, b):
    return Net(name, (Pin(f"{name}.0", Point(*a), 1), Pin(f"{name}.1", Point(*b), 1)))


class TestVerticalRunLineEnds:
    def test_pure_horizontal_has_none(self):
        assert vertical_run_line_ends([(0, 0), (1, 0), (2, 0)]) == []

    def test_pure_vertical_two_ends(self):
        ends = vertical_run_line_ends([(0, 0), (0, 1), (0, 2)])
        assert ends == [(0, 0), (0, 2)]

    def test_l_shape(self):
        ends = vertical_run_line_ends([(0, 0), (0, 1), (1, 1)])
        assert ends == [(0, 0), (0, 1)]

    def test_z_shape_two_runs(self):
        path = [(0, 0), (0, 1), (1, 1), (1, 2)]
        assert vertical_run_line_ends(path) == [(0, 0), (0, 1), (1, 1), (1, 2)]

    def test_single_tile(self):
        assert vertical_run_line_ends([(0, 0)]) == []


class TestTwoPinSubnets:
    def test_same_tile_pins_no_subnets(self):
        net = two_pin("n", (1, 1), (3, 3))
        design = design_with_nets([net])
        graph = GlobalGraph(design)
        assert GlobalRouter().two_pin_subnets(net, graph) == []

    def test_three_tile_net_spanning_tree(self):
        net = Net(
            "n",
            (
                Pin("a", Point(1, 1), 1),
                Pin("b", Point(31, 1), 1),
                Pin("c", Point(1, 31), 1),
            ),
        )
        design = design_with_nets([net])
        graph = GlobalGraph(design)
        subnets = GlobalRouter().two_pin_subnets(net, graph)
        assert len(subnets) == 2
        tiles = {t for pair in subnets for t in pair}
        assert tiles == {(0, 0), (2, 0), (0, 2)}


class TestRouting:
    def test_routes_simple_design(self):
        nets = [
            two_pin("a", (1, 1), (55, 40)),
            two_pin("b", (20, 5), (40, 30)),
        ]
        result = GlobalRouter().route(design_with_nets(nets))
        assert not result.failed
        assert set(result.routes) == {"a", "b"}
        assert result.wirelength > 0
        assert result.cpu_seconds >= 0

    def test_paths_are_connected_tile_sequences(self):
        nets = [two_pin("a", (1, 1), (55, 40))]
        result = GlobalRouter().route(design_with_nets(nets))
        for path in result.routes["a"].paths:
            for t1, t2 in zip(path, path[1:]):
                assert abs(t1[0] - t2[0]) + abs(t1[1] - t2[1]) == 1

    def test_path_endpoints_match_pin_tiles(self):
        nets = [two_pin("a", (1, 1), (55, 40))]
        design = design_with_nets(nets)
        result = GlobalRouter().route(design)
        graph = result.graph
        path = result.routes["a"].paths[0]
        assert path[0] == graph.tile_of(1, 1)
        assert path[-1] == graph.tile_of(55, 40)

    def test_local_net_empty_paths(self):
        nets = [two_pin("a", (1, 1), (3, 3))]
        result = GlobalRouter().route(design_with_nets(nets))
        assert result.routes["a"].paths == []
        assert result.routes["a"].wirelength_tiles == 0

    def test_demand_matches_routed_paths(self):
        nets = [two_pin("a", (1, 1), (55, 1)), two_pin("b", (1, 20), (55, 20))]
        result = GlobalRouter().route(design_with_nets(nets))
        g = result.graph
        total_demand = int(g.h_demand.sum() + g.v_demand.sum())
        total_hops = sum(r.wirelength_tiles for r in result.routes.values())
        assert total_demand == total_hops

    def test_stitch_aware_reduces_vertex_overflow(self):
        # A column of nets that all want vertical runs ending in the
        # same tile: stitch-aware routing spreads the line ends.
        spec = SyntheticSpec(
            name="gr-vertex", nets=250, pins=520, layers=3,
            cells_per_pin=16.0, locality=0.2,
        )
        design = generate_design(spec)
        aware = GlobalRouter(stitch_aware=True).route(design)
        blind = GlobalRouter(stitch_aware=False).route(design)
        assert aware.total_vertex_overflow <= blind.total_vertex_overflow

    def test_deterministic(self):
        nets = [two_pin("a", (1, 1), (55, 40)), two_pin("b", (5, 40), (50, 2))]
        r1 = GlobalRouter().route(design_with_nets(nets))
        r2 = GlobalRouter().route(design_with_nets(nets))
        assert {
            name: route.paths for name, route in r1.routes.items()
        } == {name: route.paths for name, route in r2.routes.items()}
