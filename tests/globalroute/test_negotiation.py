"""Tests for negotiated rip-up behaviour in global routing."""


from repro.globalroute import GlobalGraph, GlobalRouter
from tests.globalroute.test_router import design_with_nets, two_pin


class TestNegotiation:
    def test_history_grows_only_on_overflow(self):
        design = design_with_nets([two_pin("a", (1, 1), (55, 40))])
        router = GlobalRouter(stitch_aware=True)
        graph = GlobalGraph(design)
        graph.v_demand[1, 0] = graph.v_capacity[1, 0] + 1
        graph.vertex_demand[1, 0] = graph.vertex_capacity[1, 0] + 1
        router._bump_history(graph)
        assert graph.v_history[1, 0] > 0
        assert graph.vertex_history[1, 0] > 0
        assert graph.h_history[0, 0] == 0

    def test_baseline_ignores_vertex_history(self):
        design = design_with_nets([two_pin("a", (1, 1), (55, 40))])
        router = GlobalRouter(stitch_aware=False)
        graph = GlobalGraph(design)
        graph.vertex_demand[1, 0] = graph.vertex_capacity[1, 0] + 1
        router._bump_history(graph)
        assert graph.vertex_history[1, 0] == 0

    def test_overflow_victims_detection(self):
        design = design_with_nets(
            [two_pin("a", (1, 1), (55, 1)), two_pin("b", (1, 20), (55, 20))]
        )
        router = GlobalRouter(stitch_aware=True)
        result = router.route(design)
        graph = result.graph
        # Force an artificial overflow on an edge net "a" uses.
        path = result.routes["a"].paths[0]
        key = graph.edge_between(path[0], path[1])
        kind, i, j = key
        if kind == "h":
            graph.h_capacity[i, j] = 0
        else:
            graph.v_capacity[i, j] = 0
        victims = router._overflow_victims(graph, result.routes)
        assert "a" in victims

    def test_zero_capacity_edges_avoided(self):
        """A fully blocked column boundary forces a detour."""
        design = design_with_nets([two_pin("a", (1, 1), (55, 1))])
        router = GlobalRouter(stitch_aware=True)
        graph = GlobalGraph(design)
        # Saturate the boundary between columns 1 and 2 at row 0.
        graph.h_demand[1, 0] = graph.h_capacity[1, 0] * 3
        path = router._astar(graph, (0, 0), (3, 0))
        assert path is not None
        assert not any(
            graph.edge_between(a, b) == ("h", 1, 0)
            for a, b in zip(path, path[1:])
        )
