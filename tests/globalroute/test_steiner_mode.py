"""Tests for the optional Steiner-tree decomposition in global routing."""

from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.globalroute import GlobalRouter

SPEC = SyntheticSpec(
    name="steiner-gr", nets=120, pins=420, layers=3, cells_per_pin=26.0
)


class TestSteinerMode:
    def test_steiner_never_longer(self):
        design = generate_design(SPEC)
        mst = GlobalRouter(steiner=False).route(design)
        steiner = GlobalRouter(steiner=True).route(design)
        assert steiner.wirelength <= mst.wirelength
        assert not steiner.failed

    def test_two_pin_nets_unchanged(self):
        from tests.globalroute.test_router import design_with_nets, two_pin

        nets = [two_pin("a", (1, 1), (55, 40))]
        design = design_with_nets(nets)
        mst = GlobalRouter(steiner=False).route(design)
        steiner = GlobalRouter(steiner=True).route(design)
        assert mst.routes["a"].paths == steiner.routes["a"].paths
