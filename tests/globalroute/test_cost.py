"""Tests for the congestion cost functions of Eqs. (1)-(3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.globalroute import (
    GlobalGraph,
    congestion_cost,
    edge_cost,
    edge_cost_if_used,
    path_cost,
    vertex_cost,
    vertex_cost_if_used,
)
from tests.globalroute.test_graph import make_design


class TestCongestionCost:
    def test_zero_demand_free(self):
        assert congestion_cost(0, 10) == 0.0

    def test_full_capacity_costs_one(self):
        assert congestion_cost(10, 10) == pytest.approx(1.0)

    def test_half_capacity(self):
        assert congestion_cost(5, 10) == pytest.approx(2**0.5 - 1)

    def test_overflow_grows_fast(self):
        assert congestion_cost(20, 10) == pytest.approx(3.0)

    def test_zero_capacity_penalized(self):
        assert congestion_cost(1, 0) > congestion_cost(10, 10)

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=50),
    )
    def test_monotone_in_demand(self, d, c):
        assert congestion_cost(d + 1, c) > congestion_cost(d, c) - 1e-12


class TestGraphCosts:
    def test_edge_cost_tracks_demand(self):
        g = GlobalGraph(make_design())
        key = ("h", 0, 0)
        assert edge_cost(g, key) == 0.0
        g.add_edge_demand(key, int(g.edge_capacity(key)))
        assert edge_cost(g, key) == pytest.approx(1.0)

    def test_edge_cost_if_used_prices_next_unit(self):
        g = GlobalGraph(make_design())
        key = ("h", 0, 0)
        assert edge_cost_if_used(g, key) > edge_cost(g, key)

    def test_history_raises_price(self):
        g = GlobalGraph(make_design())
        base = edge_cost_if_used(g, ("h", 0, 0))
        g.h_history[0, 0] = 2.0
        assert edge_cost_if_used(g, ("h", 0, 0)) == pytest.approx(base + 2.0)

    def test_vertex_cost(self):
        g = GlobalGraph(make_design())
        assert vertex_cost(g, (1, 0)) == 0.0
        g.add_vertex_demand((1, 0), int(g.vertex_capacity[1, 0]))
        assert vertex_cost(g, (1, 0)) == pytest.approx(1.0)
        assert vertex_cost_if_used(g, (1, 0)) > 1.0

    def test_path_cost_sums_edges_and_vertices(self):
        g = GlobalGraph(make_design())
        tiles = [(0, 0), (1, 0), (1, 1)]
        g.add_edge_demand(("h", 0, 0), 10)
        g.add_vertex_demand((1, 0), 5)
        with_v = path_cost(g, tiles, include_vertex_cost=True)
        without_v = path_cost(g, tiles, include_vertex_cost=False)
        assert with_v > without_v > 0.0
