"""The bottom-up ordering property of pass 1 (Section II-B)."""


from repro.globalroute import GlobalGraph, GlobalRouter
from tests.globalroute.test_router import design_with_nets, two_pin


class TestBottomUpOrder:
    def test_local_nets_first(self):
        nets = [
            two_pin("global", (1, 1), (55, 40)),
            two_pin("local", (1, 1), (5, 5)),
            two_pin("mid", (1, 1), (20, 20)),
        ]
        design = design_with_nets(nets)
        graph = GlobalGraph(design)
        router = GlobalRouter()
        order = [n.name for n in router._bottom_up_order(design, graph)]
        assert order.index("local") < order.index("mid") < order.index(
            "global"
        )

    def test_ties_broken_by_hpwl_then_name(self):
        nets = [
            two_pin("b", (1, 1), (9, 9)),
            two_pin("a", (1, 1), (9, 9)),
            two_pin("c", (1, 1), (3, 3)),
        ]
        design = design_with_nets(nets)
        graph = GlobalGraph(design)
        order = [
            n.name for n in GlobalRouter()._bottom_up_order(design, graph)
        ]
        assert order == ["c", "a", "b"]
