"""Tests for the global routing graph and MEBL resource estimation."""

import pytest

from repro.config import RouterConfig
from repro.geometry import Point
from repro.layout import Design, Net, Netlist, Pin, Technology
from repro.globalroute import GlobalGraph


def make_design(width=60, height=45, layers=3, spacing=15, tile=15):
    config = RouterConfig(stitch_spacing=spacing, tile_size=tile)
    nets = [
        Net(
            "n0",
            (Pin("a", Point(1, 1), 1), Pin("b", Point(width - 2, height - 2), 1)),
        )
    ]
    return Design(
        name="toy",
        width=width,
        height=height,
        technology=Technology(layers),
        netlist=Netlist(nets),
        config=config,
    )


class TestTileGeometry:
    def test_tile_counts(self):
        g = GlobalGraph(make_design())
        assert (g.nx, g.ny) == (4, 3)

    def test_tile_span_interior(self):
        g = GlobalGraph(make_design())
        span = g.tile_span((1, 1))
        assert (span.x_lo, span.x_hi) == (15, 29)
        assert (span.y_lo, span.y_hi) == (15, 29)

    def test_tile_span_clipped_at_edge(self):
        g = GlobalGraph(make_design(width=50, height=40))
        span = g.tile_span((g.nx - 1, g.ny - 1))
        assert span.x_hi == 49
        assert span.y_hi == 39

    def test_tile_of(self):
        g = GlobalGraph(make_design())
        assert g.tile_of(0, 0) == (0, 0)
        assert g.tile_of(15, 14) == (1, 0)
        assert g.tile_of(59, 44) == (3, 2)

    def test_tile_of_out_of_bounds(self):
        g = GlobalGraph(make_design())
        with pytest.raises(ValueError):
            g.tile_of(60, 0)

    def test_neighbors_corner_and_interior(self):
        g = GlobalGraph(make_design())
        assert set(g.neighbors((0, 0))) == {(1, 0), (0, 1)}
        assert len(g.neighbors((1, 1))) == 4


class TestCapacities:
    def test_vertical_capacity_excludes_stitch_tracks(self):
        # Tile column 1 spans x in [15, 29]; the stitching line at x=15
        # removes one vertical track.  One vertical layer (layer 2).
        g = GlobalGraph(make_design())
        assert g.v_capacity[1, 0] == 14

    def test_horizontal_capacity_full(self):
        # Two horizontal layers (1 and 3), 15 tracks per tile row.
        g = GlobalGraph(make_design())
        assert g.h_capacity[0, 0] == 30

    def test_vertex_capacity_excludes_unfriendly(self):
        # Tile column 1 spans [15, 29]: unfriendly tracks are 14..16 of
        # the line at 15 (14 is outside the span? no: span starts at 15)
        # => 15, 16 inside, plus 29 (adjacent to the line at 30).
        g = GlobalGraph(make_design())
        assert g.vertex_capacity[1, 0] == 15 - 3

    def test_vertical_capacity_more_vertical_layers(self):
        g = GlobalGraph(make_design(layers=6))
        # Layers 2, 4, 6 vertical -> 3x the single-layer capacity.
        assert g.v_capacity[1, 0] == 14 * 3

    def test_demands_start_zero(self):
        g = GlobalGraph(make_design())
        assert g.edge_overflow() == 0
        assert g.total_vertex_overflow() == 0
        assert g.max_vertex_overflow() == 0


class TestEdgeBookkeeping:
    def test_edge_between_normalizes(self):
        g = GlobalGraph(make_design())
        assert g.edge_between((0, 0), (1, 0)) == ("h", 0, 0)
        assert g.edge_between((1, 0), (0, 0)) == ("h", 0, 0)
        assert g.edge_between((2, 1), (2, 2)) == ("v", 2, 1)

    def test_edge_between_non_adjacent_raises(self):
        g = GlobalGraph(make_design())
        with pytest.raises(ValueError):
            g.edge_between((0, 0), (2, 0))
        with pytest.raises(ValueError):
            g.edge_between((0, 0), (1, 1))

    def test_demand_roundtrip(self):
        g = GlobalGraph(make_design())
        key = ("v", 1, 0)
        g.add_edge_demand(key, 3)
        assert g.edge_demand(key) == 3
        g.add_edge_demand(key, -3)
        assert g.edge_demand(key) == 0

    def test_overflow_metrics(self):
        g = GlobalGraph(make_design())
        g.vertex_demand[1, 0] = g.vertex_capacity[1, 0] + 5
        g.vertex_demand[2, 0] = g.vertex_capacity[2, 0] + 2
        assert g.total_vertex_overflow() == 7
        assert g.max_vertex_overflow() == 5
