"""Integration tests: the full stitch-aware flow vs the baseline."""

import pytest

from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.config import RouterConfig
from repro.api import BaselineRouter, FlowResult, StitchAwareRouter
from repro.assign import ColoringMethod, TrackMethod

SPEC = SyntheticSpec(
    name="flow-t", nets=80, pins=220, layers=3, cells_per_pin=26.0,
    stitch_pin_fraction=0.08,
)


@pytest.fixture(scope="module")
def design():
    return generate_design(SPEC)


@pytest.fixture(scope="module")
def aware_result(design):
    return StitchAwareRouter().route(design)


@pytest.fixture(scope="module")
def baseline_result(design):
    return BaselineRouter().route(design)


class TestFlowResults:
    def test_all_stages_present(self, aware_result):
        assert isinstance(aware_result, FlowResult)
        assert aware_result.global_result.routes
        assert aware_result.layer_assignment.columns
        assert aware_result.track_assignment.columns
        assert aware_result.detailed_result.nets
        assert aware_result.cpu_seconds > 0

    def test_report_totals_consistent(self, aware_result):
        report = aware_result.report
        assert report.total_nets == aware_result.design.num_nets
        assert 0 <= report.routed_nets <= report.total_nets
        assert report.routability == pytest.approx(
            report.routed_nets / report.total_nets
        )

    def test_hard_constraints(self, aware_result, baseline_result):
        """Both routers produce zero vertical routing violations."""
        assert aware_result.report.vertical_violations == 0
        assert baseline_result.report.vertical_violations == 0

    def test_routability_band(self, aware_result, baseline_result):
        assert aware_result.report.routability >= 0.93
        assert baseline_result.report.routability >= 0.93

    def test_stitch_aware_reduces_short_polygons(
        self, aware_result, baseline_result
    ):
        """The headline Table III claim."""
        assert (
            aware_result.report.short_polygons
            < baseline_result.report.short_polygons
        )

    def test_via_violations_from_on_line_pins(self, design, aware_result):
        """#VV is bounded by the routed pins sitting on stitching lines."""
        assert design.stitches is not None
        on_line_pins = sum(
            1
            for p in design.netlist.pins
            if design.stitches.is_on_line(p.location.x)
        )
        assert aware_result.report.via_violations <= on_line_pins

    def test_router_configuration_switches(self, design):
        """Ablation switches produce a working flow."""
        router = StitchAwareRouter(
            track_method=TrackMethod.BASELINE,
            coloring=ColoringMethod.MST,
            stitch_aware_global=False,
            stitch_aware_detail=True,
        )
        result = router.route(design)
        assert result.report.routability > 0.9

    def test_deterministic(self, design, aware_result):
        again = StitchAwareRouter().route(design)
        assert again.report.short_polygons == aware_result.report.short_polygons
        assert again.report.routed_nets == aware_result.report.routed_nets
        assert again.report.wirelength == aware_result.report.wirelength

    def test_report_row_fields(self, aware_result):
        row = aware_result.report.row()
        assert set(row) == {
            "circuit", "rout_pct", "vv", "sp", "wl", "vias", "cpu_s"
        }


class TestBaselineSpecifics:
    def test_baseline_rips_stitch_line_tracks(self, baseline_result):
        """Conventional TA lands segments on line tracks; they fail."""
        failed = baseline_result.track_assignment.failed_nets
        # The baseline must at least attempt rips on designs with
        # stitch lines through panels (probabilistically certain here).
        assert isinstance(failed, set)

    def test_baseline_has_zero_bad_end_avoidance(self, baseline_result):
        """Baseline reports bad ends but never dodges them."""
        assert baseline_result.track_assignment.num_bad_ends >= 0


class TestAuditIntegration:
    @pytest.fixture(scope="class")
    def audited(self, design):
        return StitchAwareRouter(config=RouterConfig(audit=True)).route(
            design
        )

    def test_default_flow_has_no_audit(self, aware_result):
        assert aware_result.audit is None
        assert "audit" not in [s.name for s in aware_result.trace.spans]

    def test_audit_true_attaches_clean_report(self, audited):
        audit = audited.audit
        assert audit is not None
        assert audit.ok
        assert audit.findings == [] and audit.drift == []
        assert audit.nets_checked == audited.report.total_nets

    def test_audit_span_carries_counters(self, audited):
        names = [s.name for s in audited.trace.spans]
        span = audited.trace.spans[names.index("audit")]
        assert span.counters["audit_nets_checked"] == (
            audited.audit.nets_checked
        )
        assert span.counters["audit_findings"] == 0
        assert span.counters["audit_drift"] == 0

    def test_audit_flag_stamped_in_trace_meta(self, audited, aware_result):
        assert audited.trace.meta.get("audit") is True
        assert "audit" not in aware_result.trace.meta

    def test_audited_routing_identical_to_default(
        self, audited, aware_result
    ):
        """The auditor observes; it must never change the solution."""
        assert audited.report.wirelength == aware_result.report.wirelength
        assert audited.report.vias == aware_result.report.vias
        assert (
            audited.report.via_violations
            == aware_result.report.via_violations
        )
