"""The redesigned router constructors and their deprecated aliases."""

import warnings

import pytest

from repro.config import ColoringMethod, RouterConfig, TrackMethod
from repro.api import BaselineRouter, StitchAwareRouter


class TestConfigConstructor:
    def test_default_config(self):
        router = StitchAwareRouter()
        assert router.config == RouterConfig()
        assert router.track_method is TrackMethod.GRAPH
        assert router.coloring is ColoringMethod.FLOW
        assert router.stitch_aware_global is True
        assert router.stitch_aware_detail is True

    def test_explicit_config_does_not_warn(self):
        config = RouterConfig(
            track_method=TrackMethod.ILP, coloring=ColoringMethod.MST
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            router = StitchAwareRouter(config=config)
        assert router.config is config
        assert router.track_method is TrackMethod.ILP

    def test_baseline_pins_policy_flags(self):
        router = BaselineRouter()
        assert router.track_method is TrackMethod.BASELINE
        assert router.coloring is ColoringMethod.MST
        assert router.stitch_aware_global is False
        assert router.stitch_aware_detail is False

    def test_baseline_keeps_geometry_overrides(self):
        config = RouterConfig(stitch_spacing=21, tile_size=21)
        router = BaselineRouter(config=config)
        assert router.config.stitch_spacing == 21
        assert router.track_method is TrackMethod.BASELINE

    def test_config_accepts_policy_strings(self):
        config = RouterConfig(track_method="ilp", coloring="mst")
        assert config.track_method is TrackMethod.ILP
        assert config.coloring is ColoringMethod.MST


class TestDeprecatedFlagAliases:
    def test_legacy_keywords_warn_and_apply(self):
        with pytest.warns(DeprecationWarning, match="RouterConfig"):
            router = StitchAwareRouter(
                track_method=TrackMethod.BASELINE,
                coloring=ColoringMethod.MST,
            )
        assert router.track_method is TrackMethod.BASELINE
        assert router.coloring is ColoringMethod.MST
        # Untouched flags keep their defaults.
        assert router.stitch_aware_global is True

    def test_legacy_positional_warn_and_apply(self):
        with pytest.warns(DeprecationWarning):
            router = StitchAwareRouter(
                TrackMethod.ILP, ColoringMethod.MST, False, False
            )
        assert router.track_method is TrackMethod.ILP
        assert router.coloring is ColoringMethod.MST
        assert router.stitch_aware_global is False
        assert router.stitch_aware_detail is False

    def test_legacy_flags_layer_onto_config(self):
        config = RouterConfig(stitch_spacing=21, tile_size=21)
        with pytest.warns(DeprecationWarning):
            router = StitchAwareRouter(
                config=config, stitch_aware_detail=False
            )
        assert router.config.stitch_spacing == 21
        assert router.stitch_aware_detail is False

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            StitchAwareRouter(not_a_flag=True)

    def test_duplicate_flag_rejected(self):
        with pytest.raises(TypeError, match="multiple values"):
            StitchAwareRouter(TrackMethod.ILP, track_method=TrackMethod.GRAPH)

    def test_too_many_positionals_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            StitchAwareRouter(
                TrackMethod.ILP, ColoringMethod.MST, False, False, "extra"
            )
