"""The ``repro audit`` CLI: exit codes, formats, failure reporting."""

import dataclasses
import json
import types

import pytest

from repro.analysis import audit_solution
from repro.benchmarks_gen import mcnc_design
from repro.cli import build_parser, main
from repro.api import StitchAwareRouter


class TestParser:
    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit", "S9234"])
        assert args.circuit == "S9234"
        assert args.scale == 0.05
        assert args.format == "text"
        assert args.workers == 1
        assert not args.baseline

    def test_audit_accepts_workers_and_json(self):
        args = build_parser().parse_args(
            ["audit", "S9234", "--workers", "4", "--format", "json"]
        )
        assert args.workers == 4
        assert args.format == "json"


class TestCleanRuns:
    def test_exit_zero_and_text_verdict(self, capsys):
        assert main(["audit", "S9234", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "S9234" in out

    def test_json_document_shape(self, capsys):
        code = main(
            ["audit", "S9234", "--scale", "0.02", "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["design"] == "S9234"
        assert doc["findings"] == [] and doc["drift"] == []
        assert doc["rules_checked"][0] == "AUD001"

    def test_baseline_router_and_report_file(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        code = main(
            [
                "audit",
                "S9234",
                "--scale",
                "0.02",
                "--baseline",
                "--report",
                str(report),
            ]
        )
        assert code == 0
        assert report.exists()


def _failing_flow():
    """A real flow whose audit report genuinely fails.

    Routes a tiny circuit, corrupts the final geometry (deletes one
    net's wires while leaving it marked routed), and re-audits.
    """
    flow = StitchAwareRouter().route(mcnc_design("S9234", 0.02))
    name = sorted(flow.detailed_result.nets)[0]
    nets = dict(flow.detailed_result.nets)
    nets[name] = dataclasses.replace(nets[name], edges=set())
    corrupted = dataclasses.replace(flow.detailed_result, nets=nets)
    audit = audit_solution(corrupted, flow.report, flow.global_result)
    assert not audit.ok
    return flow, audit


class TestFailingRuns:
    @pytest.fixture()
    def rigged(self, monkeypatch):
        """Point the CLI at a router whose flow carries a failing audit."""
        flow, audit = _failing_flow()
        rigged_flow = types.SimpleNamespace(
            report=flow.report, audit=audit, trace=flow.trace
        )

        class RiggedRouter:
            def __init__(self, *, config=None):
                self.config = config

            def route(self, design, *, tracer=None):
                return rigged_flow

        monkeypatch.setattr("repro.cli.StitchAwareRouter", RiggedRouter)
        return audit

    def test_exit_one_with_attribution(self, rigged, capsys):
        assert main(["audit", "S9234", "--scale", "0.02"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        first = rigged.findings[0]
        assert first.rule in out
        assert f"net={first.net}" in out

    def test_json_failure_document(self, rigged, capsys):
        code = main(
            ["audit", "S9234", "--scale", "0.02", "--format", "json"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert doc["findings"]
        assert doc["findings"][0]["rule"] == rigged.findings[0].rule
        assert doc["findings"][0]["net"] == rigged.findings[0].net
