"""Independent solution auditor: clean runs, corruption, independence."""

import ast
import dataclasses
import pathlib

import pytest

from repro.analysis import (
    AUDIT_RULES,
    AuditFinding,
    AuditReport,
    CounterDrift,
    audit_solution,
    render_audit,
)
from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import BaselineRouter, StitchAwareRouter
from repro.detailed import DetailedResult
from repro.detailed.router import RoutedNet
from repro.eval import evaluate
from repro.geometry import Point
from repro.layout import Design, Net, Netlist, Pin, Technology


@pytest.fixture(scope="module")
def flows():
    """Both routers on one hard gate circuit, serial."""
    out = {}
    for label, router in (
        ("baseline", BaselineRouter()),
        ("stitch-aware", StitchAwareRouter()),
    ):
        out[label] = router.route(mcnc_design("S9234", 0.02))
    return out


def _audit(flow):
    return audit_solution(
        flow.detailed_result, flow.report, flow.global_result
    )


class TestCleanSolutions:
    @pytest.mark.parametrize("label", ["baseline", "stitch-aware"])
    def test_real_solutions_verify_clean(self, flows, label):
        report = _audit(flows[label])
        assert report.ok
        assert report.findings == []
        assert report.drift == []
        assert report.nets_checked == len(flows[label].report.nets)

    def test_all_rules_checked_with_global_result(self, flows):
        report = _audit(flows["stitch-aware"])
        assert report.rules_checked == tuple(AUDIT_RULES)

    def test_global_rule_skipped_without_global_result(self, flows):
        flow = flows["stitch-aware"]
        report = audit_solution(flow.detailed_result, flow.report)
        assert "AUD007" not in report.rules_checked
        assert report.ok

    def test_parallel_solution_verifies_clean(self):
        config = RouterConfig(workers=4)
        flow = StitchAwareRouter(config=config).route(
            mcnc_design("S9234", 0.02)
        )
        assert _audit(flow).ok


def _tiny_design():
    """A 40x20 HVH die with one stitching line crossing a two-pin net."""
    tech = Technology(num_layers=3)
    net = Net("a", (Pin("a1", Point(10, 5)), Pin("a2", Point(20, 5))))
    far = Net("b", (Pin("b1", Point(2, 12)), Pin("b2", Point(6, 12))))
    return Design(
        name="tiny",
        width=40,
        height=20,
        technology=tech,
        netlist=Netlist([net, far]),
    )


def _straight_route(design, name):
    """A legal layer-1 horizontal wire between the net's two pins."""
    net = design.netlist[name]
    (x0, y), (x1, _) = (
        (net.pins[0].location.x, net.pins[0].location.y),
        (net.pins[1].location.x, net.pins[1].location.y),
    )
    edges = {
        ((x, y, 1), (x + 1, y, 1)) for x in range(min(x0, x1), max(x0, x1))
    }
    nodes = {n for e in edges for n in e}
    return RoutedNet(net=net, nodes=nodes, edges=edges, routed=True)


@pytest.fixture()
def tiny():
    """(design, clean DetailedResult, matching report) triple."""
    design = _tiny_design()
    nets = {
        "a": _straight_route(design, "a"),
        "b": _straight_route(design, "b"),
    }
    result = DetailedResult(
        design=design, nets=nets, failed=[], cpu_seconds=0.0
    )
    report = evaluate(result)
    audit = audit_solution(result, report)
    assert audit.ok, render_audit(audit)
    return design, result, report


def _corrupt(result, name, extra_edges):
    """A copy of ``result`` with edges added to one net."""
    nets = dict(result.nets)
    target = nets[name]
    nets[name] = dataclasses.replace(
        target, edges=set(target.edges) | set(extra_edges)
    )
    return dataclasses.replace(result, nets=nets)


class TestInjectedCorruption:
    def test_via_moved_onto_line_fails_with_attribution(self, tiny):
        # The acceptance scenario: mutate geometry after evaluate so a
        # via stack sits on the stitching line away from any pin.
        design, result, report = tiny
        line_x = design.stitches.xs[0]  # 15, strictly inside net "a"
        y = 5
        corrupted = _corrupt(
            result,
            "a",
            [
                ((line_x, y, 1), (line_x, y, 2)),
                ((line_x + 1, y, 1), (line_x + 1, y, 2)),
                ((line_x, y, 2), (line_x + 1, y, 2)),
            ],
        )
        audit = audit_solution(corrupted, report)
        assert not audit.ok
        rules = {f.rule for f in audit.findings}
        assert "AUD001" in rules
        finding = next(f for f in audit.findings if f.rule == "AUD001")
        assert finding.net == "a"
        assert finding.line == 0
        assert finding.x == line_x
        assert finding.y == y
        # The stale report no longer matches the geometry either.
        assert audit.drift

    def test_vertical_wire_along_line_fires_aud002(self, tiny):
        design, result, report = tiny
        line_x = design.stitches.xs[0]
        y = 5
        # A closed loop touching the net so trimming cannot remove it:
        # up the line track on layer 2, across on layer 3, back down.
        loop = [
            ((line_x, y, 1), (line_x, y, 2)),
            ((line_x, y, 2), (line_x, y + 1, 2)),
            ((line_x, y + 1, 2), (line_x, y + 1, 3)),
            ((line_x + 1, y, 1), (line_x + 1, y, 2)),
            ((line_x + 1, y, 2), (line_x + 1, y + 1, 2)),
            ((line_x + 1, y + 1, 2), (line_x + 1, y + 1, 3)),
            ((line_x, y + 1, 3), (line_x + 1, y + 1, 3)),
        ]
        corrupted = _corrupt(result, "a", loop)
        audit = audit_solution(corrupted, report)
        assert not audit.ok
        findings = [f for f in audit.findings if f.rule == "AUD002"]
        assert findings
        assert findings[0].net == "a"
        assert findings[0].line == 0
        assert findings[0].x == line_x

    def test_disconnected_routed_net_fires_aud004(self, tiny):
        design, result, report = tiny
        nets = dict(result.nets)
        kept = {
            e
            for e in nets["a"].edges
            if max(e[0][0], e[1][0]) <= 14  # cut at x=14, pins at 10/20
        }
        nets["a"] = dataclasses.replace(nets["a"], edges=kept)
        corrupted = dataclasses.replace(result, nets=nets)
        audit = audit_solution(corrupted, report)
        rules = {f.rule for f in audit.findings}
        assert "AUD004" in rules
        finding = next(f for f in audit.findings if f.rule == "AUD004")
        assert finding.net == "a"

    def test_shared_node_fires_aud005(self, tiny):
        design, result, report = tiny
        stolen = sorted(result.nets["a"].edges)[0]
        corrupted = _corrupt(result, "b", [stolen])
        audit = audit_solution(corrupted, report)
        rules = {f.rule for f in audit.findings}
        assert "AUD005" in rules
        finding = next(f for f in audit.findings if f.rule == "AUD005")
        assert "'a'" in finding.message and "'b'" in finding.message

    def test_wrong_direction_wire_fires_aud006(self, tiny):
        design, result, report = tiny
        # A y-move on layer 1 (horizontal) — raw-edge check, so even a
        # dangling edge is caught.
        corrupted = _corrupt(result, "a", [((12, 5, 1), (12, 6, 1))])
        audit = audit_solution(corrupted, report)
        rules = {f.rule for f in audit.findings}
        assert "AUD006" in rules

    def test_off_die_edge_fires_aud006(self, tiny):
        design, result, report = tiny
        corrupted = _corrupt(
            result, "a", [((39, 5, 1), (40, 5, 1))]  # width is 40
        )
        audit = audit_solution(corrupted, report)
        assert any(f.rule == "AUD006" for f in audit.findings)

    def test_non_unit_edge_fires_aud006(self, tiny):
        design, result, report = tiny
        corrupted = _corrupt(result, "a", [((12, 5, 1), (14, 5, 1))])
        audit = audit_solution(corrupted, report)
        assert any(f.rule == "AUD006" for f in audit.findings)

    def test_demand_bump_fires_aud007(self, flows):
        flow = flows["stitch-aware"]
        graph = flow.global_result.graph
        graph.h_demand[0, 0] += 1
        try:
            audit = _audit(flow)
        finally:
            graph.h_demand[0, 0] -= 1
        findings = [f for f in audit.findings if f.rule == "AUD007"]
        assert findings
        assert "h-edge (0, 0)" in findings[0].message
        assert _audit(flow).ok  # restored

    def test_phantom_reported_violation_fires_aud001(self, tiny):
        design, result, report = tiny
        from repro.eval import Violation

        tampered = dataclasses.replace(report)
        tampered.nets["a"].violations.append(
            Violation("a", "via", 0, design.stitches.xs[0], 5, 1)
        )
        try:
            audit = audit_solution(result, tampered)
        finally:
            tampered.nets["a"].violations.pop()
        findings = [f for f in audit.findings if f.rule == "AUD001"]
        assert findings
        assert "no supporting geometry" in findings[0].message
        # The scalar column no longer matches the attribution list.
        assert any(
            d.counter == "net[a].violations.via" for d in audit.drift
        )


class TestCounterDrift:
    @pytest.mark.parametrize(
        "field",
        [
            "via_violations",
            "vertical_violations",
            "short_polygons",
            "wirelength",
            "vias",
            "routed_nets",
            "total_nets",
        ],
    )
    def test_scalar_tampering_is_caught(self, flows, field):
        flow = flows["stitch-aware"]
        tampered = dataclasses.replace(
            flow.report, **{field: getattr(flow.report, field) + 3}
        )
        audit = audit_solution(
            flow.detailed_result, tampered, flow.global_result
        )
        assert not audit.ok
        assert any(d.counter == field for d in audit.drift)
        assert not audit.findings  # pure bookkeeping, geometry is fine

    def test_per_net_tampering_names_the_net(self, tiny):
        design, result, report = tiny
        report.nets["a"].wirelength += 2
        try:
            audit = audit_solution(result, report)
        finally:
            report.nets["a"].wirelength -= 2
        counters = {d.counter for d in audit.drift}
        assert "net[a].wirelength" in counters
        # The aggregate was computed before the tampering and still
        # matches the geometry, so only the per-net counter drifts.
        assert "wirelength" not in counters

    def test_missing_net_entry_is_drift(self, tiny):
        design, result, report = tiny
        tampered = dataclasses.replace(
            report, nets={k: v for k, v in report.nets.items() if k != "b"}
        )
        audit = audit_solution(result, tampered)
        assert any(d.counter == "net[b].present" for d in audit.drift)

    def test_drift_reports_both_values(self, flows):
        flow = flows["stitch-aware"]
        tampered = dataclasses.replace(
            flow.report, vias=flow.report.vias + 5
        )
        audit = audit_solution(flow.detailed_result, tampered)
        drift = next(d for d in audit.drift if d.counter == "vias")
        assert drift.reported == flow.report.vias + 5
        assert drift.recomputed == flow.report.vias


class TestIndependence:
    """The auditor must not lean on the evaluator's counting code."""

    FORBIDDEN = (
        "repro.eval.geometry",
        "repro.detailed.wiring",
        "eval.geometry",
        "detailed.wiring",
    )
    FORBIDDEN_NAMES = {
        "trim_dangling",
        "edges_to_segments",
        "via_landing_points",
        "short_polygon_sites",
        "via_count",
        "wirelength",
        "evaluate",
    }

    def test_audit_module_imports_no_counting_internals(self):
        import repro.analysis.audit as audit_module

        path = pathlib.Path(audit_module.__file__)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                assert not any(
                    module.endswith(f) for f in self.FORBIDDEN
                ), f"audit imports counting module {module}"
                imported = {alias.name for alias in node.names}
                assert not (imported & self.FORBIDDEN_NAMES), (
                    f"audit imports counting helper(s) "
                    f"{sorted(imported & self.FORBIDDEN_NAMES)}"
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    assert not any(
                        alias.name.endswith(f) for f in self.FORBIDDEN
                    ), f"audit imports counting module {alias.name}"


class TestReportShape:
    def test_to_dict_round_trips_to_json(self, flows):
        import json

        audit = _audit(flows["baseline"])
        doc = json.loads(json.dumps(audit.to_dict()))
        assert doc["ok"] is True
        assert doc["design"] == "S9234"
        assert doc["findings"] == [] and doc["drift"] == []
        assert doc["rules_checked"] == list(AUDIT_RULES)

    def test_render_clean(self, flows):
        text = render_audit(_audit(flows["baseline"]))
        assert "clean" in text and "S9234" in text

    def test_render_failure_lists_findings_and_drift(self):
        report = AuditReport(
            design_name="x",
            findings=[
                AuditFinding(
                    rule="AUD002",
                    message="vertical wire runs along a stitching line",
                    net="n1",
                    line=2,
                    x=30,
                    y=4,
                    layer=2,
                )
            ],
            drift=[CounterDrift("vias", 10, 9)],
            nets_checked=1,
            rules_checked=("AUD002",),
        )
        text = render_audit(report)
        assert "AUD002" in text and "net=n1" in text and "line=2" in text
        assert "DRIFT vias" in text
        assert "FAILED" in text

    def test_finding_fix_hint_comes_from_catalog(self):
        finding = AuditFinding(rule="AUD005", message="m")
        assert finding.fix_hint == AUDIT_RULES["AUD005"].fix_hint

    def test_findings_sorted_by_rule_then_location(self, tiny):
        design, result, report = tiny
        corrupted = _corrupt(
            result,
            "a",
            [((12, 5, 1), (12, 6, 1)), ((12, 6, 1), (12, 7, 1))],
        )
        # Also break connectivity of net b so two rules fire.
        nets = dict(corrupted.nets)
        nets["b"] = dataclasses.replace(nets["b"], edges=set())
        corrupted = dataclasses.replace(corrupted, nets=nets)
        audit = audit_solution(corrupted, report)
        rules = [f.rule for f in audit.findings]
        assert rules == sorted(rules)
