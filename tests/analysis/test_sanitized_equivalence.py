"""Sanitized parallel routing must still equal serial routing.

The acceptance bar for ``RouterConfig(sanitize=True)``: instrumenting
every speculative shared-state access must not perturb the result —
the sanitized ``workers=4`` report is byte-identical to the plain
serial one — and a clean run reports zero violations alongside
non-zero coverage counters.
"""

import json

from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.io import report_to_dict

CIRCUIT = "S9234"
SCALE = 0.02


def route_report(workers, sanitize):
    design = mcnc_design(CIRCUIT, SCALE)
    router = StitchAwareRouter(
        config=RouterConfig(workers=workers, sanitize=sanitize)
    )
    flow = router.route(design)
    doc = report_to_dict(flow.report)
    # Wall times are the only sanctioned nondeterminism.
    doc.pop("cpu_seconds", None)
    doc.pop("trace", None)
    return doc, flow.trace


def canonical(doc):
    return json.dumps(doc, sort_keys=True).encode()


class TestSanitizedEquivalence:
    def test_sanitized_parallel_report_byte_identical_to_serial(self):
        serial_doc, serial_trace = route_report(workers=1, sanitize=False)
        sanitized_doc, sanitized_trace = route_report(workers=4, sanitize=True)
        assert canonical(sanitized_doc) == canonical(serial_doc)

        serial = serial_trace.aggregate_counters()
        sanitized = sanitized_trace.aggregate_counters()
        # The sanitizer adds only its own bookkeeping on top of the
        # parallel engine's; every routing counter must match exactly.
        routing = {
            k: v
            for k, v in sanitized.items()
            if not k.startswith(("parallel_", "sanitize_"))
        }
        assert routing == serial

        assert sanitized["sanitize_violations"] == 0
        # Detailed routing speculates at this scale; global batches may
        # legitimately all be singletons, so only the net/node coverage
        # counters are required to be non-zero.
        assert sanitized["sanitize_nets_checked"] > 0
        assert sanitized["sanitize_nodes_checked"] > 0
