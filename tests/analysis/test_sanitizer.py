"""Speculation-footprint sanitizer: injection and integration tests.

The sanitized overlays must (a) stay silent on protocol-conforming
access, (b) fail loudly on every class of undeclared access, and
(c) catch a bypass injected into the real speculative routing path.
"""

import pytest

from repro.analysis import (
    SanitizedGraphSnapshot,
    SanitizedGridOverlay,
    SanitizerViolation,
)
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.detailed import DetailedGrid
from repro.geometry import Point
from repro.globalroute import GlobalGraph
from repro.layout import Design, Net, Netlist, Pin, Technology


def make_design(nets=None, width=90, height=90):
    config = RouterConfig(stitch_spacing=15, tile_size=15)
    if nets is None:
        nets = [
            Net("n0", (Pin("a", Point(1, 1), 1), Pin("b", Point(50, 40), 1)))
        ]
    return Design(
        name="toy",
        width=width,
        height=height,
        technology=Technology(3),
        netlist=Netlist(nets),
        config=config,
    )


def quad_design():
    """Four pairwise-distant nets: guaranteed speculative batches."""
    nets = [
        Net("n0", (Pin("a", Point(2, 2), 1), Pin("b", Point(12, 6), 1))),
        Net("n1", (Pin("c", Point(62, 2), 1), Pin("d", Point(72, 6), 1))),
        Net("n2", (Pin("e", Point(2, 62), 1), Pin("f", Point(12, 66), 1))),
        Net("n3", (Pin("g", Point(62, 62), 1), Pin("h", Point(72, 66), 1))),
    ]
    return make_design(nets=nets)


class TestSanitizedGraphSnapshot:
    def test_demand_read_inside_window_passes(self):
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        _ = snap.h_demand[0, 0]
        stats = {}
        snap.verify([(0, 0, 5, 5)], stats)
        assert stats["sanitize_cells_checked"] == 1
        assert stats["sanitize_nets_checked"] == 1

    def test_demand_read_outside_windows_raises(self):
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        _ = snap.v_demand[2, 1]
        with pytest.raises(SanitizerViolation, match="undeclared demand"):
            snap.verify([(0, 0, 1, 1)])

    def test_no_windows_means_no_reads_allowed(self):
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        _ = snap.vertex_demand[0, 0]
        with pytest.raises(SanitizerViolation):
            snap.verify([])

    def test_edge_access_needs_both_touched_tiles(self):
        # An h-edge read at (i, j) observes tiles (i, j) AND (i+1, j);
        # a window covering only the tail tile is an undeclared read.
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        _ = snap.h_demand[1, 1]
        with pytest.raises(SanitizerViolation):
            snap.verify([(1, 1, 1, 1)])
        snap.verify([(1, 1, 2, 1)])

    def test_demand_write_is_recorded(self):
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        snap.h_demand[0, 0] = 3
        with pytest.raises(SanitizerViolation):
            snap.verify([])

    def test_shared_capacity_write_raises_immediately(self):
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        with pytest.raises(SanitizerViolation, match="frozen"):
            snap.h_capacity[0, 0] = 99

    def test_shared_history_write_raises_immediately(self):
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        with pytest.raises(SanitizerViolation, match="frozen"):
            snap.v_history[0, 0] = 1.0

    def test_non_scalar_access_is_unauditable(self):
        snap = SanitizedGraphSnapshot(GlobalGraph(make_design()))
        with pytest.raises(SanitizerViolation, match="unauditable"):
            _ = snap.h_demand[:, 0]


class TestSanitizedGridOverlay:
    def test_conforming_access_verifies_clean(self):
        overlay = SanitizedGridOverlay(DetailedGrid(make_design()))
        node = (5, 5, 1)
        assert overlay._owner.get(node) is None
        overlay._owner[node] = "n0"
        stats = {}
        overlay.verify(stats)
        assert stats["sanitize_nets_checked"] == 1
        assert stats["sanitize_nodes_checked"] >= 2  # the read + the write

    def test_base_read_bypassing_overlay_raises(self):
        overlay = SanitizedGridOverlay(DetailedGrid(make_design()))
        with pytest.raises(SanitizerViolation, match="bypassed the overlay"):
            overlay._owner._base.get((7, 7, 1))

    def test_overlay_mediated_read_then_base_read_passes(self):
        overlay = SanitizedGridOverlay(DetailedGrid(make_design()))
        node = (7, 7, 1)
        overlay._owner.get(node)  # records the read footprint first
        assert overlay._owner._base.get(node) is None

    def test_live_ownership_write_raises(self):
        overlay = SanitizedGridOverlay(DetailedGrid(make_design()))
        with pytest.raises(SanitizerViolation, match="live ownership"):
            overlay._owner._base[(3, 3, 1)] = "n0"

    def test_pin_set_mutation_raises(self):
        overlay = SanitizedGridOverlay(DetailedGrid(make_design()))
        with pytest.raises(SanitizerViolation, match="pin-set mutation"):
            overlay._pins.add((1, 1, 1))

    def test_undeclared_buffered_write_caught_at_verify(self):
        overlay = SanitizedGridOverlay(DetailedGrid(make_design()))
        # Inject a delta entry without declaring it in the write set —
        # the shape of a hypothetical code path mutating `local` behind
        # the overlay's back.
        overlay._owner.local[(9, 9, 1)] = "n0"
        with pytest.raises(SanitizerViolation, match="write footprint"):
            overlay.verify()


class TestRouterIntegration:
    def test_clean_speculative_run_counts_checks(self):
        flow = StitchAwareRouter(
            config=RouterConfig(workers=2, sanitize=True)
        ).route(quad_design())
        counters = flow.trace.aggregate_counters()
        assert counters["sanitize_violations"] == 0
        assert counters["sanitize_nets_checked"] >= 1
        assert counters["sanitize_nodes_checked"] >= 1
        assert flow.report.routed_nets == 4

    def test_injected_bypass_read_is_detected(self, monkeypatch):
        from repro.detailed.router import DetailedRouter

        original = DetailedRouter._connect_net

        def sneaky(self, design, grid, net, trunk_pieces, **kwargs):
            if isinstance(grid, SanitizedGridOverlay):
                # Peek at the live ownership dict without recording the
                # read in the overlay footprint.
                grid._owner._base.get((0, 0, 1))
            return original(self, design, grid, net, trunk_pieces, **kwargs)

        monkeypatch.setattr(DetailedRouter, "_connect_net", sneaky)
        with pytest.raises(SanitizerViolation, match="bypassed the overlay"):
            StitchAwareRouter(
                config=RouterConfig(workers=2, sanitize=True)
            ).route(quad_design())

    def test_sanitize_off_does_not_wrap(self, monkeypatch):
        from repro.detailed.router import DetailedRouter

        seen = []
        original = DetailedRouter._connect_net

        def spy(self, design, grid, net, trunk_pieces, **kwargs):
            seen.append(type(grid).__name__)
            return original(self, design, grid, net, trunk_pieces, **kwargs)

        monkeypatch.setattr(DetailedRouter, "_connect_net", spy)
        StitchAwareRouter(config=RouterConfig(workers=2)).route(quad_design())
        assert "SanitizedGridOverlay" not in seen
