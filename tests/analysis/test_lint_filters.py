"""Rule filtering: ``resolve_rule_filter`` and ``lint --select/--ignore``."""

import pytest

from repro.analysis import RULES, lint_paths, resolve_rule_filter
from repro.cli import main

#: Trips DET001 (set iteration) and DET004 (mutable default) — two
#: rules with different scoping (DET004 applies everywhere).
SNIPPET = """\
def choose(nets: set, acc=[]):
    for net in nets:
        acc.append(net)
    return acc
"""


@pytest.fixture()
def snippet_path(tmp_path):
    path = tmp_path / "snippet.py"
    path.write_text(SNIPPET, encoding="utf-8")
    return path


class TestResolveRuleFilter:
    def test_default_is_every_rule(self):
        assert resolve_rule_filter() == frozenset(RULES)

    def test_select_restricts(self):
        assert resolve_rule_filter(select=["DET001"]) == {"DET001"}

    def test_ignore_removes(self):
        active = resolve_rule_filter(ignore=["DET004"])
        assert active == frozenset(RULES) - {"DET004"}

    def test_select_then_ignore(self):
        active = resolve_rule_filter(
            select=["DET001", "DET004"], ignore=["DET001"]
        )
        assert active == {"DET004"}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"select": ["DET999"]},
            {"ignore": ["DET999"]},
            {"select": ["det001"]},
        ],
    )
    def test_unknown_codes_raise(self, kwargs):
        with pytest.raises(ValueError, match="unknown rule code"):
            resolve_rule_filter(**kwargs)

    def test_error_names_offender_and_catalog(self):
        with pytest.raises(ValueError, match=r"DET999.*DET001"):
            resolve_rule_filter(select=["DET999"])


class TestLintPathsFiltering:
    def test_unfiltered_reports_both_rules(self, snippet_path):
        report = lint_paths([str(snippet_path)])
        assert {f.rule for f in report.findings} == {"DET001", "DET004"}

    def test_select_drops_other_rules(self, snippet_path):
        report = lint_paths([str(snippet_path)], select=["DET004"])
        assert {f.rule for f in report.findings} == {"DET004"}

    def test_ignore_drops_named_rule(self, snippet_path):
        report = lint_paths([str(snippet_path)], ignore=["DET001"])
        assert {f.rule for f in report.findings} == {"DET004"}

    def test_filtered_findings_are_not_grandfathered(self, snippet_path):
        report = lint_paths([str(snippet_path)], select=["DET004"])
        assert report.grandfathered == []


class TestCliFlags:
    def test_select_passes_when_other_rule_excluded(
        self, snippet_path, monkeypatch
    ):
        monkeypatch.chdir(snippet_path.parent)
        assert main(["lint", str(snippet_path), "--select", "DET002"]) == 0

    def test_ignore_keeps_remaining_findings_failing(
        self, snippet_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(snippet_path.parent)
        code = main(["lint", str(snippet_path), "--ignore", "DET001"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET004" in out and "DET001" not in out

    def test_comma_separated_codes(self, snippet_path, monkeypatch):
        monkeypatch.chdir(snippet_path.parent)
        code = main(
            ["lint", str(snippet_path), "--ignore", "DET001,DET004"]
        )
        assert code == 0

    def test_unknown_code_is_usage_error(
        self, snippet_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(snippet_path.parent)
        code = main(["lint", str(snippet_path), "--select", "DET999"])
        assert code == 2
        assert "unknown rule code" in capsys.readouterr().err


class TestDeadSuppressions:
    def test_live_suppression_is_not_dead(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            SNIPPET.replace(
                "for net in nets:",
                "for net in nets:  # repro: allow-DET001 corpus",
            ),
            encoding="utf-8",
        )
        report = lint_paths([str(path)])
        assert report.suppressed == 1
        assert report.dead_suppressions == []

    def test_stale_suppression_is_reported(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            "for net in [1, 2]:  # repro: allow-DET001\n    print(net)\n",
            encoding="utf-8",
        )
        report = lint_paths([str(path)])
        assert report.ok
        assert len(report.dead_suppressions) == 1
        assert report.dead_suppressions[0].codes == ("DET001",)
        from repro.analysis import render_findings

        assert "dead suppression" in render_findings(report)

    def test_quoted_syntax_in_string_is_inert(self, tmp_path):
        path = tmp_path / "snippet.py"
        path.write_text(
            'HOWTO = "append # repro: allow-DET001 to the line"\n',
            encoding="utf-8",
        )
        report = lint_paths([str(path)])
        assert report.dead_suppressions == []


class TestUpdateBaselineChurn:
    def test_prune_and_add_counts(self, snippet_path, monkeypatch, capsys):
        monkeypatch.chdir(snippet_path.parent)
        assert main(["lint", "--update-baseline", str(snippet_path)]) == 0
        assert "2 added, 0 pruned" in capsys.readouterr().out
        snippet_path.write_text(
            "def choose(nets: set, acc=[]):\n    return sorted(nets)\n",
            encoding="utf-8",
        )
        assert main(["lint", "--update-baseline", str(snippet_path)]) == 0
        out = capsys.readouterr().out
        # DET004 (mutable default) survives with the same fingerprint;
        # the fixed DET001 fingerprint is pruned.
        assert "0 added, 1 pruned" in out
