"""Per-rule corpora for the determinism linter (DET001-DET005).

Each rule gets at least one bad fixture that must be flagged, a
suppression check (``# repro: allow-DETnnn`` silences exactly that
finding), and the clean spelling that must pass.  Fixture paths have no
``repro`` package component, so every rule — including the
routing-scoped ones — is in scope (see ``routing_rules_apply``).
"""

import json
import pathlib
import textwrap

from repro.analysis import (
    RULES,
    Baseline,
    lint_paths,
    lint_source,
    render_findings,
    save_baseline,
)
from repro.analysis.lint import routing_rules_apply, suppressed_rules

FIXTURE_PATH = "fixtures/snippet.py"


def codes(source):
    return [f.rule for f in lint_source(textwrap.dedent(source), FIXTURE_PATH)]


class TestDET001UnorderedIteration:
    def test_for_over_set_flagged(self):
        assert "DET001" in codes(
            """
            nodes = {1, 2, 3}
            for node in nodes:
                print(node)
            """
        )

    def test_for_over_dict_keys_flagged(self):
        assert "DET001" in codes(
            """
            def f(owner):
                for node in owner.keys():
                    print(node)
            """
        )

    def test_list_freezing_a_set_flagged(self):
        assert "DET001" in codes(
            """
            seen = set()
            order = list(seen)
            """
        )

    def test_sorted_set_is_clean(self):
        assert codes(
            """
            nodes = {1, 2, 3}
            for node in sorted(nodes):
                print(node)
            """
        ) == []

    def test_suppression_comment_silences(self):
        source = textwrap.dedent(
            """
            nodes = {1, 2, 3}
            total = 0
            for node in nodes:  # repro: allow-DET001 commutative sum
                total += node
            """
        )
        assert lint_source(source, FIXTURE_PATH) == []


class TestDET002AmbientInputs:
    def test_time_time_flagged(self):
        assert "DET002" in codes(
            """
            import time
            stamp = time.time()
            """
        )

    def test_perf_counter_is_sanctioned(self):
        assert codes(
            """
            import time
            start = time.perf_counter()
            """
        ) == []

    def test_import_random_flagged(self):
        assert "DET002" in codes("import random\n")

    def test_os_urandom_flagged(self):
        assert "DET002" in codes(
            """
            import os
            blob = os.urandom(8)
            """
        )

    def test_suppression_comment_silences(self):
        source = "import random  # repro: allow-DET002 seeded generator\n"
        assert lint_source(source, FIXTURE_PATH) == []


class TestDET003FloatEquality:
    def test_cost_equality_flagged(self):
        assert "DET003" in codes(
            """
            def pick(cost, best_cost):
                return cost == best_cost
            """
        )

    def test_float_literal_equality_flagged(self):
        assert "DET003" in codes(
            """
            def f(x):
                return x != 0.5
            """
        )

    def test_ordering_comparison_is_clean(self):
        assert codes(
            """
            def pick(cost, best_cost):
                return cost < best_cost
            """
        ) == []

    def test_suppression_comment_silences(self):
        source = (
            "def f(cost, other_cost):\n"
            "    return cost == other_cost  # repro: allow-DET003 exact copy\n"
        )
        assert lint_source(source, FIXTURE_PATH) == []


class TestDET004MutableDefaults:
    def test_list_default_flagged(self):
        assert "DET004" in codes(
            """
            def route(net, visited=[]):
                visited.append(net)
            """
        )

    def test_dict_default_flagged(self):
        assert "DET004" in codes(
            """
            def route(net, stats={}):
                return stats
            """
        )

    def test_none_default_is_clean(self):
        assert codes(
            """
            def route(net, visited=None):
                visited = [] if visited is None else visited
            """
        ) == []

    def test_suppression_comment_silences(self):
        source = (
            "def f(x, cache={}):  # repro: allow-DET004 module-lifetime memo\n"
            "    return cache\n"
        )
        assert lint_source(source, FIXTURE_PATH) == []


class TestDET005HashOrderTieBreaks:
    def test_next_iter_set_flagged(self):
        assert "DET005" in codes(
            """
            def any_node(nodes: set):
                return next(iter(nodes))
            """
        )

    def test_id_call_flagged(self):
        assert "DET005" in codes(
            """
            def key(net):
                return id(net)
            """
        )

    def test_set_pop_flagged(self):
        assert "DET005" in codes(
            """
            frontier = {1, 2}
            node = frontier.pop()
            """
        )

    def test_min_of_set_is_clean(self):
        assert codes(
            """
            def any_node(nodes: set):
                return min(nodes)
            """
        ) == []

    def test_suppression_comment_silences(self):
        source = (
            "def f(nodes: set):\n"
            "    return next(iter(nodes))  # repro: allow-DET005 singleton\n"
        )
        assert lint_source(source, FIXTURE_PATH) == []


class TestSuppressionParsing:
    def test_multiple_codes_one_comment(self):
        line = "x = 1  # repro: allow-DET001, DET005 order-free"
        assert suppressed_rules(line) == frozenset({"DET001", "DET005"})

    def test_unrelated_comment_suppresses_nothing(self):
        assert suppressed_rules("x = 1  # just a comment") == frozenset()

    def test_suppressing_other_rule_does_not_silence(self):
        source = (
            "nodes = {1, 2}\n"
            "for n in nodes:  # repro: allow-DET002 wrong code\n"
            "    print(n)\n"
        )
        assert [f.rule for f in lint_source(source, FIXTURE_PATH)] == [
            "DET001"
        ]


class TestScoping:
    def test_routing_packages_in_scope(self):
        assert routing_rules_apply("src/repro/detailed/router.py")
        assert routing_rules_apply("src/repro/parallel/batching.py")

    def test_non_routing_repro_packages_out_of_scope(self):
        assert not routing_rules_apply("src/repro/observe/tracer.py")
        assert not routing_rules_apply("src/repro/eval/violations.py")

    def test_standalone_files_in_scope(self):
        assert routing_rules_apply(FIXTURE_PATH)

    def test_routing_only_rule_skipped_outside_routing(self):
        source = "nodes = {1, 2}\nfor n in nodes:\n    print(n)\n"
        assert lint_source(source, "src/repro/observe/helper.py") == []
        # DET004 applies everywhere.
        bad_default = "def f(x=[]):\n    return x\n"
        assert [
            f.rule
            for f in lint_source(bad_default, "src/repro/observe/helper.py")
        ] == ["DET004"]


class TestReportAndBaseline:
    BAD_SNIPPET = "frontier = {1, 2}\nnode = frontier.pop()\n"

    def test_lint_paths_flags_fixture_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD_SNIPPET)
        report = lint_paths([str(tmp_path)])
        assert not report.ok
        assert {f.rule for f in report.findings} == {"DET005"}
        rendered = render_findings(report)
        assert "DET005" in rendered and "hint:" in rendered

    def test_baseline_grandfathers_known_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD_SNIPPET)
        report = lint_paths([str(tmp_path)])
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, report.findings)
        fingerprints = Baseline.load(baseline_path).fingerprints
        again = lint_paths([str(tmp_path)], baseline_fingerprints=fingerprints)
        assert again.ok
        assert len(again.grandfathered) == len(report.findings)

    def test_new_finding_not_hidden_by_baseline(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD_SNIPPET)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, lint_paths([str(tmp_path)]).findings)
        bad.write_text(self.BAD_SNIPPET + "stamp = id(object())\n")
        fingerprints = Baseline.load(baseline_path).fingerprints
        report = lint_paths([str(tmp_path)], baseline_fingerprints=fingerprints)
        assert not report.ok
        assert len(report.findings) == 1

    def test_every_rule_has_fix_hint_and_rationale(self):
        for rule in RULES.values():
            assert rule.fix_hint
            assert rule.rationale


class TestCLI:
    REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

    def test_lint_src_is_clean(self, capsys):
        from repro.cli import main

        code = main(["lint", str(self.REPO_ROOT / "src")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_lint_bad_fixture_fails(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        code = main(["lint", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DET002" in out

    def test_lint_json_output(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        code = main(["lint", "--format", "json", str(bad)])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["ok"] is False
        assert document["findings"][0]["rule"] == "DET004"
        assert document["findings"][0]["fix_hint"]
