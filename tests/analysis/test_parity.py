"""The static cross-backend parity analyzer (PAR rules).

Each rule gets a minimal drift-injection corpus (one backend of a
declared pair diverges) plus a clean variant proving the rule does not
cross-fire on symmetric code.  Non-PAR005 corpora use names that ARE
in the observe schema registry (``maze_expansions``,
``edge_overflow``) so only the rule under test fires.  The final gate
asserts the repository's own ``src`` tree is parity-clean under the
committed (empty) baseline.
"""

import json

import pytest

from repro.analysis import (
    PAR_RULES,
    analyze_parity_paths,
    analyze_parity_source,
    paired,
    render_parity,
    resolve_parity_rule_filter,
)
from repro.cli import main


def codes(source, path="corpus.py"):
    return [f.rule for f in analyze_parity_source(source, path)]


# ----------------------------------------------------------------------
# The @paired marker itself
# ----------------------------------------------------------------------
class TestPairedMarker:
    def test_marker_is_inert(self):
        @paired("demo", backend="object")
        def probe(x):
            return x + 1

        assert probe(1) == 2
        assert probe.__repro_pair__ == "demo"
        assert probe.__repro_pair_backend__ == "object"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            paired("demo", backend="gpu")

    def test_empty_pair_name_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            paired("", backend="object")


# ----------------------------------------------------------------------
# PAR001: counter bumped in one backend only
# ----------------------------------------------------------------------
COUNTER_DRIFT = """\
@paired("demo", backend="object")
def ref(tracer):
    tracer.count("maze_expansions")

@paired("demo", backend="array")
def fast(tracer):
    pass
"""

COUNTER_SYMMETRIC = """\
@paired("demo", backend="object")
def ref(tracer):
    tracer.count("maze_expansions")

@paired("demo", backend="array")
def fast(tracer):
    tracer.count("maze_expansions")
"""

STORE_DRIFT = """\
@paired("demo", backend="object")
def ref(stats):
    stats["maze_expansions"] = stats.get("maze_expansions", 0) + 1

@paired("demo", backend="array")
def fast(stats):
    pass
"""


class TestCounterParity:
    def test_count_drift_fires_par001(self):
        assert codes(COUNTER_DRIFT) == ["PAR001"]

    def test_symmetric_counts_are_clean(self):
        assert codes(COUNTER_SYMMETRIC) == []

    def test_stats_store_drift_fires_par001(self):
        assert codes(STORE_DRIFT) == ["PAR001"]

    def test_finding_names_both_backends(self):
        finding = analyze_parity_source(COUNTER_DRIFT, "corpus.py")[0]
        assert "object" in finding.message
        assert "array" in finding.message
        assert "maze_expansions" in finding.message


# ----------------------------------------------------------------------
# PAR002: span/gauge/progress emitted in one backend only
# ----------------------------------------------------------------------
GAUGE_DRIFT = """\
@paired("demo", backend="object")
def ref(span):
    span.gauge("edge_overflow", 3)

@paired("demo", backend="array")
def fast(span):
    pass
"""

SPAN_DRIFT = """\
@paired("demo", backend="object")
def ref(tracer):
    with tracer.span("levelize"):
        pass

@paired("demo", backend="array")
def fast(tracer):
    pass
"""

PROGRESS_SYMMETRIC = """\
@paired("demo", backend="object")
def ref(tracer):
    tracer.progress("net", done=1, total=2)

@paired("demo", backend="array")
def fast(tracer):
    tracer.progress("net", done=1, total=2)
"""


class TestEventParity:
    def test_gauge_drift_fires_par002(self):
        assert codes(GAUGE_DRIFT) == ["PAR002"]

    def test_span_drift_fires_par002(self):
        assert codes(SPAN_DRIFT) == ["PAR002"]

    def test_symmetric_progress_is_clean(self):
        assert codes(PROGRESS_SYMMETRIC) == []


# ----------------------------------------------------------------------
# PAR003: RouterConfig field consumed by one backend only
# ----------------------------------------------------------------------
CONFIG_DRIFT = """\
@paired("demo", backend="object")
def ref(config, x):
    return x * config.alpha

@paired("demo", backend="array")
def fast(config, x):
    return x
"""

CONFIG_SYMMETRIC = """\
@paired("demo", backend="object")
def ref(config, x):
    return x * config.alpha

@paired("demo", backend="array")
def fast(config, x):
    return x * config.alpha
"""


class TestConfigParity:
    def test_config_read_drift_fires_par003(self):
        assert codes(CONFIG_DRIFT) == ["PAR003"]

    def test_symmetric_reads_are_clean(self):
        assert codes(CONFIG_SYMMETRIC) == []

    def test_non_config_receiver_is_ignored(self):
        source = CONFIG_DRIFT.replace("config", "options")
        assert codes(source) == []


# ----------------------------------------------------------------------
# PAR004: divergent exception / shared-state op surface
# ----------------------------------------------------------------------
RAISE_DRIFT = """\
@paired("demo", backend="object")
def ref(x):
    if x < 0:
        raise ValueError("negative")
    return x

@paired("demo", backend="array")
def fast(x):
    return x
"""

OP_DRIFT = """\
@paired("demo", backend="object")
def ref(overlay, net, node):
    overlay.occupy(node, net)

@paired("demo", backend="array")
def fast(overlay, net, node):
    pass
"""

OP_SYMMETRIC = """\
@paired("demo", backend="object")
def ref(overlay, net, node):
    overlay.occupy(node, net)

@paired("demo", backend="array")
def fast(overlay, net, node):
    overlay.occupy(node, net)
"""


class TestSurfaceParity:
    def test_raise_drift_fires_par004(self):
        assert codes(RAISE_DRIFT) == ["PAR004"]

    def test_op_drift_fires_par004(self):
        assert codes(OP_DRIFT) == ["PAR004"]

    def test_symmetric_ops_are_clean(self):
        assert codes(OP_SYMMETRIC) == []


# ----------------------------------------------------------------------
# PAR005: emitted name missing from the schema registry
# ----------------------------------------------------------------------
UNREGISTERED_COUNTER = """\
def lonely(tracer):
    tracer.count("totally_unregistered_counter")
"""

REGISTERED_COUNTER = """\
def lonely(tracer):
    tracer.count("maze_expansions")
"""

STORE_OF_GAUGE_NAME = """\
def accumulate(stats, w):
    stats["conflict_weight"] = stats.get("conflict_weight", 0.0) + w
"""

UNREGISTERED_SPAN_KWARG = """\
def staged(tracer):
    with tracer.span("levelize", bogus_kwarg_gauge=3):
        pass
"""


class TestRegistryParity:
    def test_unregistered_counter_fires_par005(self):
        assert codes(UNREGISTERED_COUNTER) == ["PAR005"]

    def test_registered_counter_is_clean(self):
        assert codes(REGISTERED_COUNTER) == []

    def test_par005_needs_no_pair(self):
        findings = analyze_parity_source(UNREGISTERED_COUNTER, "c.py")
        assert findings[0].rule == "PAR005"

    def test_store_of_registered_gauge_name_is_clean(self):
        # Scratch-dict stores do not reveal the eventual kind: assign
        # accumulates conflict_weight this way before emitting it as a
        # gauge, so either registered kind satisfies PAR005.
        assert codes(STORE_OF_GAUGE_NAME) == []

    def test_unregistered_span_kwarg_fires_par005(self):
        assert codes(UNREGISTERED_SPAN_KWARG) == ["PAR005"]


# ----------------------------------------------------------------------
# PAR006: drifting signatures, defaults, duplicate tags
# ----------------------------------------------------------------------
DEFAULT_DRIFT = """\
@paired("demo", backend="object")
def ref(x, limit=100):
    return x

@paired("demo", backend="array")
def fast(x, limit=200):
    return x
"""

EXTRA_PARAM = """\
@paired("demo", backend="object")
def ref(x):
    return x

@paired("demo", backend="array")
def fast(x, scratch):
    return x
"""

RECEIVER_EXEMPT = """\
@paired("demo", backend="object")
def ref(grid, x):
    return x

class Fast:
    @paired("demo", backend="array")
    def method(self, grid, x):
        return x
"""

DUPLICATE_TAG = """\
@paired("demo", backend="object")
def ref(x):
    return x

@paired("demo", backend="object")
def ref2(x):
    return x
"""


class TestSignatureParity:
    def test_default_drift_fires_par006(self):
        assert codes(DEFAULT_DRIFT) == ["PAR006"]

    def test_extra_param_fires_par006(self):
        assert codes(EXTRA_PARAM) == ["PAR006"]

    def test_receiver_param_is_exempt(self):
        assert codes(RECEIVER_EXEMPT) == []

    def test_duplicate_backend_tag_fires_par006(self):
        assert "PAR006" in codes(DUPLICATE_TAG)

    def test_finding_lands_on_non_reference_member(self):
        finding = analyze_parity_source(DEFAULT_DRIFT, "corpus.py")[0]
        assert finding.line == 6  # fast's def line, not ref's


# ----------------------------------------------------------------------
# Transitive signatures
# ----------------------------------------------------------------------
TRANSITIVE_DRIFT = """\
def _helper(tracer):
    tracer.count("maze_expansions")

@paired("demo", backend="object")
def ref(tracer):
    _helper(tracer)

@paired("demo", backend="array")
def fast(tracer):
    pass
"""

SHARED_PREAMBLE = """\
def _preamble(tracer):
    tracer.count("maze_expansions")

@paired("demo", backend="object")
def ref(tracer):
    _preamble(tracer)

@paired("demo", backend="array")
def fast(tracer):
    _preamble(tracer)
"""

PAIRED_CALLEE_BOUNDARY = """\
@paired("inner", backend="object")
def inner_ref(tracer):
    tracer.count("maze_expansions")

@paired("inner", backend="array")
def inner_fast(tracer):
    tracer.count("maze_expansions")

@paired("outer", backend="object")
def outer_ref(tracer):
    inner_ref(tracer)

@paired("outer", backend="array")
def outer_fast(tracer):
    pass
"""


class TestTransitiveSignatures:
    def test_helper_emission_folds_into_caller(self):
        assert codes(TRANSITIVE_DRIFT) == ["PAR001"]

    def test_finding_lands_at_the_emit_site(self):
        finding = analyze_parity_source(TRANSITIVE_DRIFT, "corpus.py")[0]
        assert finding.line == 2  # inside _helper, where to suppress

    def test_shared_preamble_is_clean(self):
        assert codes(SHARED_PREAMBLE) == []

    def test_paired_callee_is_a_contract_boundary(self):
        # outer_ref calls the (internally symmetric) inner pair; the
        # inner pair's own effects must not leak into the outer diff.
        assert codes(PAIRED_CALLEE_BOUNDARY) == []


# ----------------------------------------------------------------------
# Suppressions and rule filters
# ----------------------------------------------------------------------
SUPPRESSED_DRIFT = """\
@paired("demo", backend="object")
def ref(tracer):
    tracer.count("maze_expansions")  # repro: allow-PAR001 object-only

@paired("demo", backend="array")
def fast(tracer):
    pass
"""

DEAD_SUPPRESSION = """\
def quiet(x):
    return x + 1  # repro: allow-PAR001 nothing here
"""


class TestSuppression:
    def test_allow_comment_suppresses(self):
        assert codes(SUPPRESSED_DRIFT) == []

    def test_dead_suppression_is_reported(self, tmp_path):
        path = tmp_path / "corpus.py"
        path.write_text(DEAD_SUPPRESSION, encoding="utf-8")
        report = analyze_parity_paths([str(path)])
        assert report.ok
        assert len(report.dead_suppressions) == 1
        assert report.dead_suppressions[0].codes == ("PAR001",)

    def test_rule_filter_default_is_every_rule(self):
        assert resolve_parity_rule_filter() == frozenset(PAR_RULES)

    def test_rule_filter_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            resolve_parity_rule_filter(select=["PAR999"])


# ----------------------------------------------------------------------
# CLI and baseline
# ----------------------------------------------------------------------
class TestParityCli:
    @pytest.fixture()
    def dirty_path(self, tmp_path):
        path = tmp_path / "corpus.py"
        path.write_text(COUNTER_DRIFT, encoding="utf-8")
        return path

    def test_findings_exit_one(self, dirty_path, monkeypatch, capsys):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["parity", str(dirty_path)]) == 1
        out = capsys.readouterr().out
        assert "PAR001" in out and "hint:" in out

    def test_json_format(self, dirty_path, monkeypatch, capsys):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["parity", "--format", "json", str(dirty_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["pairs"] == 1
        assert document["findings"][0]["rule"] == "PAR001"

    def test_ignore_passes(self, dirty_path, monkeypatch):
        monkeypatch.chdir(dirty_path.parent)
        assert (
            main(["parity", "--ignore", "PAR001", str(dirty_path)]) == 0
        )

    def test_unknown_code_is_usage_error(
        self, dirty_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["parity", "--select", "PAR999", str(dirty_path)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_update_baseline_grandfathers(
        self, dirty_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["parity", "--update-baseline", str(dirty_path)]) == 0
        out = capsys.readouterr().out
        assert "parity-baseline.json" in out
        assert "1 added, 0 pruned" in out
        assert main(["parity", str(dirty_path)]) == 0

    def test_update_baseline_prunes_fixed_findings(
        self, dirty_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["parity", "--update-baseline", str(dirty_path)]) == 0
        capsys.readouterr()
        dirty_path.write_text(COUNTER_SYMMETRIC, encoding="utf-8")
        assert main(["parity", "--update-baseline", str(dirty_path)]) == 0
        assert "0 added, 1 pruned" in capsys.readouterr().out


class TestCheckCli:
    def test_clean_tree_passes(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "clean.py"
        path.write_text(COUNTER_SYMMETRIC, encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "check: PASS" in out
        assert "== lint ==" in out and "== parity ==" in out

    def test_any_gate_failing_fails_the_run(
        self, tmp_path, monkeypatch, capsys
    ):
        path = tmp_path / "corpus.py"
        path.write_text(COUNTER_DRIFT, encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["check", str(path)]) == 1
        assert "check: FAIL" in capsys.readouterr().out

    def test_json_merges_all_gates(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "corpus.py"
        path.write_text(COUNTER_DRIFT, encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--format", "json", str(path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["lint"]["ok"] is True
        assert document["races"]["ok"] is True
        assert document["parity"]["ok"] is False


# ----------------------------------------------------------------------
# The repository's own engine is clean
# ----------------------------------------------------------------------
class TestSrcIsClean:
    def test_src_passes_under_committed_baseline(self):
        # Committed baseline is empty: every cross-backend divergence
        # in the engine must be symmetric, suppressed at its emit site
        # with a reason, or fixed — never silently grandfathered.
        report = analyze_parity_paths(["src"])
        assert report.ok, render_parity(report)
        assert report.pairs >= 3
        assert not report.dead_suppressions
