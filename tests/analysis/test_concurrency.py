"""The static concurrency-effect analyzer (CONC rules).

Each rule gets a minimal violating corpus snippet plus a clean
variant; the two PR-8 regression shapes (batch-index backfill,
tombstone self-release replay) are encoded verbatim as corpora so the
analyzer provably catches the bugs the 10x differential run found
dynamically.  The final gate asserts the repository's own ``src`` tree
is clean under the committed baseline.
"""

import json

import pytest

from repro.analysis import (
    CONC_RULES,
    analyze_paths,
    analyze_source,
    context,
    render_races,
    resolve_races_rule_filter,
)
from repro.cli import main


def codes(source, path="corpus.py"):
    return [finding.rule for finding in analyze_source(source, path)]


# ----------------------------------------------------------------------
# The @context marker itself
# ----------------------------------------------------------------------
class TestContextMarker:
    def test_marker_is_inert(self):
        @context("speculative")
        def probe(x):
            return x + 1

        assert probe(1) == 2
        assert probe.__repro_context__ == "speculative"
        assert probe.__repro_reads__ is None
        assert probe.__repro_writes__ is None

    def test_footprints_become_tuples(self):
        @context("worker-process", reads=["channel"], writes=["grid.owner"])
        def probe():
            pass

        assert probe.__repro_reads__ == ("channel",)
        assert probe.__repro_writes__ == ("grid.owner",)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown context kind"):
            context("background")

    def test_unknown_structure_raises(self):
        with pytest.raises(ValueError, match="unknown shared structure"):
            context("canonical", writes=["grid.ownerz"])


# ----------------------------------------------------------------------
# CONC001 / CONC002: base-state access from a speculative context
# ----------------------------------------------------------------------
SPECULATIVE_BASE_WRITE = """\
from repro.analysis.context import context

@context("speculative")
def route(grid, net, overlay):
    overlay.occupy(net, net)
    grid.release(net, net)
"""

SPECULATIVE_BASE_READ = """\
from repro.analysis.context import context

@context("speculative")
def probe(graph, key):
    return graph.edge_demand(key)
"""

SPECULATIVE_CLEAN = """\
from repro.analysis.context import context

@context("speculative")
def route(grid, net):
    overlay = grid.speculative_overlay()
    overlay.occupy(net, net)
    return overlay.owner(net)
"""

INTERPROCEDURAL_WRITE = """\
from repro.analysis.context import context

def bump(graph, key):
    graph.add_edge_demand(key, 1)

@context("speculative")
def route(graph, key):
    bump(graph, key)
"""

INTERPROCEDURAL_CLEAN = """\
from repro.analysis.context import context

def probe(snap, key):
    return snap.edge_demand(key)

@context("speculative")
def route(graph, key):
    snap = graph.snapshot()
    return probe(snap, key)
"""


class TestSpeculativeBaseAccess:
    def test_base_write_fires_conc001(self):
        assert "CONC001" in codes(SPECULATIVE_BASE_WRITE)

    def test_base_read_fires_conc002(self):
        assert "CONC002" in codes(SPECULATIVE_BASE_READ)

    def test_overlay_usage_is_clean(self):
        assert codes(SPECULATIVE_CLEAN) == []

    def test_write_through_helper_fires_conc001(self):
        found = codes(INTERPROCEDURAL_WRITE)
        assert "CONC001" in found

    def test_finding_lands_at_seed_call_site(self):
        findings = analyze_source(INTERPROCEDURAL_WRITE, "corpus.py")
        conc001 = [f for f in findings if f.rule == "CONC001"]
        assert conc001 and "via" in conc001[0].message
        assert conc001[0].text == "bump(graph, key)"

    def test_snapshot_through_helper_is_clean(self):
        assert codes(INTERPROCEDURAL_CLEAN) == []


# ----------------------------------------------------------------------
# CONC003: closures crossing the process-pool boundary
# ----------------------------------------------------------------------
LAMBDA_TASK = """\
from repro.parallel.process import ProcessBatchExecutor

def launch(payloads):
    pool = ProcessBatchExecutor(4)
    pool.configure(task=lambda x: x)
    return pool.run(payloads)
"""

MODULE_LEVEL_TASK = """\
from repro.parallel.process import ProcessBatchExecutor

def work(x):
    return x

def launch(payloads):
    pool = ProcessBatchExecutor(4)
    pool.configure(task=work)
    return pool.run(payloads)
"""


class TestProcessPoolBoundary:
    def test_lambda_task_fires_conc003(self):
        assert "CONC003" in codes(LAMBDA_TASK)

    def test_module_level_task_is_clean(self):
        assert "CONC003" not in codes(MODULE_LEVEL_TASK)


# ----------------------------------------------------------------------
# CONC004: declared footprint narrower than reachable effects
# ----------------------------------------------------------------------
NARROW_FOOTPRINT = """\
from repro.analysis.context import context

@context("worker-process", reads=("channel",), writes=())
def task(graph, key):
    graph.add_edge_demand(key, 1)
"""

EXACT_FOOTPRINT = """\
from repro.analysis.context import context

@context("worker-process", reads=("channel",), writes=("global.demand",))
def task(graph, channel, key):
    channel.sync()
    graph.add_edge_demand(key, 1)
"""


class TestDeclaredFootprint:
    def test_undeclared_write_fires_conc004(self):
        assert "CONC004" in codes(NARROW_FOOTPRINT)

    def test_exact_footprint_is_clean(self):
        assert codes(EXACT_FOOTPRINT) == []


# ----------------------------------------------------------------------
# CONC005: fan-in consumed in non-submission order
# ----------------------------------------------------------------------
# The PR-8 batch-index backfill bug: results were collected into a set
# and drained with pop(), so merge order followed hash order instead
# of submission order.
BATCH_BACKFILL = """\
from repro.analysis.context import context

@context("canonical")
def merge(pool, batch):
    results = set(pool.run(route, batch))
    while results:
        commit(results.pop())
"""

AS_COMPLETED_MERGE = """\
from concurrent.futures import as_completed
from repro.analysis.context import context

@context("canonical")
def merge(futures):
    for future in as_completed(futures):
        commit(future.result())
"""

SUBMISSION_ORDER_MERGE = """\
from repro.analysis.context import context

@context("canonical")
def merge(pool, batch):
    results = pool.run(route, batch)
    for result in results:
        commit(result)
"""


class TestFanInOrder:
    def test_set_drain_fires_conc005(self):
        assert "CONC005" in codes(BATCH_BACKFILL)

    def test_as_completed_fires_conc005(self):
        assert "CONC005" in codes(AS_COMPLETED_MERGE)

    def test_list_order_merge_is_clean(self):
        assert codes(SUBMISSION_ORDER_MERGE) == []

    def test_only_canonical_contexts_are_judged(self):
        uncontexted = BATCH_BACKFILL.replace(
            '@context("canonical")\n', ""
        )
        assert "CONC005" not in codes(uncontexted)


# ----------------------------------------------------------------------
# CONC006: shared-memory lifecycle
# ----------------------------------------------------------------------
LEAKED_SEGMENT = """\
from multiprocessing import shared_memory

def leak():
    seg = shared_memory.SharedMemory(name="x", create=True, size=64)
    seg.buf[0] = 1
"""

HAPPY_PATH_ONLY_CLOSE = """\
from multiprocessing import shared_memory

def leak():
    seg = shared_memory.SharedMemory(name="x", create=True, size=64)
    seg.buf[0] = 1
    seg.close()
"""

GUARDED_SEGMENT = """\
from multiprocessing import shared_memory

def hold():
    seg = shared_memory.SharedMemory(name="x", create=True, size=64)
    try:
        seg.buf[0] = 1
    except Exception:
        seg.close()
        seg.unlink()
        raise
    return 1
"""

RETURNED_SEGMENT = """\
from multiprocessing import shared_memory

def make():
    seg = shared_memory.SharedMemory(name="x", create=True, size=64)
    return seg
"""

SELF_OWNED_SEGMENT = """\
from multiprocessing import shared_memory

class Channel:
    def open(self):
        self._seg = shared_memory.SharedMemory(
            name="x", create=True, size=64
        )
"""


class TestSharedMemoryLifecycle:
    def test_unprotected_create_fires_conc006(self):
        assert "CONC006" in codes(LEAKED_SEGMENT)

    def test_happy_path_close_still_fires(self):
        # close() on the success path only: an exception between the
        # create and the close still leaks the segment.
        assert "CONC006" in codes(HAPPY_PATH_ONLY_CLOSE)

    def test_failure_path_cleanup_is_clean(self):
        assert codes(GUARDED_SEGMENT) == []

    def test_returned_segment_is_clean(self):
        assert codes(RETURNED_SEGMENT) == []

    def test_self_owned_segment_is_clean(self):
        assert codes(SELF_OWNED_SEGMENT) == []


# ----------------------------------------------------------------------
# The tombstone self-release regression (PR 8)
# ----------------------------------------------------------------------
# The speculation force-claimed a node from a foreign net, trimmed it
# away, and the merge replay then released it against the *live* grid
# keyed on the speculating net — a base-state write outside the
# overlay/delta surface.
TOMBSTONE_SELF_RELEASE = """\
from repro.analysis.context import context

@context("speculative")
def replay_trim(grid, overlay, net, node):
    if overlay.owner(node) is None:
        grid.release(node, net)
"""

TOMBSTONE_VIA_OVERLAY = """\
from repro.analysis.context import context

@context("speculative")
def replay_trim(grid, net, node):
    overlay = grid.speculative_overlay()
    if overlay.owner(node) is None:
        overlay.release(node, net)
"""


class TestTombstoneRegression:
    def test_live_grid_release_fires_conc001(self):
        assert "CONC001" in codes(TOMBSTONE_SELF_RELEASE)

    def test_overlay_release_is_clean(self):
        assert codes(TOMBSTONE_VIA_OVERLAY) == []


# ----------------------------------------------------------------------
# Suppressions and rule filtering
# ----------------------------------------------------------------------
class TestSuppression:
    def test_allow_comment_suppresses(self):
        suppressed = SPECULATIVE_BASE_WRITE.replace(
            "grid.release(net, net)",
            "grid.release(net, net)  # repro: allow-CONC001 replay",
        )
        assert "CONC001" not in codes(suppressed)

    def test_dead_suppression_is_reported(self, tmp_path):
        path = tmp_path / "corpus.py"
        path.write_text(
            SPECULATIVE_CLEAN.replace(
                "overlay.occupy(net, net)",
                "overlay.occupy(net, net)  # repro: allow-CONC001",
            ),
            encoding="utf-8",
        )
        report = analyze_paths([str(path)])
        assert report.ok
        assert len(report.dead_suppressions) == 1
        assert report.dead_suppressions[0].codes == ("CONC001",)

    def test_quoted_syntax_in_string_is_inert(self, tmp_path):
        path = tmp_path / "corpus.py"
        path.write_text(
            'HOWTO = "silence with # repro: allow-CONC001"\n',
            encoding="utf-8",
        )
        report = analyze_paths([str(path)])
        assert report.dead_suppressions == []

    def test_rule_filter_default_is_every_rule(self):
        assert resolve_races_rule_filter() == frozenset(CONC_RULES)

    def test_rule_filter_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            resolve_races_rule_filter(select=["CONC999"])


# ----------------------------------------------------------------------
# CLI and baseline
# ----------------------------------------------------------------------
class TestRacesCli:
    @pytest.fixture()
    def dirty_path(self, tmp_path):
        path = tmp_path / "corpus.py"
        path.write_text(SPECULATIVE_BASE_WRITE, encoding="utf-8")
        return path

    def test_findings_exit_one(self, dirty_path, monkeypatch, capsys):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["races", str(dirty_path)]) == 1
        out = capsys.readouterr().out
        assert "CONC001" in out and "hint:" in out

    def test_json_format(self, dirty_path, monkeypatch, capsys):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["races", "--format", "json", str(dirty_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["findings"][0]["rule"] == "CONC001"
        assert document["findings"][0]["fix_hint"]

    def test_ignore_passes(self, dirty_path, monkeypatch):
        monkeypatch.chdir(dirty_path.parent)
        assert (
            main(["races", "--ignore", "CONC001", str(dirty_path)]) == 0
        )

    def test_unknown_code_is_usage_error(
        self, dirty_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["races", "--select", "CONC999", str(dirty_path)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_update_baseline_grandfathers(
        self, dirty_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["races", "--update-baseline", str(dirty_path)]) == 0
        assert "1 added, 0 pruned" in capsys.readouterr().out
        assert main(["races", str(dirty_path)]) == 0

    def test_new_finding_fails_despite_baseline(
        self, dirty_path, monkeypatch
    ):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["races", "--update-baseline", str(dirty_path)]) == 0
        dirty_path.write_text(
            SPECULATIVE_BASE_WRITE + SPECULATIVE_BASE_READ.replace(
                "from repro.analysis.context import context\n", ""
            ),
            encoding="utf-8",
        )
        assert main(["races", str(dirty_path)]) == 1

    def test_update_baseline_prunes_fixed_findings(
        self, dirty_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(dirty_path.parent)
        assert main(["races", "--update-baseline", str(dirty_path)]) == 0
        capsys.readouterr()
        dirty_path.write_text(SPECULATIVE_CLEAN, encoding="utf-8")
        assert main(["races", "--update-baseline", str(dirty_path)]) == 0
        assert "0 added, 1 pruned" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The repository's own engine is clean
# ----------------------------------------------------------------------
class TestSrcIsClean:
    def test_src_passes_under_committed_baseline(self):
        # Committed baseline is empty: the engine must stay CONC-clean
        # outright, and this gate catches any marker drift.
        report = analyze_paths(["src"])
        assert report.ok, render_races(report)
