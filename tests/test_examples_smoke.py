"""Smoke tests: every example script runs to completion.

Examples are documentation; a broken one is a broken promise.  The
heavy routing examples run at tiny scales through their module mains.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST = [
    "rasterization_defects.py",
    "layer_assignment_study.py",
    "throughput_study.py",
]


@pytest.mark.parametrize("script", FAST)
def test_fast_example_runs(script):
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip()


def test_quickstart_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert out.returncode == 0, out.stderr
    assert "stitch-aware framework" in out.stdout


def test_raster_roundtrip_runs(tmp_path):
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "raster_roundtrip.py")],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(tmp_path),
    )
    assert out.returncode == 0, out.stderr
    assert "Rasterized defect scores" in out.stdout
    assert (tmp_path / "routed_window_gray.pgm").exists()


def test_mcnc_full_flow_tiny(tmp_path):
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "mcnc_full_flow.py"), "0.01"],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(tmp_path),
    )
    assert out.returncode == 0, out.stderr
    assert (tmp_path / "s38417_routing.svg").exists()
