"""Fault injection for the process-pool backend.

A worker process can die (OOM kill, segfault, interpreter abort) or a
task can raise mid-batch.  In either case the run must fail *fast and
legibly* — a diagnostic naming what was lost, no hang — and the owner
must still unlink every shared-memory segment on the way out
(:func:`repro.parallel.active_segments` drains to empty).

The injection works through the ``fork`` start method: workers pickle
the task function *by reference*, so monkeypatching the routers'
module-level worker task in the parent swaps in the poison before the
pool forks, and the forked children resolve the patched attribute
through their inherited ``sys.modules``.
"""

import os
import signal

import pytest

from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.parallel import BatchPlan, ProcessBatchExecutor, active_segments


def _poison(net_name):
    raise RuntimeError(f"injected failure routing {net_name}")


def _die(_net_name):
    os.kill(os.getpid(), signal.SIGKILL)


def _route(circuit="S9234", scale=0.02):
    design = mcnc_design(circuit, scale)
    config = RouterConfig(workers=4, executor="process")
    return StitchAwareRouter(config=config).route(design)


@pytest.fixture(autouse=True)
def no_segment_leaks():
    assert active_segments() == frozenset()
    yield
    assert active_segments() == frozenset()


class TestExecutorFaults:
    """Pool-level behavior, no routers involved."""

    def test_killed_worker_raises_named_diagnostic(self):
        with ProcessBatchExecutor(2) as pool:
            pool.configure(task=_die)
            with pytest.raises(RuntimeError, match="died mid-batch"):
                pool.run(["n1", "n2", "n3"])

    def test_diagnostic_names_the_lost_position(self):
        with ProcessBatchExecutor(2) as pool:
            pool.configure(task=_die)
            with pytest.raises(RuntimeError, match=r"of 3"):
                pool.run(["n1", "n2", "n3"])

    def test_poisoned_task_propagates_original_error(self):
        with ProcessBatchExecutor(2) as pool:
            pool.configure(task=_poison)
            with pytest.raises(RuntimeError, match="injected failure"):
                pool.run(["n1", "n2"])


class TestRouterFaults:
    """Full-flow behavior: the stage fails cleanly and leaks nothing."""

    @staticmethod
    def _collapse_global_batches(monkeypatch):
        # At the gate scale the global stage's organic batches are all
        # width 1 and route inline, never reaching the pool; collapse
        # the plan so the injected fault actually executes.
        import repro.globalroute.router as global_router

        monkeypatch.setattr(
            global_router,
            "plan_batches",
            lambda items, rect_of, expand=0, cell=32: BatchPlan(
                batches=[list(items)], expand=expand
            ),
        )

    def test_poisoned_global_worker_fails_clean(self, monkeypatch):
        import repro.globalroute.router as global_router

        self._collapse_global_batches(monkeypatch)
        monkeypatch.setattr(
            global_router, "_process_worker_task", _poison
        )
        with pytest.raises(RuntimeError, match="injected failure"):
            _route()

    def test_killed_global_worker_fails_clean(self, monkeypatch):
        import repro.globalroute.router as global_router

        self._collapse_global_batches(monkeypatch)
        monkeypatch.setattr(global_router, "_process_worker_task", _die)
        with pytest.raises(RuntimeError, match="died mid-batch"):
            _route()

    def test_poisoned_detail_worker_fails_clean(self, monkeypatch):
        import repro.detailed.router as detailed_router

        monkeypatch.setattr(
            detailed_router, "_process_worker_task", _poison
        )
        with pytest.raises(RuntimeError, match="injected failure"):
            _route()

    def test_killed_detail_worker_fails_clean(self, monkeypatch):
        import repro.detailed.router as detailed_router

        monkeypatch.setattr(detailed_router, "_process_worker_task", _die)
        with pytest.raises(RuntimeError, match="died mid-batch"):
            _route()
