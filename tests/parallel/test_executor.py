"""Tests for the order-preserving worker pools (thread and process)."""

import os
import threading
import time

import pytest

from repro.parallel import (
    BatchExecutor,
    ProcessBatchExecutor,
    validate_workers,
)


class TestConstruction:
    def test_rejects_serial_width(self):
        with pytest.raises(ValueError):
            BatchExecutor(1)
        with pytest.raises(ValueError):
            BatchExecutor(0)

    @pytest.mark.parametrize("pool_cls", [BatchExecutor, ProcessBatchExecutor])
    @pytest.mark.parametrize("workers", [1, 0, -3])
    def test_both_executors_share_the_rejection_message(
        self, pool_cls, workers
    ):
        # One validator, one message: whichever backend the user picked,
        # the diagnostic reads the same.
        expected = f"batch executor needs workers >= 2, got {workers}"
        with pytest.raises(ValueError, match=expected):
            pool_cls(workers)
        with pytest.raises(ValueError, match=expected):
            validate_workers(workers)

    def test_kind_discriminators(self):
        assert BatchExecutor.kind == "thread"
        assert ProcessBatchExecutor.kind == "process"

    def test_context_manager_shutdown_idempotent(self):
        with BatchExecutor(2) as pool:
            pool.run(lambda x: x, [1, 2])
        pool.shutdown()  # second shutdown is a no-op
        assert pool.tasks == 2


class TestRun:
    def test_results_in_submission_order(self):
        # Earlier items sleep longer, so completion order is reversed;
        # the results must still come back in submission order.
        with BatchExecutor(4) as pool:
            delays = [0.05, 0.03, 0.01, 0.0]

            def work(i):
                time.sleep(delays[i])
                return i * 10

            assert pool.run(work, [0, 1, 2, 3]) == [0, 10, 20, 30]

    def test_single_item_runs_inline(self):
        with BatchExecutor(2) as pool:
            caller = threading.current_thread().name
            seen = []
            pool.run(lambda x: seen.append(threading.current_thread().name), [1])
            assert seen == [caller]
            # Inline batches bypass the pool accounting entirely.
            assert pool.tasks == 0
            assert pool.batches == 0

    def test_multi_item_uses_worker_threads(self):
        with BatchExecutor(2) as pool:
            names = pool.run(lambda x: threading.current_thread().name, [1, 2])
            assert all(n.startswith("repro-route") for n in names)
            assert pool.tasks == 2
            assert pool.batches == 1

    def test_worker_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise RuntimeError("net exploded")
            return x

        with BatchExecutor(2) as pool, pytest.raises(
            RuntimeError, match="net exploded"
        ):
            pool.run(boom, [1, 2, 3])


class TestOnTaskHook:
    def test_called_on_calling_thread_in_submission_order(self):
        calls = []
        caller = threading.current_thread().name

        def on_task(index, busy):
            calls.append((index, busy, threading.current_thread().name))

        with BatchExecutor(4, on_task=on_task) as pool:
            delays = [0.03, 0.0, 0.02, 0.01]
            pool.run(lambda i: time.sleep(delays[i]), [0, 1, 2, 3])
        # Submission order, regardless of completion order.
        assert [c[0] for c in calls] == [0, 1, 2, 3]
        assert all(c[2] == caller for c in calls)
        assert all(c[1] >= 0.0 for c in calls)

    def test_global_index_continues_across_batches(self):
        indices = []
        with BatchExecutor(2, on_task=lambda i, b: indices.append(i)) as pool:
            pool.run(lambda x: x, [1, 2, 3])
            pool.run(lambda x: x, [4, 5])
        assert indices == [0, 1, 2, 3, 4]

    def test_inline_single_item_batches_bypass_hook(self):
        calls = []
        with BatchExecutor(2, on_task=lambda i, b: calls.append(i)) as pool:
            pool.run(lambda x: x, [1])
            pool.run(lambda x: x, [2, 3])
        # The width-1 batch bypassed the pool and the hook alike; the
        # pooled batch still numbers its tasks from zero.
        assert calls == [0, 1]

    def test_default_is_no_hook(self):
        with BatchExecutor(2) as pool:
            assert pool.on_task is None
            assert pool.run(lambda x: x + 1, [1, 2]) == [2, 3]


class TestAccounting:
    def test_utilization_bounds(self):
        pool = BatchExecutor(2)
        assert pool.utilization() == 0.0  # nothing pooled yet
        with pool:
            pool.run(lambda x: time.sleep(0.01), [1, 2, 3, 4])
        assert 0.0 < pool.utilization() <= 1.0

    def test_busy_and_capacity_accumulate(self):
        with BatchExecutor(2) as pool:
            pool.run(lambda x: time.sleep(0.005), [1, 2])
            first_busy = pool.busy_seconds
            first_capacity = pool.capacity_seconds
            pool.run(lambda x: time.sleep(0.005), [1, 2])
        assert pool.busy_seconds > first_busy
        assert pool.capacity_seconds > first_capacity
        assert pool.tasks == 4
        assert pool.batches == 2


# ----------------------------------------------------------------------
# Process pool.  Task functions live at module level: they cross the
# process boundary by reference, never by value.
# ----------------------------------------------------------------------
def _triple(x):
    return x * 3


def _worker_pid(_x):
    return os.getpid()


def _boom(x):
    if x == 2:
        raise RuntimeError("net exploded")
    return x


def _nap(seconds):
    time.sleep(seconds)
    return seconds


class TestProcessConfigure:
    def test_run_before_configure_is_rejected(self):
        with ProcessBatchExecutor(2) as pool, pytest.raises(
            RuntimeError, match="before configure"
        ):
            pool.run([1, 2])

    def test_reconfigure_after_start_is_rejected(self):
        with ProcessBatchExecutor(2) as pool:
            pool.configure(task=_triple)
            pool.run([1, 2])
            with pytest.raises(RuntimeError, match="reconfigure"):
                pool.configure(task=_worker_pid)

    def test_shutdown_idempotent(self):
        with ProcessBatchExecutor(2) as pool:
            pool.configure(task=_triple)
            pool.run([1, 2])
        pool.shutdown()  # second shutdown is a no-op
        assert pool.tasks == 2


class TestProcessRun:
    def test_results_in_submission_order(self):
        with ProcessBatchExecutor(2) as pool:
            pool.configure(task=_triple)
            assert pool.run([3, 1, 4, 1, 5]) == [9, 3, 12, 3, 15]

    def test_tasks_run_in_other_processes(self):
        with ProcessBatchExecutor(2) as pool:
            pool.configure(task=_worker_pid)
            pids = pool.run([1, 2, 3, 4])
        assert os.getpid() not in pids

    def test_worker_exception_propagates(self):
        with ProcessBatchExecutor(2) as pool, pytest.raises(
            RuntimeError, match="net exploded"
        ):
            pool.configure(task=_boom)
            pool.run([1, 2, 3])


class TestProcessOnTask:
    def test_called_on_calling_process_in_submission_order(self):
        calls = []
        pool = ProcessBatchExecutor(
            2, on_task=lambda i, busy: calls.append((i, busy, os.getpid()))
        )
        with pool:
            pool.configure(task=_nap)
            pool.run([0.01, 0.0])
            pool.run([0.0])
        caller = os.getpid()
        assert [c[0] for c in calls] == [0, 1, 2]
        assert all(c[2] == caller for c in calls)
        assert all(c[1] >= 0.0 for c in calls)


class TestProcessAccounting:
    def test_utilization_bounds_and_counts(self):
        pool = ProcessBatchExecutor(2)
        assert pool.utilization() == 0.0  # nothing pooled yet
        with pool:
            pool.configure(task=_nap)
            pool.run([0.01, 0.01, 0.01])
        assert 0.0 < pool.utilization() <= 1.0
        assert pool.tasks == 3
        assert pool.batches == 1
        assert pool.busy_seconds > 0.0
        assert pool.capacity_seconds > pool.busy_seconds / 2
