"""Tests for the order-preserving worker pool."""

import threading
import time

import pytest

from repro.parallel import BatchExecutor


class TestConstruction:
    def test_rejects_serial_width(self):
        with pytest.raises(ValueError):
            BatchExecutor(1)
        with pytest.raises(ValueError):
            BatchExecutor(0)

    def test_context_manager_shutdown_idempotent(self):
        with BatchExecutor(2) as pool:
            pool.run(lambda x: x, [1, 2])
        pool.shutdown()  # second shutdown is a no-op
        assert pool.tasks == 2


class TestRun:
    def test_results_in_submission_order(self):
        # Earlier items sleep longer, so completion order is reversed;
        # the results must still come back in submission order.
        with BatchExecutor(4) as pool:
            delays = [0.05, 0.03, 0.01, 0.0]

            def work(i):
                time.sleep(delays[i])
                return i * 10

            assert pool.run(work, [0, 1, 2, 3]) == [0, 10, 20, 30]

    def test_single_item_runs_inline(self):
        with BatchExecutor(2) as pool:
            caller = threading.current_thread().name
            seen = []
            pool.run(lambda x: seen.append(threading.current_thread().name), [1])
            assert seen == [caller]
            # Inline batches bypass the pool accounting entirely.
            assert pool.tasks == 0
            assert pool.batches == 0

    def test_multi_item_uses_worker_threads(self):
        with BatchExecutor(2) as pool:
            names = pool.run(lambda x: threading.current_thread().name, [1, 2])
            assert all(n.startswith("repro-route") for n in names)
            assert pool.tasks == 2
            assert pool.batches == 1

    def test_worker_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise RuntimeError("net exploded")
            return x

        with BatchExecutor(2) as pool, pytest.raises(
            RuntimeError, match="net exploded"
        ):
            pool.run(boom, [1, 2, 3])


class TestOnTaskHook:
    def test_called_on_calling_thread_in_submission_order(self):
        calls = []
        caller = threading.current_thread().name

        def on_task(index, busy):
            calls.append((index, busy, threading.current_thread().name))

        with BatchExecutor(4, on_task=on_task) as pool:
            delays = [0.03, 0.0, 0.02, 0.01]
            pool.run(lambda i: time.sleep(delays[i]), [0, 1, 2, 3])
        # Submission order, regardless of completion order.
        assert [c[0] for c in calls] == [0, 1, 2, 3]
        assert all(c[2] == caller for c in calls)
        assert all(c[1] >= 0.0 for c in calls)

    def test_global_index_continues_across_batches(self):
        indices = []
        with BatchExecutor(2, on_task=lambda i, b: indices.append(i)) as pool:
            pool.run(lambda x: x, [1, 2, 3])
            pool.run(lambda x: x, [4, 5])
        assert indices == [0, 1, 2, 3, 4]

    def test_inline_single_item_batches_bypass_hook(self):
        calls = []
        with BatchExecutor(2, on_task=lambda i, b: calls.append(i)) as pool:
            pool.run(lambda x: x, [1])
            pool.run(lambda x: x, [2, 3])
        # The width-1 batch bypassed the pool and the hook alike; the
        # pooled batch still numbers its tasks from zero.
        assert calls == [0, 1]

    def test_default_is_no_hook(self):
        with BatchExecutor(2) as pool:
            assert pool.on_task is None
            assert pool.run(lambda x: x + 1, [1, 2]) == [2, 3]


class TestAccounting:
    def test_utilization_bounds(self):
        pool = BatchExecutor(2)
        assert pool.utilization() == 0.0  # nothing pooled yet
        with pool:
            pool.run(lambda x: time.sleep(0.01), [1, 2, 3, 4])
        assert 0.0 < pool.utilization() <= 1.0

    def test_busy_and_capacity_accumulate(self):
        with BatchExecutor(2) as pool:
            pool.run(lambda x: time.sleep(0.005), [1, 2])
            first_busy = pool.busy_seconds
            first_capacity = pool.capacity_seconds
            pool.run(lambda x: time.sleep(0.005), [1, 2])
        assert pool.busy_seconds > first_busy
        assert pool.capacity_seconds > first_capacity
        assert pool.tasks == 4
        assert pool.batches == 2
