"""Property tests for the shared-memory transport layer.

Two contracts carry the process backend's byte-identity guarantee:

* :class:`~repro.engine.OverlayDelta` must survive its canonical
  payload form losslessly — operation *order* included, because the
  merge loop replays ops in overlay insertion order;
* :class:`~repro.parallel.SharedStateChannel` must deliver every
  published array bit-exactly and every journal frame exactly once, in
  order, across epoch gaps and journal regrowth — and must never leak
  a segment, on success or error paths alike
  (:func:`repro.parallel.active_segments`).
"""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

# The module-wide leak-check fixture is function-scoped; it wraps the
# whole hypothesis test (all examples), which is exactly the guarantee
# we want here — suppress the per-example health check.
relaxed = settings(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

from repro.engine import OverlayDelta
from repro.parallel import (
    SharedArraySpec,
    SharedStateChannel,
    active_segments,
)

# ----------------------------------------------------------------------
# OverlayDelta payload round-trip
# ----------------------------------------------------------------------
nodes = st.tuples(
    st.integers(0, 3), st.integers(0, 200), st.integers(0, 200)
)
owners = st.one_of(st.none(), st.text(min_size=1, max_size=8))


def deltas():
    return st.builds(
        OverlayDelta,
        ops=st.lists(st.tuples(nodes, owners), max_size=40),
        read_nodes=st.sets(nodes, max_size=40),
        write_nodes=st.sets(nodes, max_size=40),
        cost_evaluations=st.integers(0, 10**9),
    )


class TestOverlayDeltaRoundTrip:
    @relaxed
    @given(delta=deltas())
    def test_payload_round_trip_is_lossless(self, delta):
        back = OverlayDelta.from_payload(delta.to_payload())
        assert back.ops == delta.ops  # order preserved, not just content
        assert back.read_nodes == delta.read_nodes
        assert back.write_nodes == delta.write_nodes
        assert back.cost_evaluations == delta.cost_evaluations

    @relaxed
    @given(delta=deltas())
    def test_payload_survives_pickle(self, delta):
        # The payload is what actually crosses the process boundary.
        wire = pickle.loads(pickle.dumps(delta.to_payload()))
        back = OverlayDelta.from_payload(wire)
        assert back == delta

    @relaxed
    @given(delta=deltas())
    def test_payload_is_canonical(self, delta):
        # Same delta, same payload — footprint set iteration order
        # must never show through.
        rebuilt = OverlayDelta.from_payload(delta.to_payload())
        assert rebuilt.to_payload() == delta.to_payload()


# ----------------------------------------------------------------------
# SharedStateChannel
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def no_segment_leaks():
    assert active_segments() == frozenset()
    yield
    assert active_segments() == frozenset()


SPECS = (
    SharedArraySpec(key="demand", shape=(7, 5), dtype="<f8"),
    SharedArraySpec(key="history", shape=(3, 4, 2), dtype="<i8"),
)


def fill(seed):
    rng = np.random.default_rng(seed)
    return {
        "demand": rng.random((7, 5)),
        "history": rng.integers(0, 1000, (3, 4, 2), dtype=np.int64),
    }


class TestChannelLifecycle:
    def test_owner_close_unlinks_everything(self):
        channel = SharedStateChannel.create("test", SPECS)
        assert active_segments()  # segments exist while live
        channel.close()
        assert active_segments() == frozenset()

    def test_close_is_idempotent(self):
        channel = SharedStateChannel.create("test", SPECS)
        channel.close()
        channel.close()
        channel.unlink()

    def test_create_failure_cleans_up_partial_segments(self):
        bad = (SharedArraySpec(key="bad", shape=(-1,), dtype="<f8"),)
        with pytest.raises(ValueError):
            SharedStateChannel.create("test", bad)
        assert active_segments() == frozenset()

    def test_consumer_close_leaves_owner_segments(self):
        channel = SharedStateChannel.create("test", SPECS)
        try:
            consumer = SharedStateChannel.attach(channel.handle)
            consumer.close()
            assert active_segments()  # owner still live
        finally:
            channel.close()

    def test_side_restrictions(self):
        channel = SharedStateChannel.create("test", SPECS)
        try:
            consumer = SharedStateChannel.attach(channel.handle)
            with pytest.raises(RuntimeError, match="worker-side"):
                channel.sync()
            with pytest.raises(RuntimeError, match="owner-side"):
                consumer.publish({})
            consumer.close()
        finally:
            channel.close()


class TestChannelTransport:
    def test_arrays_arrive_bit_exact(self):
        channel = SharedStateChannel.create("test", SPECS)
        consumer = SharedStateChannel.attach(channel.handle)
        try:
            sent = fill(seed=1)
            channel.publish(sent, b"frame-0")
            synced = consumer.sync()
            assert synced is not None
            arrays, frames = synced
            for key, value in sent.items():
                assert np.array_equal(arrays[key], value)
            assert frames == [b"frame-0"]
        finally:
            consumer.close()
            channel.close()

    def test_unchanged_epoch_syncs_to_none(self):
        channel = SharedStateChannel.create("test", SPECS)
        consumer = SharedStateChannel.attach(channel.handle)
        try:
            channel.publish(fill(seed=2), b"once")
            assert consumer.sync() is not None
            assert consumer.sync() is None  # nothing new
        finally:
            consumer.close()
            channel.close()

    def test_multi_epoch_catch_up_delivers_every_frame_in_order(self):
        channel = SharedStateChannel.create("test", SPECS)
        consumer = SharedStateChannel.attach(channel.handle)
        try:
            expected = [f"frame-{i}".encode() for i in range(5)]
            for i, frame in enumerate(expected):
                channel.publish(fill(seed=i), frame)
            synced = consumer.sync()
            assert synced is not None
            arrays, frames = synced
            assert frames == expected  # oldest first, none dropped
            assert np.array_equal(arrays["demand"], fill(seed=4)["demand"])
        finally:
            consumer.close()
            channel.close()

    def test_journal_growth_past_initial_capacity(self):
        # Each frame is bigger than the whole initial 64 KiB journal,
        # so every publish forces a new generation; the consumer must
        # follow the regrowth and still read every frame intact.
        channel = SharedStateChannel.create("test", ())
        consumer = SharedStateChannel.attach(channel.handle)
        try:
            big = [bytes([i]) * (1 << 17) for i in range(3)]
            channel.publish({}, big[0])
            synced = consumer.sync()
            assert synced is not None and synced[1] == [big[0]]
            channel.publish({}, big[1])
            channel.publish({}, big[2])
            synced = consumer.sync()
            assert synced is not None and synced[1] == big[1:]
        finally:
            consumer.close()
            channel.close()

    def test_publish_counters_accumulate(self):
        channel = SharedStateChannel.create("test", SPECS)
        try:
            channel.publish(fill(seed=0), b"x")
            channel.publish(fill(seed=1), b"yy")
            assert channel.publishes == 2
            assert channel.published_bytes > 0
        finally:
            channel.close()

    @settings(
        parent=relaxed, max_examples=20
    )
    @given(frames=st.lists(st.binary(max_size=2048), max_size=12))
    def test_any_frame_sequence_round_trips(self, frames):
        channel = SharedStateChannel.create("prop", ())
        consumer = SharedStateChannel.attach(channel.handle)
        try:
            for frame in frames:
                channel.publish({}, frame)
            synced = consumer.sync()
            if frames:
                assert synced is not None
                assert synced[1] == frames
            else:
                assert synced is None
        finally:
            consumer.close()
            channel.close()
        assert active_segments() == frozenset()
