"""Differential harness: parallel routing must equal serial routing.

The determinism contract of ``RouterConfig(workers=N)`` (see
``docs/parallelism.md``): for any worker count, the serialized
:class:`~repro.eval.RoutingReport` is byte-identical to the serial
one after stripping wall-time fields, and every deterministic trace
counter matches exactly (only the ``parallel_*`` bookkeeping counters
and the gauges may differ).

The suite also forces the speculative-merge *conflict* path — absent
in organic runs at this scale — by collapsing the batch plan so
overlapping nets share a batch; the footprint validation must then
reject and serially re-route them, still byte-identically.
"""

import json

import pytest

from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.io import report_to_dict
from repro.parallel import BatchPlan

CIRCUITS = {"S9234": 0.02, "S5378": 0.02, "S13207": 0.02}


def route_report(circuit, scale, workers, profile="off"):
    """Serialized report + finished trace for one run."""
    design = mcnc_design(circuit, scale)
    router = StitchAwareRouter(
        config=RouterConfig(workers=workers, profile=profile)
    )
    flow = router.route(design)
    doc = report_to_dict(flow.report)
    # Wall times are the only sanctioned nondeterminism.
    doc.pop("cpu_seconds", None)
    doc.pop("trace", None)
    return doc, flow.trace


def canonical(doc):
    return json.dumps(doc, sort_keys=True).encode()


def assert_counters_match(serial_trace, parallel_trace):
    """Every deterministic counter matches; parallel_* are extra."""
    serial = serial_trace.aggregate_counters()
    parallel = parallel_trace.aggregate_counters()
    routing = {
        k: v for k, v in parallel.items() if not k.startswith("parallel_")
    }
    assert routing == serial


def strip_instrumentation(counters):
    """Drop the scheduling and profiling bookkeeping counters.

    ``parallel_*`` has no serial counterpart and ``perf_*`` includes
    overlay/snapshot accounting only parallel runs produce — the
    routing counters underneath must match exactly.
    """
    return {
        k: v
        for k, v in counters.items()
        if not k.startswith(("parallel_", "perf_", "stream_"))
    }


@pytest.mark.parametrize("circuit", sorted(CIRCUITS))
class TestSerialEquivalence:
    def test_reports_byte_identical(self, circuit):
        scale = CIRCUITS[circuit]
        serial_doc, serial_trace = route_report(circuit, scale, workers=1)
        parallel_doc, parallel_trace = route_report(circuit, scale, workers=4)
        assert canonical(parallel_doc) == canonical(serial_doc)
        assert_counters_match(serial_trace, parallel_trace)

    def test_parallelism_actually_exercised(self, circuit):
        """The contract must not hold vacuously: real batches ran."""
        scale = CIRCUITS[circuit]
        _, trace = route_report(circuit, scale, workers=4)
        counters = trace.aggregate_counters()
        assert counters.get("parallel_batches", 0) > 0
        assert counters.get("parallel_tasks", 0) > 0


class TestWorkerCountInvariance:
    def test_two_and_eight_workers_agree(self):
        serial_doc, _ = route_report("S9234", 0.02, workers=1)
        for workers in (2, 8):
            doc, _ = route_report("S9234", 0.02, workers=workers)
            assert canonical(doc) == canonical(serial_doc)


class TestProfiledEquivalence:
    """The serial-equivalence contract survives profiling.

    ``RouterConfig(profile=...)`` adds ``perf_*`` counters (and, under
    ``full``, streams progress events); the routing counters and the
    serialized report must stay byte-identical to the unprofiled
    serial run — profiling observes, never perturbs.
    """

    @pytest.mark.parametrize("profile", ["counters", "full"])
    def test_profiled_parallel_equals_plain_serial(self, profile):
        serial_doc, serial_trace = route_report("S9234", 0.02, workers=1)
        doc, trace = route_report(
            "S9234", 0.02, workers=4, profile=profile
        )
        assert canonical(doc) == canonical(serial_doc)
        assert strip_instrumentation(
            trace.aggregate_counters()
        ) == strip_instrumentation(serial_trace.aggregate_counters())

    def test_profiled_parallel_counts_overlay_traffic(self):
        _, trace = route_report("S9234", 0.02, workers=4, profile="counters")
        counters = trace.aggregate_counters()
        assert counters.get("perf_overlay_commits", 0) > 0


class TestForcedConflicts:
    """Collapse the plan to one batch: validation must save the result.

    With every net in a single batch, overlapping nets route
    speculatively against the same frozen state — the merge loop's
    read/write-footprint check has to detect the stale reads and
    re-route serially, keeping the output byte-identical.
    """

    @staticmethod
    def _single_batch_planner(items, rect_of, expand=0, cell=32):
        return BatchPlan(batches=[list(items)], expand=expand)

    def test_conflicting_batches_still_serial_equivalent(self, monkeypatch):
        import repro.detailed.router as detailed_router
        import repro.globalroute.router as global_router

        serial_doc, _ = route_report("S5378", 0.02, workers=1)
        monkeypatch.setattr(
            global_router, "plan_batches", self._single_batch_planner
        )
        monkeypatch.setattr(
            detailed_router, "plan_batches", self._single_batch_planner
        )
        forced_doc, forced_trace = route_report("S5378", 0.02, workers=4)
        assert canonical(forced_doc) == canonical(serial_doc)
        counters = forced_trace.aggregate_counters()
        # The collapsed plan must actually have provoked conflicts;
        # otherwise this test proves nothing about the validation.
        assert counters.get("parallel_conflicts", 0) > 0

    def test_forced_conflicts_preserve_counters(self, monkeypatch):
        import repro.detailed.router as detailed_router
        import repro.globalroute.router as global_router

        _, serial_trace = route_report("S9234", 0.02, workers=1)
        monkeypatch.setattr(
            global_router, "plan_batches", self._single_batch_planner
        )
        monkeypatch.setattr(
            detailed_router, "plan_batches", self._single_batch_planner
        )
        _, forced_trace = route_report("S9234", 0.02, workers=4)
        assert_counters_match(serial_trace, forced_trace)
