"""Tests for the speculative-routing overlays.

These verify the mechanics the merge loops rely on: reads see
base-plus-own-writes, writes never leak to the base until ``apply_to``,
and the recorded read/write footprints are exact.
"""

import pytest

from repro.config import RouterConfig
from repro.detailed import DetailedGrid
from repro.detailed.overlay import GridOverlay, _OwnerOverlay
from repro.geometry import Point
from repro.globalroute import GlobalGraph
from repro.globalroute.overlay import GraphSnapshot, windows_hit
from repro.layout import Design, Net, Netlist, Pin, Technology


def make_design(width=60, height=45, layers=3):
    config = RouterConfig(stitch_spacing=15, tile_size=15)
    nets = [
        Net("n0", (Pin("a", Point(1, 1), 1), Pin("b", Point(50, 40), 1))),
        Net("n1", (Pin("c", Point(5, 5), 1), Pin("d", Point(30, 20), 1))),
    ]
    return Design(
        name="toy",
        width=width,
        height=height,
        technology=Technology(layers),
        netlist=Netlist(nets),
        config=config,
    )


class TestOwnerOverlay:
    def test_reads_fall_through_and_are_logged(self):
        base = {("n",): "owner"}
        ov = _OwnerOverlay(base)
        assert ov.get(("n",)) == "owner"
        assert ov.get(("m",)) is None
        assert ov.get(("k",), "dflt") == "dflt"
        assert ov.reads == {("n",), ("m",), ("k",)}
        assert ov.writes == set()

    def test_writes_shadow_base(self):
        base = {("n",): "owner"}
        ov = _OwnerOverlay(base)
        ov[("n",)] = "thief"
        ov[("m",)] = "thief"
        assert ov.get(("n",)) == "thief"
        assert ov.get(("m",)) == "thief"
        assert base[("n",)] == "owner"  # base untouched
        assert ("m",) not in base
        assert ov.writes == {("n",), ("m",)}

    def test_tombstone_hides_base_entry(self):
        base = {("n",): "owner"}
        ov = _OwnerOverlay(base)
        del ov[("n",)]
        assert ov.get(("n",)) is None
        assert ov.get(("n",), "dflt") == "dflt"
        assert base[("n",)] == "owner"
        assert ("n",) in ov.writes


class TestGridOverlay:
    def test_speculative_claim_invisible_to_base(self):
        grid = DetailedGrid(make_design())
        ov = GridOverlay(grid)
        node = (3, 3, 1)
        ov.occupy(node, "n0")
        assert ov.owner(node) == "n0"
        assert grid.owner(node) is None
        assert node in ov.write_nodes

    def test_reads_see_base_state(self):
        grid = DetailedGrid(make_design())
        node = (4, 4, 1)
        grid.occupy(node, "n1")
        ov = GridOverlay(grid)
        assert ov.owner(node) == "n1"
        assert node in ov.read_nodes

    def test_release_tombstones_base_ownership(self):
        grid = DetailedGrid(make_design())
        node = (5, 5, 1)
        grid.occupy(node, "n0")
        ov = GridOverlay(grid)
        ov.release(node, "n0")
        assert ov.owner(node) is None
        assert grid.owner(node) == "n0"  # still owned underneath
        assert node in ov.write_nodes

    def test_apply_to_replays_delta(self):
        grid = DetailedGrid(make_design())
        kept = (2, 2, 1)
        released = (6, 6, 1)
        grid.occupy(released, "n0")
        ov = GridOverlay(grid)
        ov.occupy(kept, "n0")
        ov.release(released, "n0")
        ov.cost_evaluations += 7
        before = grid.cost_evaluations
        ov.apply_to(grid, "n0")
        assert grid.owner(kept) == "n0"
        assert grid.owner(released) is None
        assert grid.cost_evaluations == before + 7

    def test_claim_then_release_leaves_base_free(self):
        # trim_dangling's pattern: a search claims a node, the trim
        # releases it again; the replayed delta must be a no-op.
        grid = DetailedGrid(make_design())
        node = (7, 7, 1)
        ov = GridOverlay(grid)
        ov.occupy(node, "n0")
        ov.release(node, "n0")
        ov.apply_to(grid, "n0")
        assert grid.owner(node) is None

    def test_evict_then_release_frees_foreign_node(self):
        # Negotiated-attachment-then-trim: the search force-claims a
        # foreign node and the trim releases it.  Serially the evicted
        # owner already lost the node, so it ends up FREE — the replay
        # must free it even though base still shows the victim.
        grid = DetailedGrid(make_design())
        node = (7, 7, 1)
        grid.occupy(node, "victim")
        ov = GridOverlay(grid)
        assert ov.force_occupy(node, "n0") == "victim"
        ov.release(node, "n0")
        ov.apply_to(grid, "n0")
        assert grid.owner(node) is None

    def test_evict_then_release_frees_foreign_node_via_delta(self):
        # The process backend's wire form must replay identically.
        from repro.engine import OverlayDelta

        grid = DetailedGrid(make_design())
        node = (7, 7, 1)
        grid.occupy(node, "victim")
        ov = GridOverlay(grid)
        ov.force_occupy(node, "n0")
        ov.release(node, "n0")
        delta = OverlayDelta.from_overlay(ov)
        delta.apply_to(grid, "n0")
        assert grid.owner(node) is None

    def test_force_occupy_reports_base_owner(self):
        grid = DetailedGrid(make_design())
        node = (8, 8, 1)
        grid.occupy(node, "n1")
        ov = GridOverlay(grid)
        assert ov.force_occupy(node, "n0") == "n1"
        assert grid.owner(node) == "n1"
        ov.apply_to(grid, "n0")
        assert grid.owner(node) == "n0"

    def test_pin_nodes_stay_protected(self):
        grid = DetailedGrid(make_design())
        pin = (1, 1, 1)
        grid.occupy(pin, "n0")
        grid.mark_pin(pin)
        ov = GridOverlay(grid)
        with pytest.raises(ValueError):
            ov.force_occupy(pin, "n1")

    def test_cost_evaluations_start_at_zero(self):
        grid = DetailedGrid(make_design())
        grid.cost_evaluations = 42
        ov = GridOverlay(grid)
        assert ov.cost_evaluations == 0


class TestGraphSnapshot:
    def test_demand_writes_stay_private(self):
        graph = GlobalGraph(make_design())
        snap = GraphSnapshot(graph)
        snap.h_demand[0, 0] += 5
        snap.v_demand[0, 0] += 3
        snap.vertex_demand[0, 0] += 2
        assert graph.h_demand[0, 0] == 0
        assert graph.v_demand[0, 0] == 0
        assert graph.vertex_demand[0, 0] == 0

    def test_capacity_and_history_shared(self):
        graph = GlobalGraph(make_design())
        snap = GraphSnapshot(graph)
        assert snap.h_capacity is graph.h_capacity
        assert snap.vertex_history is graph.vertex_history
        assert snap.nx == graph.nx and snap.ny == graph.ny


class TestWindowsHit:
    def test_inclusive_membership(self):
        assert windows_hit([(0, 0, 2, 2)], {(2, 2)})
        assert windows_hit([(0, 0, 2, 2)], {(0, 0)})
        assert not windows_hit([(0, 0, 2, 2)], {(3, 2)})

    def test_any_window_any_tile(self):
        windows = [(0, 0, 1, 1), (10, 10, 12, 12)]
        assert windows_hit(windows, {(5, 5), (11, 11)})
        assert not windows_hit(windows, {(5, 5), (9, 9)})

    def test_empty(self):
        assert not windows_hit([], {(0, 0)})
        assert not windows_hit([(0, 0, 5, 5)], set())
