"""Cross-executor differential harness: process pool == serial, bytes.

The determinism contract of ``RouterConfig(executor="process")`` (see
``docs/parallelism.md``): routing state crosses the process boundary
through :class:`~repro.parallel.SharedStateChannel`, workers return
:class:`~repro.engine.OverlayDelta` payloads instead of live overlays,
and the canonical-order fan-in on the submitting process makes the
serialized :class:`~repro.eval.RoutingReport` byte-identical to the
serial run on every gate circuit — with sanitize on, with streaming
on, and under forced speculative conflicts alike.

Every test also asserts the shared-memory ledger is empty afterwards:
no run may leak a segment (:func:`repro.parallel.active_segments`).
"""

import json

import pytest

from repro.analysis import audit_solution
from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.io import report_to_dict
from repro.observe import StreamingTracer, read_stream
from repro.parallel import BatchPlan, active_segments

CIRCUITS = {"S9234": 0.02, "S5378": 0.02, "S13207": 0.02}


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test must tear down all shared-memory segments it mapped."""
    assert active_segments() == frozenset()
    yield
    assert active_segments() == frozenset()


def route_flow(circuit, scale, *, workers=1, executor="thread", **config):
    design = mcnc_design(circuit, scale)
    router = StitchAwareRouter(
        config=RouterConfig(workers=workers, executor=executor, **config)
    )
    return router.route(design)


def report_doc(flow):
    """Serialized report with the sanctioned nondeterminism removed."""
    doc = report_to_dict(flow.report)
    doc.pop("cpu_seconds", None)
    doc.pop("trace", None)
    return doc


def canonical(doc):
    return json.dumps(doc, sort_keys=True).encode()


def routing_counters(trace):
    """Aggregate counters minus the scheduling/IPC bookkeeping."""
    return {
        k: v
        for k, v in trace.aggregate_counters().items()
        if not k.startswith(("parallel_", "perf_", "stream_"))
    }


@pytest.mark.parametrize("circuit", sorted(CIRCUITS))
class TestProcessSerialEquivalence:
    def test_process_report_byte_identical_to_serial(self, circuit):
        scale = CIRCUITS[circuit]
        serial = route_flow(circuit, scale)
        pooled = route_flow(circuit, scale, workers=4, executor="process")
        assert canonical(report_doc(pooled)) == canonical(report_doc(serial))
        assert routing_counters(pooled.trace) == routing_counters(
            serial.trace
        )

    def test_process_matches_thread_executor(self, circuit):
        scale = CIRCUITS[circuit]
        threaded = route_flow(circuit, scale, workers=4, executor="thread")
        pooled = route_flow(circuit, scale, workers=4, executor="process")
        assert canonical(report_doc(pooled)) == canonical(
            report_doc(threaded)
        )
        assert routing_counters(pooled.trace) == routing_counters(
            threaded.trace
        )


class TestProcessPoolActuallyUsed:
    """The contract must not hold vacuously: state really was shipped."""

    def test_batches_ran_and_state_was_published(self):
        flow = route_flow("S9234", 0.02, workers=4, executor="process")
        counters = flow.trace.aggregate_counters()
        assert counters.get("parallel_batches", 0) > 0
        assert counters.get("parallel_tasks", 0) > 0
        assert counters.get("parallel_ipc_publishes", 0) > 0
        assert counters.get("parallel_ipc_publish_bytes", 0) > 0

    def test_trace_meta_records_pool_kind(self):
        flow = route_flow("S9234", 0.02, workers=4, executor="process")
        assert flow.trace.meta["executor"] == "process"


class TestSanitizedProcessRun:
    def test_sanitize_on_process_pool_is_clean_and_identical(self):
        serial = route_flow("S5378", 0.02, sanitize=True)
        pooled = route_flow(
            "S5378", 0.02, workers=4, executor="process", sanitize=True
        )
        assert canonical(report_doc(pooled)) == canonical(report_doc(serial))
        counters = pooled.trace.aggregate_counters()
        assert counters.get("sanitize_violations", 0) == 0


class TestStreamedProcessRun:
    def test_streamed_process_run_replays_byte_identical(self, tmp_path):
        path = tmp_path / "run.ndjson"
        design = mcnc_design("S9234", 0.02)
        config = RouterConfig(workers=4, executor="process", profile="full")
        flow = StitchAwareRouter(config=config).route(
            design, tracer=StreamingTracer(path)
        )
        assert flow.trace is not None
        assert read_stream(path).to_json() == flow.trace.to_json()

    def test_streamed_process_report_matches_plain_serial(self, tmp_path):
        serial = route_flow("S9234", 0.02)
        design = mcnc_design("S9234", 0.02)
        config = RouterConfig(workers=4, executor="process", profile="full")
        pooled = StitchAwareRouter(config=config).route(
            design, tracer=StreamingTracer(tmp_path / "run.ndjson")
        )
        assert canonical(report_doc(pooled)) == canonical(report_doc(serial))
        assert routing_counters(pooled.trace) == routing_counters(
            serial.trace
        )


class TestProcessAudit:
    def test_audit_clean_on_process_solution(self):
        flow = route_flow("S9234", 0.02, workers=4, executor="process")
        report = audit_solution(
            flow.detailed_result, flow.report, flow.global_result
        )
        assert report.ok, [f.message for f in report.findings]


class TestProcessForcedConflicts:
    """Collapse the plan to one batch under the process executor.

    Conflicting nets are re-routed serially on the submitting process
    against the *live* state; the detailed grid's journal must carry
    those repairs to the workers before the next batch, keeping the
    output byte-identical.
    """

    @staticmethod
    def _single_batch_planner(items, rect_of, expand=0, cell=32):
        return BatchPlan(batches=[list(items)], expand=expand)

    def test_conflicts_stay_serial_equivalent(self, monkeypatch):
        import repro.detailed.router as detailed_router
        import repro.globalroute.router as global_router

        serial = route_flow("S5378", 0.02)
        monkeypatch.setattr(
            global_router, "plan_batches", self._single_batch_planner
        )
        monkeypatch.setattr(
            detailed_router, "plan_batches", self._single_batch_planner
        )
        forced = route_flow("S5378", 0.02, workers=4, executor="process")
        assert canonical(report_doc(forced)) == canonical(report_doc(serial))
        counters = forced.trace.aggregate_counters()
        assert counters.get("parallel_conflicts", 0) > 0
