"""Property tests for the conflict-aware net-batch planner.

The planner's invariants (every item in exactly one batch, no
in-batch overlap, batches are contiguous runs so concatenation
reproduces the input exactly) are the scheduling half of the
serial-equivalence argument in ``docs/parallelism.md`` — so they are
checked exhaustively here.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    BatchPlan,
    expand_rect,
    plan_batches,
    rects_overlap,
)


def rect_strategy(span=60, extent=12):
    """Inclusive rects with small coordinates (overlap-rich)."""
    return st.tuples(
        st.integers(min_value=-span, max_value=span),
        st.integers(min_value=-span, max_value=span),
        st.integers(min_value=0, max_value=extent),
        st.integers(min_value=0, max_value=extent),
    ).map(lambda t: (t[0], t[1], t[0] + t[2], t[1] + t[3]))


rect_lists = st.lists(rect_strategy(), max_size=40)
expands = st.integers(min_value=0, max_value=8)


class TestRectHelpers:
    def test_expand_rect(self):
        assert expand_rect((1, 2, 3, 4), 2) == (-1, 0, 5, 6)
        assert expand_rect((1, 2, 3, 4), 0) == (1, 2, 3, 4)

    def test_rects_overlap_touching(self):
        # Inclusive rects: sharing an edge point counts as overlap.
        assert rects_overlap((0, 0, 2, 2), (2, 2, 4, 4))
        assert not rects_overlap((0, 0, 2, 2), (3, 0, 4, 2))

    @given(rect_strategy(), rect_strategy())
    def test_overlap_symmetric(self, a, b):
        assert rects_overlap(a, b) == rects_overlap(b, a)

    @given(rect_strategy(), rect_strategy(), expands)
    def test_expansion_preserves_overlap(self, a, b, margin):
        # Growing both rects can only create overlaps, never remove.
        if rects_overlap(a, b):
            assert rects_overlap(
                expand_rect(a, margin), expand_rect(b, margin)
            )

    @given(rect_strategy(), rect_strategy())
    def test_overlap_matches_point_membership(self, a, b):
        brute = any(
            a[0] <= x <= a[2]
            and a[1] <= y <= a[3]
            for x in range(b[0], b[2] + 1)
            for y in range(b[1], b[3] + 1)
        )
        assert rects_overlap(a, b) == brute


class TestPlannerInvariants:
    @settings(max_examples=200, deadline=None)
    @given(rect_lists, expands)
    def test_every_item_in_exactly_one_batch(self, rects, expand):
        items = list(range(len(rects)))
        plan = plan_batches(items, rect_of=lambda i: rects[i], expand=expand)
        flat = [i for batch in plan for i in batch]
        assert sorted(flat) == items
        assert plan.num_items == len(items)

    @settings(max_examples=200, deadline=None)
    @given(rect_lists, expands)
    def test_no_in_batch_overlaps(self, rects, expand):
        items = list(range(len(rects)))
        plan = plan_batches(items, rect_of=lambda i: rects[i], expand=expand)
        for batch in plan:
            for i, j in itertools.combinations(batch, 2):
                assert not rects_overlap(
                    expand_rect(rects[i], expand),
                    expand_rect(rects[j], expand),
                )

    @settings(max_examples=200, deadline=None)
    @given(rect_lists, expands)
    def test_concatenation_reproduces_the_input(self, rects, expand):
        """Batches are contiguous runs: concatenating them is the input.

        This is strictly stronger than order preservation within each
        batch — it forbids backfilling a later item into an earlier
        batch, which would let a window-escalated search observe state
        out of canonical order across a batch boundary (invisible to
        the merge loop's per-batch footprint check).
        """
        items = list(range(len(rects)))
        plan = plan_batches(items, rect_of=lambda i: rects[i], expand=expand)
        flat = [i for batch in plan for i in batch]
        assert flat == items

    @settings(max_examples=200, deadline=None)
    @given(rect_lists, expands)
    def test_overlapping_pairs_strictly_ordered(self, rects, expand):
        """The later of two overlapping items lands in a later batch."""
        items = list(range(len(rects)))
        plan = plan_batches(items, rect_of=lambda i: rects[i], expand=expand)
        batch_of = {
            item: b for b, batch in enumerate(plan) for item in batch
        }
        for i, j in itertools.combinations(items, 2):
            if rects_overlap(
                expand_rect(rects[i], expand), expand_rect(rects[j], expand)
            ):
                assert batch_of[i] < batch_of[j]

    @settings(max_examples=100, deadline=None)
    @given(rect_lists)
    def test_small_cells_agree_with_large(self, rects):
        """The spatial hash's cell size never changes the plan."""
        items = list(range(len(rects)))
        small = plan_batches(items, rect_of=lambda i: rects[i], cell=1)
        large = plan_batches(items, rect_of=lambda i: rects[i], cell=500)
        assert small.batches == large.batches


class TestBatchPlanStats:
    def test_empty_plan(self):
        plan = plan_batches([], rect_of=lambda i: i)
        assert len(plan) == 0
        assert plan.num_items == 0
        assert plan.max_width == 0
        assert plan.mean_width == 0.0
        assert plan.parallel_items == 0

    def test_disjoint_items_share_one_batch(self):
        rects = [(0, 0, 1, 1), (10, 10, 11, 11), (20, 0, 21, 1)]
        plan = plan_batches([0, 1, 2], rect_of=lambda i: rects[i])
        assert plan.batches == [[0, 1, 2]]
        assert plan.max_width == 3
        assert plan.parallel_items == 3

    def test_identical_rects_fully_serialize(self):
        plan = plan_batches([0, 1, 2], rect_of=lambda i: (0, 0, 4, 4))
        assert plan.batches == [[0], [1], [2]]
        assert plan.max_width == 1
        assert plan.mean_width == 1.0
        assert plan.parallel_items == 0

    def test_sequence_protocol(self):
        plan = BatchPlan(batches=[[0], [1, 2]])
        assert len(plan) == 2
        assert plan[1] == [1, 2]
        assert [b for b in plan] == [[0], [1, 2]]
