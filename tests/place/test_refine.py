"""Tests for stitch-aware placement refinement."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.geometry import Point
from repro.layout import Design, Net, Netlist, Pin, Technology
from repro.place import refine_pin_placement

ONLINE_SPEC = SyntheticSpec(
    name="place-t", nets=40, pins=110, layers=3, stitch_pin_fraction=0.2
)


def design_with_pins(pins_xy, width=46, height=31):
    nets = []
    for i in range(0, len(pins_xy) - 1, 2):
        nets.append(
            Net(
                f"n{i}",
                (
                    Pin(f"n{i}.a", Point(*pins_xy[i]), 1),
                    Pin(f"n{i}.b", Point(*pins_xy[i + 1]), 1),
                ),
            )
        )
    return Design(
        name="toy",
        width=width,
        height=height,
        technology=Technology(3),
        netlist=Netlist(nets),
        config=RouterConfig(),
    )


class TestRefine:
    def test_moves_on_line_pin(self):
        design = design_with_pins([(15, 5), (40, 20)])
        result = refine_pin_placement(design)
        assert result.moved_pins == 1
        assert result.unmovable_pins == 0
        pin = result.design.netlist["n0"].pins[0]
        assert not design.stitches.is_on_line(pin.location.x)
        assert abs(pin.location.x - 15) <= 2

    def test_leaves_clean_pins_alone(self):
        design = design_with_pins([(5, 5), (40, 20)])
        result = refine_pin_placement(design)
        assert result.moved_pins == 0
        assert result.total_displacement == 0
        assert result.design.netlist["n0"].pins[0].location == Point(5, 5)

    def test_respects_occupied_targets(self):
        # Neighbours of the on-line pin at distance 1 are taken; the
        # pin must land at distance 2.
        design = design_with_pins(
            [(15, 5), (40, 20), (14, 5), (16, 5)]
        )
        result = refine_pin_placement(design, max_shift=2)
        pin = result.design.netlist["n0"].pins[0]
        assert abs(pin.location.x - 15) == 2

    def test_unmovable_when_no_room(self):
        design = design_with_pins(
            [(15, 5), (40, 20), (14, 5), (16, 5), (13, 5), (17, 5)]
        )
        result = refine_pin_placement(design, max_shift=2)
        assert result.unmovable_pins == 1
        # The pin stays where it was.
        assert result.design.netlist["n0"].pins[0].location == Point(15, 5)

    def test_avoid_unfriendly_mode(self):
        design = design_with_pins([(16, 5), (40, 20)])  # SUR, not line
        plain = refine_pin_placement(design)
        strict = refine_pin_placement(design, avoid_unfriendly=True)
        assert plain.moved_pins == 0
        assert strict.moved_pins == 1
        x = strict.design.netlist["n0"].pins[0].location.x
        assert not design.stitches.in_unfriendly_region(x)

    def test_original_design_untouched(self):
        design = design_with_pins([(15, 5), (40, 20)])
        refine_pin_placement(design)
        assert design.netlist["n0"].pins[0].location == Point(15, 5)

    def test_removes_via_violations_end_to_end(self):
        design = generate_design(ONLINE_SPEC)
        before = StitchAwareRouter().route(design).report
        result = refine_pin_placement(design)
        after = StitchAwareRouter().route(result.design).report
        assert before.via_violations > 0
        assert after.via_violations < before.via_violations
        if result.unmovable_pins == 0:
            assert after.via_violations == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_refined_pins_never_on_lines_when_all_movable(self, seed):
        design = generate_design(ONLINE_SPEC, seed=seed)
        result = refine_pin_placement(design, max_shift=3)
        if result.unmovable_pins == 0:
            for pin in result.design.netlist.pins:
                assert not design.stitches.is_on_line(pin.location.x)
