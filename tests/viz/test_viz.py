"""Tests for SVG and ASCII rendering."""

import pytest

from repro.geometry import Rect
from repro.viz import layer_color, render_layer_ascii, render_routing_svg
from tests.detailed.test_router import route_design
from tests.globalroute.test_router import design_with_nets, two_pin


@pytest.fixture(scope="module")
def routed():
    nets = [
        two_pin("a", (1, 1), (40, 30)),
        two_pin("b", (10, 5), (50, 35)),
    ]
    design = design_with_nets(nets)
    result, _ = route_design(design)
    return design, result


class TestSvg:
    def test_valid_svg_document(self, routed):
        _, result = routed
        svg = render_routing_svg(result)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<svg") == 1

    def test_contains_stitch_lines_and_wires(self, routed):
        _, result = routed
        svg = render_routing_svg(result)
        assert "stroke-dasharray" in svg  # stitch lines
        assert layer_color(1) in svg  # horizontal wires
        assert "circle" in svg  # pins

    def test_window_cropping_reduces_size(self, routed):
        _, result = routed
        full = render_routing_svg(result)
        local = render_routing_svg(result, window=Rect(0, 0, 14, 14))
        assert len(local) < len(full)
        assert 'width="120"' in local  # 15 cells * 8 px

    def test_layer_color_cycles(self):
        assert layer_color(1) == layer_color(7)
        assert layer_color(1) != layer_color(2)


class TestAscii:
    def test_dimensions(self, routed):
        design, result = routed
        art = render_layer_ascii(result, layer=1, window=Rect(0, 0, 19, 9))
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 20 for line in lines)

    def test_stitch_lines_drawn(self, routed):
        design, result = routed
        art = render_layer_ascii(result, layer=1)
        assert "|" in art

    def test_pins_on_their_layer(self, routed):
        design, result = routed
        art1 = render_layer_ascii(result, layer=1)
        assert "o" in art1

    def test_wires_present(self, routed):
        _, result = routed
        art = render_layer_ascii(result, layer=1)
        assert "-" in art or "x" in art
