"""Unit and property tests for Interval and interval-graph helpers."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Interval,
    max_overlap_density,
    overlapping_pairs,
    point_density,
)


def interval_strategy(lo=-30, hi=30):
    return st.tuples(
        st.integers(min_value=lo, max_value=hi),
        st.integers(min_value=0, max_value=20),
    ).map(lambda t: Interval(t[0], t[0] + t[1]))


class TestInterval:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_length_inclusive(self):
        assert Interval(2, 2).length == 1
        assert Interval(0, 4).length == 5

    def test_contains(self):
        iv = Interval(1, 3)
        assert iv.contains(1) and iv.contains(3)
        assert not iv.contains(0) and not iv.contains(4)

    def test_overlap_at_single_point(self):
        assert Interval(0, 2).overlaps(Interval(2, 5))
        assert not Interval(0, 2).overlaps(Interval(3, 5))

    def test_intersection_and_union(self):
        a, b = Interval(0, 5), Interval(3, 8)
        assert a.intersection(b) == Interval(3, 5)
        assert a.union_span(b) == Interval(0, 8)

    def test_shifted(self):
        assert Interval(1, 4).shifted(-1) == Interval(0, 3)

    @given(interval_strategy(), interval_strategy())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(interval_strategy(), interval_strategy())
    def test_intersection_consistent_with_overlap(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.overlaps(b)
        if inter is not None:
            assert inter.lo >= max(a.lo, b.lo)
            assert inter.hi <= min(a.hi, b.hi)


class TestDensity:
    def test_max_overlap_density_empty(self):
        assert max_overlap_density([]) == 0

    def test_max_overlap_density_nested(self):
        ivs = [Interval(0, 10), Interval(2, 5), Interval(3, 4)]
        assert max_overlap_density(ivs) == 3

    def test_max_overlap_density_chain(self):
        # Touching endpoints count as overlap (closed intervals).
        ivs = [Interval(0, 2), Interval(2, 4), Interval(4, 6)]
        assert max_overlap_density(ivs) == 2

    def test_point_density(self):
        ivs = [Interval(0, 3), Interval(2, 5)]
        assert point_density(ivs, 2) == 2
        assert point_density(ivs, 0) == 1
        assert point_density(ivs, 6) == 0

    @given(st.lists(interval_strategy(), max_size=15))
    def test_density_equals_max_point_density(self, ivs):
        if not ivs:
            assert max_overlap_density(ivs) == 0
            return
        lo = min(iv.lo for iv in ivs)
        hi = max(iv.hi for iv in ivs)
        brute = max(point_density(ivs, p) for p in range(lo, hi + 1))
        assert max_overlap_density(ivs) == brute


class TestOverlappingPairs:
    def test_simple(self):
        ivs = [Interval(0, 2), Interval(1, 3), Interval(5, 6)]
        assert overlapping_pairs(ivs) == [(0, 1)]

    @given(st.lists(interval_strategy(), max_size=12))
    def test_matches_brute_force(self, ivs):
        expected = sorted(
            (i, j)
            for i, j in itertools.combinations(range(len(ivs)), 2)
            if ivs[i].overlaps(ivs[j])
        )
        assert overlapping_pairs(ivs) == expected


class TestMergeLaws:
    """Overlap/merge algebra the batch planner builds on."""

    @given(interval_strategy(), interval_strategy())
    def test_union_span_covers_both(self, a, b):
        u = a.union_span(b)
        for iv in (a, b):
            assert u.lo <= iv.lo and iv.hi <= u.hi

    @given(interval_strategy(), interval_strategy())
    def test_union_span_commutative(self, a, b):
        assert a.union_span(b) == b.union_span(a)

    @given(interval_strategy(), interval_strategy(), interval_strategy())
    def test_union_span_associative(self, a, b, c):
        assert a.union_span(b).union_span(c) == a.union_span(
            b.union_span(c)
        )

    @given(interval_strategy())
    def test_union_and_intersection_idempotent(self, a):
        assert a.union_span(a) == a
        assert a.intersection(a) == a

    @given(interval_strategy(), interval_strategy())
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(interval_strategy(), interval_strategy())
    def test_union_span_minimal(self, a, b):
        # Shrinking the span from either end uncovers an endpoint.
        u = a.union_span(b)
        lo_covered = any(iv.lo == u.lo for iv in (a, b))
        hi_covered = any(iv.hi == u.hi for iv in (a, b))
        assert lo_covered and hi_covered

    @given(interval_strategy(), interval_strategy())
    def test_overlap_iff_union_shorter_than_sum(self, a, b):
        # Closed integer intervals: they share a point exactly when
        # the covering span is shorter than the summed lengths.
        assert a.overlaps(b) == (
            a.union_span(b).length < a.length + b.length
        )

    @given(
        interval_strategy(),
        interval_strategy(),
        st.integers(min_value=-25, max_value=25),
    )
    def test_shift_invariance(self, a, b, delta):
        assert a.overlaps(b) == a.shifted(delta).overlaps(b.shifted(delta))
        assert a.union_span(b).shifted(delta) == a.shifted(delta).union_span(
            b.shifted(delta)
        )
