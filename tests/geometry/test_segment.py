"""Tests for wire segments and path decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    GridPoint,
    Interval,
    Orientation,
    WireSegment,
    merge_colinear,
    path_to_segments,
)


class TestWireSegment:
    def test_orientations(self):
        h = WireSegment(GridPoint(0, 2, 1), GridPoint(5, 2, 1))
        v = WireSegment(GridPoint(3, 0, 2), GridPoint(3, 4, 2))
        z = WireSegment(GridPoint(1, 1, 1), GridPoint(1, 1, 2))
        assert h.orientation is Orientation.HORIZONTAL
        assert v.orientation is Orientation.VERTICAL
        assert z.orientation is Orientation.VIA

    def test_endpoints_normalized(self):
        s = WireSegment(GridPoint(5, 2, 1), GridPoint(0, 2, 1))
        assert s.a == GridPoint(0, 2, 1)
        assert s.b == GridPoint(5, 2, 1)

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError):
            WireSegment(GridPoint(0, 0, 1), GridPoint(1, 1, 1))

    def test_span_and_length(self):
        h = WireSegment(GridPoint(2, 7, 1), GridPoint(6, 7, 1))
        assert h.span == Interval(2, 6)
        assert h.length == 4
        v = WireSegment(GridPoint(3, 1, 2), GridPoint(3, 9, 2))
        assert v.span == Interval(1, 9)

    def test_points_cover_run(self):
        s = WireSegment(GridPoint(0, 0, 1), GridPoint(3, 0, 1))
        assert len(list(s.points())) == 4
        via = WireSegment(GridPoint(1, 1, 1), GridPoint(1, 1, 3))
        assert [p.layer for p in via.points()] == [1, 2, 3]


class TestPathToSegments:
    def test_empty_and_single(self):
        assert path_to_segments([]) == []
        assert path_to_segments([GridPoint(0, 0, 1)]) == []

    def test_l_shape(self):
        path = [
            GridPoint(0, 0, 1),
            GridPoint(1, 0, 1),
            GridPoint(2, 0, 1),
            GridPoint(2, 1, 1),
        ]
        segs = path_to_segments(path)
        assert segs == [
            WireSegment(GridPoint(0, 0, 1), GridPoint(2, 0, 1)),
            WireSegment(GridPoint(2, 0, 1), GridPoint(2, 1, 1)),
        ]

    def test_via_between_runs(self):
        path = [
            GridPoint(0, 0, 1),
            GridPoint(1, 0, 1),
            GridPoint(1, 0, 2),
            GridPoint(1, 1, 2),
        ]
        segs = path_to_segments(path)
        assert [s.orientation for s in segs] == [
            Orientation.HORIZONTAL,
            Orientation.VIA,
            Orientation.VERTICAL,
        ]

    def test_non_adjacent_raises(self):
        with pytest.raises(ValueError):
            path_to_segments([GridPoint(0, 0, 1), GridPoint(2, 0, 1)])

    @given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=30))
    def test_total_length_preserved(self, moves):
        path = [GridPoint(0, 0, 5)]
        for m in moves:
            p = path[-1]
            if m == "x":
                path.append(GridPoint(p.x + 1, p.y, p.layer))
            elif m == "y":
                path.append(GridPoint(p.x, p.y + 1, p.layer))
            else:
                path.append(GridPoint(p.x, p.y, p.layer + 1))
        segs = path_to_segments(path)
        assert sum(s.length for s in segs) == len(moves)
        # Segments chain: consecutive segments share an endpoint.
        for s1, s2 in zip(segs, segs[1:]):
            shared = {s1.a, s1.b} & {s2.a, s2.b}
            assert shared


class TestMergeColinear:
    def test_merges_abutting_runs(self):
        segs = [
            WireSegment(GridPoint(0, 1, 1), GridPoint(3, 1, 1)),
            WireSegment(GridPoint(4, 1, 1), GridPoint(7, 1, 1)),
        ]
        merged = merge_colinear(segs)
        assert merged == [WireSegment(GridPoint(0, 1, 1), GridPoint(7, 1, 1))]

    def test_keeps_disjoint_runs(self):
        segs = [
            WireSegment(GridPoint(0, 1, 1), GridPoint(2, 1, 1)),
            WireSegment(GridPoint(5, 1, 1), GridPoint(7, 1, 1)),
        ]
        assert len(merge_colinear(segs)) == 2

    def test_vias_pass_through(self):
        via = WireSegment(GridPoint(0, 0, 1), GridPoint(0, 0, 2))
        assert merge_colinear([via]) == [via]

    def test_different_tracks_not_merged(self):
        segs = [
            WireSegment(GridPoint(0, 1, 1), GridPoint(3, 1, 1)),
            WireSegment(GridPoint(0, 2, 1), GridPoint(3, 2, 1)),
        ]
        assert len(merge_colinear(segs)) == 2

    def test_overlapping_runs_merge(self):
        segs = [
            WireSegment(GridPoint(0, 0, 2), GridPoint(0, 5, 2)),
            WireSegment(GridPoint(0, 3, 2), GridPoint(0, 9, 2)),
        ]
        merged = merge_colinear(segs)
        assert merged == [WireSegment(GridPoint(0, 0, 2), GridPoint(0, 9, 2))]
