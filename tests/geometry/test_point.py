"""Unit and property tests for Point, GridPoint, and Rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import GridPoint, Point, Rect

coords = st.integers(min_value=-50, max_value=50)


class TestPoint:
    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_ordering_is_lexicographic(self):
        assert Point(1, 5) < Point(2, 0)
        assert Point(1, 2) < Point(1, 3)

    @given(coords, coords, coords, coords)
    def test_manhattan_symmetric(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.manhattan(b) == b.manhattan(a)

    @given(coords, coords, coords, coords, coords, coords)
    def test_manhattan_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.manhattan(c) <= a.manhattan(b) + b.manhattan(c)


class TestGridPoint:
    def test_point_projection(self):
        assert GridPoint(3, 4, 2).point == Point(3, 4)

    def test_manhattan_counts_layer_hops(self):
        assert GridPoint(0, 0, 1).manhattan(GridPoint(0, 0, 3)) == 2
        assert GridPoint(1, 1, 1).manhattan(GridPoint(2, 3, 2)) == 4


class TestRect:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 4, 0)
        with pytest.raises(ValueError):
            Rect(0, 5, 0, 4)

    def test_from_points_normalizes(self):
        r = Rect.from_points(Point(5, 1), Point(2, 7))
        assert (r.lo_x, r.lo_y, r.hi_x, r.hi_y) == (2, 1, 5, 7)

    def test_dimensions_inclusive(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 5
        assert r.height == 3
        assert r.area == 15

    def test_contains_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert not r.contains(Point(3, 2))

    def test_intersection_disjoint(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(3, 3, 4, 4)) is None

    def test_intersection_touching_cells(self):
        # Closed rectangles sharing a cell edge overlap in that cell row.
        r = Rect(0, 0, 2, 2).intersection(Rect(2, 2, 4, 4))
        assert r == Rect(2, 2, 2, 2)

    def test_points_enumerates_all_cells(self):
        r = Rect(1, 1, 2, 3)
        assert len(list(r.points())) == r.area

    def test_expanded_and_clipped(self):
        r = Rect(2, 2, 3, 3).expanded(2)
        assert r == Rect(0, 0, 5, 5)
        assert r.clipped(Rect(1, 1, 4, 4)) == Rect(1, 1, 4, 4)

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_intersection_commutative(self, a, b, c, d, e, f, g, h):
        r1 = Rect.from_points(Point(a, b), Point(c, d))
        r2 = Rect.from_points(Point(e, f), Point(g, h))
        assert r1.intersection(r2) == r2.intersection(r1)

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_intersection_inside_both(self, a, b, c, d, e, f, g, h):
        r1 = Rect.from_points(Point(a, b), Point(c, d))
        r2 = Rect.from_points(Point(e, f), Point(g, h))
        inter = r1.intersection(r2)
        if inter is not None:
            assert r1.contains_rect(inter)
            assert r2.contains_rect(inter)

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_union_bbox_contains_both(self, a, b, c, d, e, f, g, h):
        r1 = Rect.from_points(Point(a, b), Point(c, d))
        r2 = Rect.from_points(Point(e, f), Point(g, h))
        u = r1.union_bbox(r2)
        assert u.contains_rect(r1)
        assert u.contains_rect(r2)
