"""Tests for congestion statistics and heat maps."""

import pytest

from repro.eval import (
    detailed_layer_utilization,
    global_congestion_stats,
    vertex_heatmap,
)
from repro.globalroute import GlobalRouter
from tests.detailed.test_router import route_design
from tests.globalroute.test_router import design_with_nets, two_pin


@pytest.fixture(scope="module")
def routed():
    nets = [
        two_pin("a", (1, 1), (55, 40)),
        two_pin("b", (10, 5), (50, 35)),
        two_pin("c", (5, 40), (55, 2)),
    ]
    design = design_with_nets(nets)
    gr = GlobalRouter().route(design)
    det, _ = route_design(design)
    return design, gr, det


class TestGlobalCongestion:
    def test_three_resource_kinds(self, routed):
        _, gr, _ = routed
        stats = global_congestion_stats(gr)
        assert [s.resource for s in stats] == [
            "horizontal edges",
            "vertical edges",
            "line ends (vertices)",
        ]

    def test_utilization_bounds(self, routed):
        _, gr, _ = routed
        for s in global_congestion_stats(gr):
            assert 0.0 <= s.mean_utilization <= s.max_utilization
            assert 0 <= s.overflowed <= s.total
            assert 0.0 <= s.overflow_fraction <= 1.0

    def test_nonzero_demand_measured(self, routed):
        _, gr, _ = routed
        stats = global_congestion_stats(gr)
        assert any(s.mean_utilization > 0 for s in stats)


class TestVertexHeatmap:
    def test_dimensions(self, routed):
        _, gr, _ = routed
        art = vertex_heatmap(gr)
        lines = art.splitlines()
        assert len(lines) == gr.graph.ny
        assert all(len(line) == gr.graph.nx for line in lines)

    def test_empty_graph_blank(self, routed):
        design, _, _ = routed
        from repro.globalroute import GlobalGraph
        from repro.globalroute.router import GlobalRoutingResult

        empty = GlobalRoutingResult(
            design=design,
            graph=GlobalGraph(design),
            routes={},
            failed=[],
            cpu_seconds=0.0,
        )
        art = vertex_heatmap(empty)
        assert set(art) <= {" ", "\n"}


class TestDetailedUtilization:
    def test_per_layer_fractions(self, routed):
        design, _, det = routed
        util = detailed_layer_utilization(det)
        assert set(util) == set(design.technology.layers)
        assert all(0.0 <= v <= 1.0 for v in util.values())
        assert util[1] > 0  # pins and horizontal wires live on layer 1
