"""``Violation`` serialization and histogram/column consistency."""

import pytest

from repro.eval import (
    NetReport,
    RoutingReport,
    VIOLATION_KINDS,
    Violation,
)


class TestViolationSerde:
    @pytest.mark.parametrize("kind", VIOLATION_KINDS)
    def test_round_trip(self, kind):
        violation = Violation(
            net="n7", kind=kind, line=2, x=30, y=11, layer=1
        )
        data = violation.to_dict()
        assert Violation.from_dict("n7", data) == violation

    def test_to_dict_omits_net(self):
        data = Violation("n7", "via", 0, 15, 5, 0).to_dict()
        assert "net" not in data
        assert data == {"kind": "via", "line": 0, "x": 15, "y": 5, "layer": 0}

    def test_from_dict_attaches_given_net(self):
        data = {"kind": "vertical", "line": 1, "x": 30, "y": 4, "layer": 2}
        assert Violation.from_dict("other", data).net == "other"

    def test_round_trip_survives_json(self):
        import json

        violation = Violation("n1", "short-polygon", 3, 45, 9, 1)
        data = json.loads(json.dumps(violation.to_dict()))
        assert Violation.from_dict("n1", data) == violation


def _net(name, routed, violations, wl=10, vias=2):
    """Hand-built NetReport whose count columns match its violations."""
    by_kind = {kind: 0 for kind in VIOLATION_KINDS}
    for violation in violations:
        by_kind[violation.kind] += 1
    return NetReport(
        name=name,
        routed=routed,
        via_violations=by_kind["via"],
        vertical_violations=by_kind["vertical"],
        short_polygons=by_kind["short-polygon"],
        wirelength=wl,
        vias=vias,
        violations=violations,
    )


@pytest.fixture()
def report():
    """Two routed nets + one unrouted net with an SP attribution.

    The unrouted net's short polygon must be excluded from both the
    #SP column and the histogram (column semantics of the paper).
    """
    a = _net(
        "a",
        True,
        [
            Violation("a", "via", 0, 15, 5, 0),
            Violation("a", "via", 1, 30, 8, 1),
            Violation("a", "short-polygon", 0, 15, 5, 1),
        ],
    )
    b = _net(
        "b",
        True,
        [
            Violation("b", "vertical", 1, 30, 2, 2),
            Violation("b", "short-polygon", 1, 30, 6, 1),
        ],
    )
    c = _net("c", False, [Violation("c", "short-polygon", 0, 15, 1, 1)])
    nets = {n.name: n for n in (a, b, c)}
    return RoutingReport(
        design_name="hand",
        total_nets=3,
        routed_nets=2,
        via_violations=sum(n.via_violations for n in nets.values()),
        vertical_violations=sum(
            n.vertical_violations for n in nets.values()
        ),
        short_polygons=sum(
            n.short_polygons for n in nets.values() if n.routed
        ),
        wirelength=30,
        vias=6,
        cpu_seconds=0.0,
        nets=nets,
    )


class TestHistogramTotals:
    def test_totals_match_aggregate_columns(self, report):
        histogram = report.stitch_line_histogram()

        def total(kind):
            return sum(row[kind] for row in histogram.values())

        assert total("via") == report.via_violations == 2
        assert total("vertical") == report.vertical_violations == 1
        assert total("short-polygon") == report.short_polygons == 2

    def test_unrouted_sp_excluded_everywhere(self, report):
        histogram = report.stitch_line_histogram()
        # Line 0 carries net a's SP only; net c's is filtered out.
        assert histogram[0]["short-polygon"] == 1
        kinds = [v.kind for v in report.violations if v.net == "c"]
        assert kinds == []

    def test_rows_cover_every_kind_with_zeros(self, report):
        for row in report.stitch_line_histogram().values():
            assert set(row) == set(VIOLATION_KINDS)

    def test_lines_sorted_and_only_violating_lines_present(self, report):
        assert list(report.stitch_line_histogram()) == [0, 1]

    def test_violations_property_matches_per_kind_fields(self, report):
        by_kind = {kind: 0 for kind in VIOLATION_KINDS}
        for violation in report.violations:
            by_kind[violation.kind] += 1
        assert by_kind["via"] == report.via_violations
        assert by_kind["vertical"] == report.vertical_violations
        assert by_kind["short-polygon"] == report.short_polygons
