"""Tests for geometry reconstruction, trimming, and violation counting."""

import pytest

from repro.detailed.wiring import (
    canonical_edge,
    edges_to_segments,
    path_edges,
    short_polygon_sites,
    trim_dangling,
    via_landing_points,
)
from repro.eval import via_count, wirelength
from repro.geometry import GridPoint, WireSegment
from repro.layout import StitchingLines

LINES = StitchingLines((15,), epsilon=1, escape_width=4)


def h_path(y, x_lo, x_hi, layer=1):
    return [(x, y, layer) for x in range(x_lo, x_hi + 1)]


class TestEdges:
    def test_canonical_edge_orders(self):
        assert canonical_edge((1, 0, 1), (0, 0, 1)) == ((0, 0, 1), (1, 0, 1))

    def test_canonical_edge_rejects_non_adjacent(self):
        with pytest.raises(ValueError):
            canonical_edge((0, 0, 1), (2, 0, 1))

    def test_path_edges(self):
        edges = path_edges(h_path(0, 0, 3))
        assert len(edges) == 3

    def test_wirelength_and_vias(self):
        edges = path_edges([(0, 0, 1), (1, 0, 1), (1, 0, 2), (1, 1, 2)])
        assert wirelength(edges) == 2
        assert via_count(edges) == 1


class TestTrimDangling:
    def test_keeps_anchored_path(self):
        path = h_path(0, 0, 5)
        edges = path_edges(path)
        trimmed = trim_dangling(edges, {(0, 0, 1), (5, 0, 1)})
        assert trimmed == edges

    def test_peels_unanchored_stub(self):
        # Anchored run 0..3, dangling stub 3..6.
        edges = path_edges(h_path(0, 0, 6))
        trimmed = trim_dangling(edges, {(0, 0, 1), (3, 0, 1)})
        assert trimmed == path_edges(h_path(0, 0, 3))

    def test_junction_stops_peeling(self):
        # A T shape: trunk 0..6 with a via at x=3; anchors at ends.
        edges = path_edges(h_path(0, 0, 6))
        edges |= path_edges([(3, 0, 1), (3, 0, 2)])
        trimmed = trim_dangling(edges, {(0, 0, 1), (3, 0, 2)})
        # The 3..6 half dangles; via and left half stay.
        assert path_edges([(3, 0, 1), (3, 0, 2)]) <= trimmed
        assert ((5, 0, 1), (6, 0, 1)) not in trimmed

    def test_everything_unanchored_vanishes(self):
        edges = path_edges(h_path(0, 0, 4))
        assert trim_dangling(edges, set()) == set()


class TestEdgesToSegments:
    def test_straight_runs_merge(self):
        edges = path_edges(h_path(2, 0, 5))
        segments = edges_to_segments(edges)
        assert segments == [
            WireSegment(GridPoint(0, 2, 1), GridPoint(5, 2, 1))
        ]

    def test_l_shape_two_segments(self):
        path = [(0, 0, 1), (1, 0, 1), (1, 0, 2), (1, 1, 2), (1, 2, 2)]
        segments = edges_to_segments(path_edges(path))
        orientations = sorted(s.orientation.value for s in segments)
        assert orientations == ["horizontal", "vertical", "via"]

    def test_disjoint_runs_stay_apart(self):
        edges = path_edges(h_path(0, 0, 2)) | path_edges(h_path(0, 5, 8))
        segments = edges_to_segments(edges)
        assert len(segments) == 2


class TestShortPolygonSites:
    def test_detects_pin_stub_crossing(self):
        # Horizontal wire 14..20 crosses the line at 15; end x=14 is in
        # the SUR and is a pin (landing contact) -> short polygon.
        edges = path_edges(h_path(3, 14, 20))
        pins = {(14, 3, 1)}
        sites = short_polygon_sites(edges, pins, LINES)
        assert len(sites) == 1
        crossing, end = sites[0]
        assert crossing == (15, 3, 1)
        assert end == (14, 3, 1)

    def test_no_site_without_landing_via(self):
        edges = path_edges(h_path(3, 14, 20))
        assert short_polygon_sites(edges, set(), LINES) == []

    def test_no_site_when_end_far_from_line(self):
        edges = path_edges(h_path(3, 10, 20))
        pins = {(10, 3, 1)}
        assert short_polygon_sites(edges, pins, LINES) == []

    def test_no_site_when_wire_not_cut(self):
        # Wire ends exactly on the line: not cut into two polygons.
        edges = path_edges(h_path(3, 14, 15))
        pins = {(14, 3, 1)}
        assert short_polygon_sites(edges, pins, LINES) == []

    def test_via_landing_counts(self):
        # Wire 14..20 with a via at its end x=14.
        edges = path_edges(h_path(3, 14, 20))
        edges |= path_edges([(14, 3, 1), (14, 3, 2)])
        sites = short_polygon_sites(edges, set(), LINES)
        assert len(sites) == 1

    def test_both_ends_both_lines(self):
        lines = StitchingLines((15, 30), epsilon=1, escape_width=4)
        edges = path_edges(h_path(3, 14, 31))
        edges |= path_edges([(14, 3, 1), (14, 3, 2)])
        edges |= path_edges([(31, 3, 1), (31, 3, 2)])
        sites = short_polygon_sites(edges, set(), lines)
        assert len(sites) == 2

    def test_via_landing_points_include_pins(self):
        edges = path_edges([(0, 0, 1), (0, 0, 2)])
        landings = via_landing_points(edges, {(9, 9, 1)})
        assert (0, 0, 1) in landings and (0, 0, 2) in landings
        assert (9, 9, 1) in landings
