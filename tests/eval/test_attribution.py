"""Violation attribution: per-stitch-line histograms match the columns."""

import json

import pytest

from repro.benchmarks_gen import mcnc_design
from repro.api import BaselineRouter, StitchAwareRouter
from repro.eval import VIOLATION_KINDS, NetReport, RoutingReport, Violation
from repro.io import report_from_dict, report_to_dict
from repro.layout import StitchingLines


@pytest.fixture(scope="module")
def reports():
    design = mcnc_design("S9234", 0.02)
    return {
        "baseline": BaselineRouter().route(design).report,
        "stitch-aware": StitchAwareRouter().route(design).report,
    }


class TestLineIndex:
    def test_index_of_lines_and_non_lines(self):
        lines = StitchingLines((10, 20, 30))
        assert lines.line_index(10) == 0
        assert lines.line_index(30) == 2
        assert lines.line_index(15) is None
        assert lines.line_index(31) is None

    def test_matches_is_on_line(self):
        lines = StitchingLines((7, 19))
        for x in range(0, 25):
            assert (lines.line_index(x) is not None) == lines.is_on_line(x)


class TestAttribution:
    @pytest.mark.parametrize("label", ["baseline", "stitch-aware"])
    def test_histogram_totals_equal_report_columns(self, reports, label):
        report = reports[label]
        totals = {kind: 0 for kind in VIOLATION_KINDS}
        for kinds in report.stitch_line_histogram().values():
            for kind, count in kinds.items():
                totals[kind] += count
        assert totals["via"] == report.via_violations
        assert totals["vertical"] == report.vertical_violations
        assert totals["short-polygon"] == report.short_polygons

    def test_violations_carry_full_attribution(self, reports):
        report = reports["baseline"]
        assert report.violations, "expected stitch violations on S9234"
        design = mcnc_design("S9234", 0.02)
        for violation in report.violations:
            assert violation.kind in VIOLATION_KINDS
            assert violation.net in report.nets
            assert design.stitches.xs[violation.line] == violation.x
            assert violation.layer >= 0

    def test_unrouted_short_polygons_excluded_like_the_sp_column(self):
        nets = {
            "good": NetReport(
                "good", True, 0, 0, 1, 5, 1,
                violations=[Violation("good", "short-polygon", 0, 10, 3, 1)],
            ),
            "bad": NetReport(
                "bad", False, 1, 0, 1, 5, 1,
                violations=[
                    Violation("bad", "short-polygon", 0, 10, 4, 1),
                    Violation("bad", "via", 1, 20, 4, 0),
                ],
            ),
        }
        report = RoutingReport(
            design_name="toy", total_nets=2, routed_nets=1,
            via_violations=1, vertical_violations=0, short_polygons=1,
            wirelength=10, vias=2, cpu_seconds=0.0, nets=nets,
        )
        kinds = [v.kind for v in report.violations]
        assert kinds.count("short-polygon") == report.short_polygons == 1
        assert kinds.count("via") == report.via_violations == 1
        hist = report.stitch_line_histogram()
        assert hist[0]["short-polygon"] == 1
        assert hist[1]["via"] == 1

    def test_histogram_sorted_and_zero_filled(self):
        nets = {
            "n": NetReport(
                "n", True, 1, 0, 0, 1, 1,
                violations=[Violation("n", "via", 2, 30, 1, 0)],
            ),
        }
        report = RoutingReport(
            design_name="toy", total_nets=1, routed_nets=1,
            via_violations=1, vertical_violations=0, short_polygons=0,
            wirelength=1, vias=1, cpu_seconds=0.0, nets=nets,
        )
        hist = report.stitch_line_histogram()
        assert list(hist) == [2]
        assert hist[2] == {"via": 1, "vertical": 0, "short-polygon": 0}


class TestSerialization:
    def test_report_roundtrip_preserves_attribution(self, reports):
        report = reports["baseline"]
        doc = json.loads(json.dumps(report_to_dict(report)))
        reloaded = report_from_dict(doc)
        assert reloaded.stitch_line_histogram() == (
            report.stitch_line_histogram()
        )
        assert sorted(
            (v.net, v.kind, v.line, v.x, v.y, v.layer)
            for v in reloaded.violations
        ) == sorted(
            (v.net, v.kind, v.line, v.x, v.y, v.layer)
            for v in report.violations
        )

    def test_saved_document_exposes_histogram(self, reports):
        doc = report_to_dict(reports["baseline"])
        assert "stitch_histogram" in doc
        total_vv = sum(
            kinds["via"] for kinds in doc["stitch_histogram"].values()
        )
        assert total_vv == doc["via_violations"]

    def test_pre_attribution_documents_still_load(self, reports):
        doc = report_to_dict(reports["baseline"])
        doc.pop("stitch_histogram")
        for entry in doc["nets"].values():
            entry.pop("violations")
        reloaded = report_from_dict(doc)
        assert reloaded.via_violations == reports["baseline"].via_violations
        assert reloaded.violations == []
        assert reloaded.stitch_line_histogram() == {}
