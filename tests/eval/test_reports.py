"""Tests for report aggregation semantics."""

import pytest

from repro.eval import NetReport, RoutingReport


def make_report(**overrides):
    nets = {
        "a": NetReport("a", True, 1, 0, 2, 10, 3),
        "b": NetReport("b", False, 0, 0, 5, 4, 1),
    }
    defaults = dict(
        design_name="t",
        total_nets=2,
        routed_nets=1,
        via_violations=1,
        vertical_violations=0,
        short_polygons=2,
        wirelength=14,
        vias=4,
        cpu_seconds=0.5,
        nets=nets,
    )
    defaults.update(overrides)
    return RoutingReport(**defaults)


class TestRoutingReport:
    def test_routability(self):
        assert make_report().routability == 0.5

    def test_empty_report_routability(self):
        report = make_report(total_nets=0, routed_nets=0, nets={})
        assert report.routability == 1.0

    def test_row_shape(self):
        row = make_report().row()
        assert row["circuit"] == "t"
        assert row["rout_pct"] == pytest.approx(50.0)
        assert row["vv"] == 1
        assert row["sp"] == 2
        assert row["wl"] == 14

    def test_per_net_reports_kept(self):
        report = make_report()
        assert report.nets["a"].routed
        assert not report.nets["b"].routed
        assert report.nets["b"].short_polygons == 5
