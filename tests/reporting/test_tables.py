"""Tests for the table formatter."""

import pytest

from repro.reporting import comparison_row, format_cell, format_table


class TestFormatCell:
    def test_none_is_na(self):
        assert format_cell(None) == "NA"

    def test_float_rounding(self):
        assert format_cell(3.14159, decimals=2) == "3.14"

    def test_int_plain(self):
        assert format_cell(42) == "42"


class TestFormatTable:
    def test_alignment(self):
        rows = [
            {"circuit": "S5378", "sp": 351},
            {"circuit": "S38584", "sp": 3221},
        ]
        table = format_table(rows, title="Table III")
        lines = table.splitlines()
        assert lines[0] == "Table III"
        assert "circuit" in lines[1] and "sp" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all body lines equal width

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        table = format_table(rows, columns=["c", "a"])
        header = table.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty(self):
        assert format_table([], title="t") == "t"


class TestComparisonRow:
    def test_ratio_of_sums(self):
        ours = [{"name": "x", "sp": 2}, {"name": "y", "sp": 4}]
        base = [{"name": "x", "sp": 100}, {"name": "y", "sp": 100}]
        row = comparison_row(ours, base, ["name", "sp"], "name")
        assert row["name"] == "Comp."
        assert row["sp"] == pytest.approx(0.03)

    def test_zero_reference_is_none(self):
        ours = [{"name": "x", "vv": 5}]
        base = [{"name": "x", "vv": 0}]
        row = comparison_row(ours, base, ["name", "vv"], "name")
        assert row["vv"] is None

    def test_missing_values_skipped(self):
        ours = [{"name": "x", "cpu": None}, {"name": "y", "cpu": 2.0}]
        base = [{"name": "x", "cpu": 1.0}, {"name": "y", "cpu": 1.0}]
        row = comparison_row(ours, base, ["name", "cpu"], "name")
        assert row["cpu"] == pytest.approx(1.0)
