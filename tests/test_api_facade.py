"""The ``repro.api`` facade contract and its deprecation shims."""

import importlib
import warnings

import pytest

import repro.api as api
from repro.benchmarks_gen import mcnc_design


class TestFacadeExports:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_lazy_analysis_reexports(self):
        from repro.analysis import audit_solution, lint_paths

        assert api.audit_solution is audit_solution
        assert api.lint_paths is lint_paths

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            api.no_such_name

    def test_root_package_serves_the_same_objects(self):
        import repro

        assert repro.StitchAwareRouter is api.StitchAwareRouter
        assert repro.RouterConfig is api.RouterConfig
        assert repro.FlowResult is api.FlowResult


class TestRouteConvenience:
    def test_routes_with_default_config(self):
        design = mcnc_design("S9234", scale=0.02)
        result = api.route(design)
        assert isinstance(result, api.FlowResult)
        assert isinstance(result.report, api.RoutingReport)

    def test_honours_engine_selection(self):
        design = mcnc_design("S9234", scale=0.02)
        result = api.route(design, api.RouterConfig(engine="object"))
        assert result.trace is not None
        assert result.trace.meta["engine"] == "object"


class TestCoreShim:
    def test_old_import_path_warns_and_still_works(self):
        core = importlib.import_module("repro.core")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            router_cls = core.StitchAwareRouter
        assert router_cls is api.StitchAwareRouter
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api" in str(w.message)
            for w in caught
        )

    def test_shim_rejects_unknown_names(self):
        core = importlib.import_module("repro.core")
        with pytest.raises(AttributeError):
            core.DetailedRouter
