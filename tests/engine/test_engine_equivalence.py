"""Differential harness: the array engine must equal the object engine.

The byte-identity contract of ``RouterConfig(engine=...)`` (see
``docs/performance.md``): for every circuit, worker count and
sanitizer setting, the array core produces a serialized
:class:`~repro.eval.RoutingReport` byte-identical to the object
engine's (after stripping wall-time fields) and every deterministic
trace counter matches exactly.  The array solutions must additionally
survive the independent geometry audit — identical counters from two
engines sharing a bug would otherwise go unnoticed.
"""

import json

import pytest

from repro.analysis import audit_solution
from repro.api import RouterConfig, StitchAwareRouter
from repro.benchmarks_gen import mcnc_design
from repro.io import report_to_dict

CIRCUITS = {"S9234": 0.02, "S5378": 0.02, "S13207": 0.02}


def route_flow(circuit, scale, **config_kwargs):
    design = mcnc_design(circuit, scale)
    router = StitchAwareRouter(config=RouterConfig(**config_kwargs))
    return router.route(design)


def canonical_report(flow):
    doc = report_to_dict(flow.report)
    # Wall times are the only sanctioned cross-engine difference.
    doc.pop("cpu_seconds", None)
    doc.pop("trace", None)
    return json.dumps(doc, sort_keys=True).encode()


def assert_counters_match(object_trace, array_trace):
    assert (
        object_trace.aggregate_counters() == array_trace.aggregate_counters()
    )


@pytest.mark.parametrize("circuit", sorted(CIRCUITS))
class TestEngineEquivalence:
    def test_serial_reports_byte_identical(self, circuit):
        scale = CIRCUITS[circuit]
        obj = route_flow(circuit, scale, engine="object")
        arr = route_flow(circuit, scale, engine="array")
        assert canonical_report(obj) == canonical_report(arr)
        assert_counters_match(obj.trace, arr.trace)
        assert obj.trace.meta["engine"] == "object"
        assert arr.trace.meta["engine"] == "array"

    def test_parallel_array_equals_serial_object(self, circuit):
        """workers=4 on the array core still equals the serial object run."""
        scale = CIRCUITS[circuit]
        obj = route_flow(circuit, scale, engine="object")
        arr = route_flow(circuit, scale, engine="array", workers=4)
        assert canonical_report(obj) == canonical_report(arr)
        routing = {
            k: v
            for k, v in arr.trace.aggregate_counters().items()
            if not k.startswith("parallel_")
        }
        assert routing == obj.trace.aggregate_counters()

    def test_array_solution_survives_independent_audit(self, circuit):
        scale = CIRCUITS[circuit]
        arr = route_flow(circuit, scale, engine="array")
        report = audit_solution(
            arr.detailed_result, arr.report, arr.global_result
        )
        assert report.ok, [f.message for f in report.findings]


def test_sanitized_parallel_run_matches_across_engines():
    """sanitize=True falls back to object search paths yet stays identical.

    The sanitized overlays deliberately lack the indexed fast-path
    hooks, so this exercises the mixed regime: array base state, object
    search under the sanitizer — reports must still match byte for
    byte.
    """
    obj = route_flow("S5378", 0.02, engine="object")
    arr = route_flow(
        "S5378", 0.02, engine="array", workers=4, sanitize=True
    )
    assert canonical_report(obj) == canonical_report(arr)


def test_auto_engine_resolves_to_array_when_numpy_present():
    pytest.importorskip("numpy")
    flow = route_flow("S9234", 0.02, engine="auto")
    assert flow.trace.meta["engine"] == "array"


class TestProfiledEquivalence:
    """The contract survives profiling: perf_* counters are additive.

    ``RouterConfig(profile="counters")`` instruments both engines; the
    differential promise extends to it in two parts — the routing
    counters still match exactly (strip ``perf_*``, mirroring the
    ``parallel_*`` stripping above), and the ``perf_*`` counters the
    engines share (heap traffic is step-identical by construction)
    must agree with each other too.
    """

    def test_profiled_reports_byte_identical(self):
        obj = route_flow("S9234", 0.02, engine="object", profile="counters")
        arr = route_flow("S9234", 0.02, engine="array", profile="counters")
        assert canonical_report(obj) == canonical_report(arr)
        assert obj.trace.meta["profile"] == "counters"
        for name in (
            "perf_maze_heap_pushes",
            "perf_maze_heap_pops",
            "perf_heap_pushes",
            "perf_heap_pops",
        ):
            assert (
                obj.trace.aggregate_counters()[name]
                == arr.trace.aggregate_counters()[name]
            ), name

    def test_profiled_routing_counters_match_unprofiled(self):
        plain = route_flow("S5378", 0.02, engine="array")
        profiled = route_flow(
            "S5378", 0.02, engine="array", profile="counters"
        )
        routing = {
            k: v
            for k, v in profiled.trace.aggregate_counters().items()
            if not k.startswith("perf_")
        }
        assert routing == plain.trace.aggregate_counters()

    def test_full_profile_keeps_byte_identity(self):
        obj = route_flow("S5378", 0.02, engine="object", profile="full")
        arr = route_flow(
            "S5378", 0.02, engine="array", workers=4, profile="full"
        )
        assert canonical_report(obj) == canonical_report(arr)
