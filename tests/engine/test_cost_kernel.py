"""The vectorized congestion kernel against the scalar reference.

:func:`repro.globalroute.cost.congestion_cost_array` powers bulk
analysis; the array engine's cost caches deliberately call the scalar
kernel instead (``numpy.exp2`` vs CPython ``2.0 ** x`` may differ in
the last ulp).  These properties pin down both facts: the piecewise
branches agree exactly, and the smooth branch agrees to float64
round-off.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.globalroute.cost import (
    _ZERO_CAPACITY_PENALTY,
    congestion_cost,
    congestion_cost_array,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
demands = st.integers(min_value=-50, max_value=200)
capacities = st.integers(min_value=-5, max_value=100)


@given(st.lists(st.tuples(demands, capacities), min_size=1, max_size=32))
def test_matches_scalar_kernel_elementwise(pairs):
    d = np.array([p[0] for p in pairs], dtype=np.float64)
    c = np.array([p[1] for p in pairs], dtype=np.float64)
    out = congestion_cost_array(d, c)
    for k, (demand, capacity) in enumerate(pairs):
        expected = congestion_cost(demand, capacity)
        assert out[k] == pytest.approx(expected, rel=1e-12, abs=0.0) or (
            out[k] == expected
        )


@given(demands.filter(lambda d: d <= 0), capacities)
def test_nonpositive_demand_is_exactly_free(demand, capacity):
    assert congestion_cost_array(demand, capacity).item() == 0.0


@given(demands.filter(lambda d: d > 0), capacities.filter(lambda c: c <= 0))
def test_zero_capacity_branch_is_exactly_linear(demand, capacity):
    out = congestion_cost_array(demand, capacity).item()
    assert out == _ZERO_CAPACITY_PENALTY * demand


@given(finite, finite)
def test_scalar_inputs_broadcast_to_scalars(demand, capacity):
    out = congestion_cost_array(demand, capacity)
    assert out.shape == ()
    # Costs are non-negative; extreme demand/capacity ratios may
    # saturate to +inf (2^1024 overflows float64), never to NaN.
    assert out.item() >= 0.0 and not math.isnan(out.item())


def test_broadcasts_demand_row_against_capacity_column():
    d = np.arange(4, dtype=np.float64)
    c = np.array([[1.0], [2.0]])
    out = congestion_cost_array(d, c)
    assert out.shape == (2, 4)
    assert out[0, 0] == 0.0
    assert out[1, 2] == pytest.approx(congestion_cost(2.0, 2.0), rel=1e-12)
