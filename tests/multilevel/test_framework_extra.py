"""Additional multilevel tests: hierarchy properties on random nets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multilevel import MultilevelScheme
from tests.multilevel.test_scheme import make_design, two_pin


class TestHierarchyProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=119),
        st.integers(min_value=0, max_value=119),
        st.integers(min_value=0, max_value=119),
        st.integers(min_value=0, max_value=119),
    )
    def test_net_level_is_minimal(self, x1, y1, x2, y2):
        """The reported level is the first where both pins coincide."""
        net = two_pin("n", (x1, y1), (x2, y2))
        scheme = MultilevelScheme(make_design([net]), nx=8, ny=8)
        level = scheme.net_level(net)
        lo = scheme.tile0_of(x1, y1)
        hi = scheme.tile0_of(x2, y2)
        assert scheme.tile_at_level(lo, level) == scheme.tile_at_level(
            hi, level
        )
        if level > 0:
            assert scheme.tile_at_level(lo, level - 1) != scheme.tile_at_level(
                hi, level - 1
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=119), st.integers(0, 119))
    def test_coarsening_is_monotone(self, x, y):
        """Once two tiles merge they stay merged at coarser levels."""
        scheme = MultilevelScheme(make_design(), nx=8, ny=8)
        t = scheme.tile0_of(x, y)
        previous = None
        for level in range(scheme.num_levels):
            coarse = scheme.tile_at_level(t, level)
            if previous is not None:
                assert coarse == (previous[0] >> 1, previous[1] >> 1)
            previous = coarse

    def test_top_level_single_tile(self):
        scheme = MultilevelScheme(make_design(), nx=8, ny=8)
        top = scheme.num_levels - 1
        assert scheme.grid_at_level(top) == (1, 1)

    def test_bottom_up_order_is_stable(self):
        nets = [
            two_pin("z", (1, 1), (5, 5)),
            two_pin("a", (1, 1), (4, 4)),
            two_pin("m", (0, 0), (110, 110)),
        ]
        scheme = MultilevelScheme(make_design(nets), nx=8, ny=8)
        order1 = [n.name for n in scheme.bottom_up_order()]
        order2 = [n.name for n in scheme.bottom_up_order()]
        assert order1 == order2
        assert order1[-1] == "m"  # the global net routes last
