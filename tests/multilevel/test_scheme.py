"""Tests for the coarsening scheme and two-pass driver."""

import pytest

from repro.config import RouterConfig
from repro.geometry import Point
from repro.layout import Design, Net, Netlist, Pin, Technology
from repro.multilevel import MultilevelScheme, TwoPassFramework


def two_pin(name, a, b):
    return Net(name, (Pin(f"{name}.0", Point(*a), 1), Pin(f"{name}.1", Point(*b), 1)))


def make_design(nets=None, width=120, height=120):
    nets = nets or [two_pin("n0", (1, 1), (100, 100))]
    return Design(
        name="toy",
        width=width,
        height=height,
        technology=Technology(3),
        netlist=Netlist(nets),
        config=RouterConfig(stitch_spacing=15, tile_size=15),
    )


class TestMultilevelScheme:
    def test_num_levels(self):
        scheme = MultilevelScheme(make_design(), nx=8, ny=8)
        assert scheme.num_levels == 4  # 8 -> 4 -> 2 -> 1

    def test_num_levels_non_power_of_two(self):
        scheme = MultilevelScheme(make_design(), nx=5, ny=3)
        # ceil covering: 5 tiles need 3 halvings to reach one tile.
        assert scheme.num_levels == 4

    def test_single_tile_grid(self):
        scheme = MultilevelScheme(make_design(), nx=1, ny=1)
        assert scheme.num_levels == 1

    def test_tile_at_level(self):
        scheme = MultilevelScheme(make_design(), nx=8, ny=8)
        assert scheme.tile_at_level((5, 3), 0) == (5, 3)
        assert scheme.tile_at_level((5, 3), 1) == (2, 1)
        assert scheme.tile_at_level((5, 3), 2) == (1, 0)
        assert scheme.tile_at_level((5, 3), 3) == (0, 0)

    def test_grid_at_level(self):
        scheme = MultilevelScheme(make_design(), nx=8, ny=8)
        assert scheme.grid_at_level(0) == (8, 8)
        assert scheme.grid_at_level(1) == (4, 4)
        assert scheme.grid_at_level(3) == (1, 1)

    def test_invalid_level(self):
        scheme = MultilevelScheme(make_design(), nx=8, ny=8)
        with pytest.raises(ValueError):
            scheme.tile_at_level((0, 0), 4)

    def test_net_level_local(self):
        nets = [two_pin("local", (1, 1), (5, 5))]
        scheme = MultilevelScheme(make_design(nets), nx=8, ny=8)
        assert scheme.net_level(nets[0]) == 0

    def test_net_level_global(self):
        nets = [two_pin("global", (1, 1), (118, 118))]
        scheme = MultilevelScheme(make_design(nets), nx=8, ny=8)
        assert scheme.net_level(nets[0]) == 3

    def test_net_level_intermediate(self):
        # Pins in tiles (0,0) and (1,1): merged at level 1.
        nets = [two_pin("mid", (1, 1), (20, 20))]
        scheme = MultilevelScheme(make_design(nets), nx=8, ny=8)
        assert scheme.net_level(nets[0]) == 1

    def test_nets_by_level_partition(self):
        nets = [
            two_pin("a", (1, 1), (5, 5)),
            two_pin("b", (1, 1), (20, 20)),
            two_pin("c", (1, 1), (118, 118)),
        ]
        scheme = MultilevelScheme(make_design(nets), nx=8, ny=8)
        groups = scheme.nets_by_level()
        assert sum(len(v) for v in groups.values()) == 3
        assert [n.name for n in groups[0]] == ["a"]

    def test_bottom_up_order(self):
        nets = [
            two_pin("long", (1, 1), (118, 118)),
            two_pin("short", (1, 1), (5, 5)),
        ]
        scheme = MultilevelScheme(make_design(nets), nx=8, ny=8)
        assert [n.name for n in scheme.bottom_up_order()] == ["short", "long"]


class TestTwoPassFramework:
    def test_stage_sequencing_and_data_flow(self):
        calls = []
        nets = [
            two_pin("a", (1, 1), (5, 5)),
            two_pin("b", (1, 1), (100, 100)),
        ]
        design = make_design(nets)
        scheme = MultilevelScheme(design, nx=8, ny=8)

        def global_stage(d, ordered):
            calls.append("global")
            assert [n.name for n in ordered] == ["a", "b"]
            return "G"

        def assign_stage(d, g):
            calls.append("assign")
            assert g == "G"
            return "A"

        def detail_stage(d, g, a, ordered):
            calls.append("detail")
            assert (g, a) == ("G", "A")
            return "D"

        framework = TwoPassFramework(global_stage, assign_stage, detail_stage)
        outcome = framework.run(design, scheme)
        assert calls == ["global", "assign", "detail"]
        assert outcome.detail_result == "D"
        assert outcome.cpu_seconds >= 0
        assert sum(len(level) for level in outcome.level_order) == 2
