"""White-box tests for trunk crossing preconnection and fragments."""


from repro.detailed import DetailedGrid, TrunkPiece
from repro.detailed.router import _piece_fragments, _preconnect_crossings
from tests.detailed.test_grid import make_design


def vertical_piece(net, x, y_lo, y_hi, layer=2):
    return TrunkPiece(net=net, nodes=[(x, y, layer) for y in range(y_lo, y_hi + 1)])


def horizontal_piece(net, y, x_lo, x_hi, layer=1):
    return TrunkPiece(net=net, nodes=[(x, y, layer) for x in range(x_lo, x_hi + 1)])


class TestPreconnectCrossings:
    def occupy(self, grid, pieces):
        for piece in pieces:
            for node in piece.nodes:
                grid.occupy(node, piece.net)

    def test_single_crossing_gets_via(self):
        grid = DetailedGrid(make_design())
        pieces = [
            vertical_piece("n", 5, 0, 10),
            horizontal_piece("n", 4, 0, 10),
        ]
        self.occupy(grid, pieces)
        edges, components = _preconnect_crossings(grid, "n", pieces)
        assert components == [{(5, 4, 1), (5, 4, 2)}]
        assert edges == {((5, 4, 1), (5, 4, 2))}
        assert grid.owner((5, 4, 1)) == "n"

    def test_connected_pieces_no_redundant_vias(self):
        grid = DetailedGrid(make_design())
        pieces = [
            vertical_piece("n", 5, 0, 10),
            horizontal_piece("n", 4, 0, 10),
            horizontal_piece("n", 8, 0, 10, layer=3),
        ]
        self.occupy(grid, pieces)
        edges, components = _preconnect_crossings(grid, "n", pieces)
        # Two vias suffice to join three pieces (a spanning structure).
        assert len(components) == 2

    def test_blocked_crossing_left_for_astar(self):
        grid = DetailedGrid(make_design())
        pieces = [
            vertical_piece("n", 5, 0, 10),
            horizontal_piece("n", 4, 0, 4),  # crossing at (5,4)? no: ends at 4
        ]
        # Pieces do not intersect in (x, y): no via possible.
        self.occupy(grid, pieces)
        edges, components = _preconnect_crossings(grid, "n", pieces)
        assert edges == set() and components == []

    def test_foreign_blockage_skips_via(self):
        grid = DetailedGrid(make_design())
        pieces = [
            vertical_piece("n", 5, 0, 10, layer=2),
            horizontal_piece("n", 4, 0, 10, layer=3),
        ]
        self.occupy(grid, pieces)
        # A foreign wire occupies the crossing... there is nothing
        # between layers 2 and 3; instead block the crossing by taking
        # an intermediate node of a 1-3 crossing.
        grid2 = DetailedGrid(make_design())
        pieces2 = [
            vertical_piece("m", 5, 0, 10, layer=2),
            horizontal_piece("m", 4, 0, 10, layer=1),
        ]
        for piece in pieces2:
            for node in piece.nodes:
                grid2.occupy(node, "m")
        # (5, 4, 1) and (5, 4, 2) belong to m itself: via allowed.
        edges, comps = _preconnect_crossings(grid2, "m", pieces2)
        assert comps

    def test_same_layer_touch_counts_as_connected(self):
        grid = DetailedGrid(make_design())
        pieces = [
            horizontal_piece("n", 4, 0, 5),
            horizontal_piece("n", 4, 5, 10),  # shares (5, 4, 1)
        ]
        grid.occupy((5, 4, 1), "n")
        for piece in pieces:
            for node in piece.nodes:
                if grid.owner(node) is None:
                    grid.occupy(node, "n")
        edges, components = _preconnect_crossings(grid, "n", pieces)
        assert edges == set()  # no via needed
        assert components == []

    def test_single_piece_noop(self):
        grid = DetailedGrid(make_design())
        pieces = [vertical_piece("n", 5, 0, 10)]
        edges, components = _preconnect_crossings(grid, "n", pieces)
        assert edges == set() and components == []


class TestPieceFragments:
    def test_full_piece_survives(self):
        piece = vertical_piece("n", 5, 0, 4)
        fragments = _piece_fragments([piece], set(piece.nodes))
        assert len(fragments) == 1
        assert fragments[0].nodes == piece.nodes

    def test_gap_splits(self):
        piece = vertical_piece("n", 5, 0, 4)
        live = set(piece.nodes) - {(5, 2, 2)}
        fragments = _piece_fragments([piece], live)
        assert len(fragments) == 2
        assert [len(f.nodes) for f in fragments] == [2, 2]

    def test_fully_released_piece_vanishes(self):
        piece = vertical_piece("n", 5, 0, 4)
        assert _piece_fragments([piece], set()) == []
