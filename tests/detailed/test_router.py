"""Tests for the detailed router end to end."""


from repro.assign import (
    DesignTrackAssignment,
    TrackMethod,
    assign_layers,
    assign_tracks,
    extract_panels,
)
from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.detailed import DetailedRouter
from repro.eval import evaluate
from repro.globalroute import GlobalRouter
from tests.globalroute.test_router import design_with_nets, two_pin


def route_design(design, stitch_aware=True, method=TrackMethod.GRAPH):
    gr = GlobalRouter(stitch_aware=stitch_aware).route(design)
    columns, rows = extract_panels(gr)
    layers = assign_layers(columns, rows, design.technology)
    tracks = assign_tracks(design, gr.graph, layers, method)
    router = DetailedRouter(stitch_aware=stitch_aware)
    return router.route(design, gr.graph, tracks), tracks


SMALL = SyntheticSpec(
    name="router-t", nets=60, pins=160, layers=3, cells_per_pin=28.0
)


class TestDetailedRouter:
    def test_routes_simple_nets(self):
        nets = [two_pin("a", (1, 1), (40, 30)), two_pin("b", (10, 5), (50, 35))]
        design = design_with_nets(nets)
        result, _ = route_design(design)
        assert result.routability == 1.0
        assert not result.failed

    def test_each_net_connected(self):
        """Every routed net's edges form one component containing pins."""
        design = generate_design(SMALL)
        result, _ = route_design(design)
        for name, rn in result.nets.items():
            if not rn.routed:
                continue
            # Union-find over edges.
            from repro.algorithms import DisjointSet

            ds = DisjointSet()
            for a, b in rn.edges:
                ds.union(a, b)
            pins = list(rn.pin_nodes)
            for pin in pins[1:]:
                assert ds.connected(pins[0], pin), f"net {name} disconnected"

    def test_no_foreign_overlap(self):
        """No grid node carries two different nets."""
        design = generate_design(SMALL)
        result, _ = route_design(design)
        seen = {}
        for name, rn in result.nets.items():
            for node in rn.nodes:
                assert seen.get(node, name) == name
                seen[node] = name

    def test_hard_constraints_hold(self):
        """No vertical wire on a line; vias on lines only at pins."""
        design = generate_design(SMALL)
        result, _ = route_design(design)
        report = evaluate(result)
        assert report.vertical_violations == 0
        assert design.stitches is not None
        for rn in result.nets.values():
            pin_xy = {(n[0], n[1]) for n in rn.pin_nodes}
            for a, b in rn.edges:
                if a[2] != b[2] and design.stitches.is_on_line(a[0]):
                    assert (a[0], a[1]) in pin_xy

    def test_stitch_aware_cuts_short_polygons(self):
        design = generate_design(SMALL)
        aware, _ = route_design(design, stitch_aware=True)
        blind, _ = route_design(design, stitch_aware=False)
        assert (
            evaluate(aware).short_polygons
            <= evaluate(blind).short_polygons
        )

    def test_routability_in_expected_band(self):
        design = generate_design(SMALL)
        result, _ = route_design(design)
        assert result.routability >= 0.93

    def test_net_order_prioritizes_bad_ends(self):
        nets = [two_pin("a", (1, 1), (40, 30)), two_pin("b", (10, 5), (50, 35))]
        design = design_with_nets(nets)
        gr = GlobalRouter().route(design)
        columns, rows = extract_panels(gr)
        layers = assign_layers(columns, rows, design.technology)
        tracks = assign_tracks(design, gr.graph, layers, TrackMethod.GRAPH)
        tracks_bad = DesignTrackAssignment(
            columns=tracks.columns,
            rows=tracks.rows,
            failed_nets=tracks.failed_nets,
            cpu_seconds=0.0,
        )
        router = DetailedRouter(stitch_aware=True)
        # Monkey-style: fabricate bad-end counts by checking ordering.
        order = router._net_order(list(design.netlist), tracks_bad)
        assert len(order) == 2

    def test_deterministic(self):
        design = generate_design(SMALL)
        r1, _ = route_design(design)
        r2, _ = route_design(design)
        assert {n: rn.nodes for n, rn in r1.nets.items()} == {
            n: rn.nodes for n, rn in r2.nets.items()
        }

    def test_failed_track_nets_are_direct_routed(self):
        """Nets ripped by track assignment still get routed."""
        design = generate_design(SMALL)
        gr = GlobalRouter().route(design)
        columns, rows = extract_panels(gr)
        layers = assign_layers(columns, rows, design.technology)
        tracks = assign_tracks(design, gr.graph, layers, TrackMethod.GRAPH)
        victim = next(iter(design.netlist)).name
        tracks.failed_nets.add(victim)
        result = DetailedRouter().route(design, gr.graph, tracks)
        assert result.nets[victim].routed
