"""Tests for the detailed routing grid: legality, occupancy, Eq. (10)."""

import pytest

from repro.config import RouterConfig
from repro.geometry import Point
from repro.layout import Design, Net, Netlist, Pin, Technology
from repro.detailed import DetailedGrid


def make_design(layers=3, width=60, height=45):
    config = RouterConfig(stitch_spacing=15, tile_size=15)
    nets = [
        Net("n0", (Pin("a", Point(1, 1), 1), Pin("b", Point(50, 40), 1)))
    ]
    return Design(
        name="toy",
        width=width,
        height=height,
        technology=Technology(layers),
        netlist=Netlist(nets),
        config=config,
    )


class TestLegality:
    def test_bounds(self):
        g = DetailedGrid(make_design())
        assert g.in_bounds((0, 0, 1))
        assert g.in_bounds((59, 44, 3))
        assert not g.in_bounds((60, 0, 1))
        assert not g.in_bounds((0, 0, 0))
        assert not g.in_bounds((0, 0, 4))

    def test_vertical_layer_blocked_on_line(self):
        g = DetailedGrid(make_design())
        assert g.is_blocked((15, 5, 2))  # vertical layer on the line
        assert not g.is_blocked((15, 5, 1))  # horizontal layer crosses
        assert not g.is_blocked((16, 5, 2))

    def test_region_flags(self):
        g = DetailedGrid(make_design())
        assert g.on_stitch_line(15) and not g.on_stitch_line(16)
        assert g.in_unfriendly(14) and g.in_unfriendly(16)
        assert not g.in_unfriendly(13)
        assert g.in_escape(11) and g.in_escape(19)
        assert not g.in_escape(15)


class TestOccupancy:
    def test_occupy_release_roundtrip(self):
        g = DetailedGrid(make_design())
        g.occupy((3, 3, 1), "a")
        assert g.owner((3, 3, 1)) == "a"
        assert not g.is_free_for((3, 3, 1), "b")
        assert g.is_free_for((3, 3, 1), "a")
        g.release((3, 3, 1), "a")
        assert g.owner((3, 3, 1)) is None

    def test_conflicting_occupy_raises(self):
        g = DetailedGrid(make_design())
        g.occupy((3, 3, 1), "a")
        with pytest.raises(ValueError):
            g.occupy((3, 3, 1), "b")

    def test_release_checks_owner(self):
        g = DetailedGrid(make_design())
        g.occupy((3, 3, 1), "a")
        g.release((3, 3, 1), "b")  # no-op
        assert g.owner((3, 3, 1)) == "a"

    def test_force_occupy_reports_eviction(self):
        g = DetailedGrid(make_design())
        g.occupy((3, 3, 1), "a")
        assert g.force_occupy((3, 3, 1), "b") == "a"
        assert g.owner((3, 3, 1)) == "b"
        assert g.force_occupy((4, 3, 1), "b") is None


class TestNeighbors:
    def test_preferred_directions(self):
        g = DetailedGrid(make_design())
        h_moves = {n for n, _ in g.neighbors((5, 5, 1), "a")}
        assert (4, 5, 1) in h_moves and (6, 5, 1) in h_moves
        assert (5, 4, 1) not in h_moves and (5, 6, 1) not in h_moves
        v_moves = {n for n, _ in g.neighbors((5, 5, 2), "a")}
        assert (5, 4, 2) in v_moves and (5, 6, 2) in v_moves
        assert (4, 5, 2) not in v_moves

    def test_z_moves_exist(self):
        g = DetailedGrid(make_design())
        moves = {n for n, _ in g.neighbors((5, 5, 2), "a")}
        assert (5, 5, 1) in moves and (5, 5, 3) in moves

    def test_via_forbidden_on_line(self):
        g = DetailedGrid(make_design())
        moves = {n for n, _ in g.neighbors((15, 5, 1), "a")}
        assert (15, 5, 2) not in moves
        # Horizontal pass-through across the line stays legal.
        assert (14, 5, 1) in moves and (16, 5, 1) in moves

    def test_foreign_nodes_blocked(self):
        g = DetailedGrid(make_design())
        g.occupy((6, 5, 1), "other")
        moves = {n for n, _ in g.neighbors((5, 5, 1), "a")}
        assert (6, 5, 1) not in moves

    def test_foreign_penalty_mode(self):
        g = DetailedGrid(make_design())
        g.occupy((6, 5, 1), "other")
        moves = dict(g.neighbors((5, 5, 1), "a", foreign_penalty=30.0))
        assert (6, 5, 1) in moves
        assert moves[(6, 5, 1)] >= 30.0

    def test_foreign_pins_never_passable(self):
        g = DetailedGrid(make_design())
        g.occupy((6, 5, 1), "other")
        g.mark_pin((6, 5, 1))
        moves = {n for n, _ in g.neighbors((5, 5, 1), "a", 30.0)}
        assert (6, 5, 1) not in moves


class TestCosts:
    def test_via_in_sur_costs_beta(self):
        design = make_design()
        g = DetailedGrid(design)
        moves = dict(g.neighbors((16, 5, 1), "a"))  # x=16 in SUR
        base = dict(g.neighbors((5, 5, 1), "a"))
        assert moves[(16, 5, 2)] >= base[(5, 5, 2)] + design.config.beta - 1e-9

    def test_escape_region_costs_gamma_on_vertical(self):
        design = make_design()
        g = DetailedGrid(design)
        moves = dict(g.neighbors((18, 5, 2), "a"))  # escape region
        away = dict(g.neighbors((5, 5, 2), "a"))
        assert (
            moves[(18, 6, 2)]
            == pytest.approx(away[(5, 6, 2)] + design.config.gamma)
        )

    def test_baseline_mode_drops_soft_costs(self):
        design = make_design()
        g = DetailedGrid(design, stitch_aware=False)
        moves = dict(g.neighbors((16, 5, 1), "a"))
        assert moves[(16, 5, 2)] == pytest.approx(design.config.alpha)
        v_moves = dict(g.neighbors((18, 5, 2), "a"))
        assert v_moves[(18, 6, 2)] == pytest.approx(design.config.alpha)

    def test_hard_constraints_kept_in_baseline_mode(self):
        g = DetailedGrid(make_design(), stitch_aware=False)
        assert g.is_blocked((15, 5, 2))
        moves = {n for n, _ in g.neighbors((15, 5, 1), "a")}
        assert (15, 5, 2) not in moves
