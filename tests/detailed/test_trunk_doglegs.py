"""Tests for dogleg materialization in trunk wires."""


from repro.assign import (
    DesignTrackAssignment,
    Panel,
    PanelKind,
    PanelSegment,
    TrackAssignmentResult,
)
from repro.detailed import DetailedGrid, materialize_trunks
from repro.geometry import Interval
from repro.globalroute import GlobalGraph
from tests.detailed.test_grid import make_design


def assignment_with_tracks(design, tracks_by_row):
    """One vertical segment in column panel 1 with given per-row tracks."""
    rows = sorted(tracks_by_row)
    seg = PanelSegment(
        net="n", index=0, span=Interval(rows[0], rows[-1])
    )
    panel = Panel(kind=PanelKind.COLUMN, position=1, segments=[seg])
    result = TrackAssignmentResult(
        panel=panel, tracks={0: dict(tracks_by_row)}, failed=[], bad_ends=[]
    )
    return DesignTrackAssignment(
        columns={(1, 2): result}, rows={}, failed_nets=set(), cpu_seconds=0.0
    )


class TestDoglegMaterialization:
    def test_straight_segment(self):
        design = make_design()
        assignment = assignment_with_tracks(design, {0: 20, 1: 20})
        grid = DetailedGrid(design)
        pieces = materialize_trunks(
            design, grid, GlobalGraph(design), assignment
        )
        ((piece,),) = [pieces["n"]]
        xs = {n[0] for n in piece.nodes}
        assert xs == {20}
        ys = sorted(n[1] for n in piece.nodes)
        assert ys[0] == 0 and ys[-1] == 29  # two full tile rows

    def test_dogleg_creates_jog(self):
        design = make_design()
        assignment = assignment_with_tracks(design, {0: 18, 1: 22})
        grid = DetailedGrid(design)
        pieces = materialize_trunks(
            design, grid, GlobalGraph(design), assignment
        )
        ((piece,),) = [pieces["n"]]
        # Jog nodes at the tile boundary y = 15 between x 18 and 22.
        jog_nodes = {n for n in piece.nodes if n[1] == 15}
        assert {(x, 15, 2) for x in range(18, 23)} <= set(piece.nodes)
        # The run is contiguous.
        for a, b in zip(piece.nodes, piece.nodes[1:]):
            assert sum(abs(p - q) for p, q in zip(a, b)) == 1

    def test_dogleg_leftward(self):
        design = make_design()
        assignment = assignment_with_tracks(design, {0: 24, 1: 19})
        grid = DetailedGrid(design)
        pieces = materialize_trunks(
            design, grid, GlobalGraph(design), assignment
        )
        ((piece,),) = [pieces["n"]]
        for a, b in zip(piece.nodes, piece.nodes[1:]):
            assert sum(abs(p - q) for p, q in zip(a, b)) == 1
        assert {(x, 15, 2) for x in range(19, 25)} <= set(piece.nodes)

    def test_blocked_jog_splits_piece(self):
        design = make_design()
        assignment = assignment_with_tracks(design, {0: 18, 1: 22})
        grid = DetailedGrid(design)
        grid.occupy((20, 15, 2), "other")  # block the middle of the jog
        pieces = materialize_trunks(
            design, grid, GlobalGraph(design), assignment
        )
        assert len(pieces["n"]) == 2
