"""Tests for A* connection search and trunk materialization."""


from repro.assign import TrackMethod, assign_layers, assign_tracks, extract_panels
from repro.detailed import (
    DetailedGrid,
    astar_connect,
    connection_window,
    materialize_trunks,
)
from repro.globalroute import GlobalRouter
from tests.detailed.test_grid import make_design
from tests.globalroute.test_router import design_with_nets, two_pin


def full_window(design):
    return (0, 0, design.width - 1, design.height - 1)


class TestAstarConnect:
    def test_straight_horizontal(self):
        design = make_design()
        g = DetailedGrid(design)
        path = astar_connect(
            g, "a", {(2, 5, 1)}, {(8, 5, 1)}, full_window(design), 10_000
        )
        assert path is not None
        assert path[0] == (2, 5, 1) and path[-1] == (8, 5, 1)
        assert len(path) == 7  # straight line, no detour

    def test_requires_layer_change_for_y(self):
        design = make_design()
        g = DetailedGrid(design)
        path = astar_connect(
            g, "a", {(5, 5, 1)}, {(5, 10, 1)}, full_window(design), 10_000
        )
        assert path is not None
        layers = {n[2] for n in path}
        assert 2 in layers  # must hop to the vertical layer

    def test_overlapping_source_target(self):
        design = make_design()
        g = DetailedGrid(design)
        path = astar_connect(
            g, "a", {(5, 5, 1)}, {(5, 5, 1)}, full_window(design), 10
        )
        assert path == [(5, 5, 1)]

    def test_respects_window(self):
        design = make_design()
        g = DetailedGrid(design)
        # Window too small to reach the target.
        path = astar_connect(
            g, "a", {(2, 5, 1)}, {(30, 5, 1)}, (0, 0, 10, 10), 10_000
        )
        assert path is None

    def test_blocked_nodes_avoided(self):
        design = make_design()
        g = DetailedGrid(design)
        blocked = {(5, 5, 1)}
        path = astar_connect(
            g,
            "a",
            {(2, 5, 1)},
            {(8, 5, 1)},
            full_window(design),
            10_000,
            blocked=blocked,
        )
        assert path is not None
        assert (5, 5, 1) not in path

    def test_detours_around_foreign_wire(self):
        design = make_design()
        g = DetailedGrid(design)
        # Wall across every horizontal layer at x=5 with one gap.
        for y in range(0, 45):
            g.occupy((5, y, 1), "wall")
            g.occupy((5, y, 3), "wall")
        g.release((5, 20, 1), "wall")  # single gap
        path = astar_connect(
            g, "a", {(2, 5, 1)}, {(8, 5, 1)}, full_window(design), 100_000
        )
        assert path is not None
        assert (5, 20, 1) in path  # squeezed through the gap

    def test_expansion_limit_respected(self):
        design = make_design()
        g = DetailedGrid(design)
        path = astar_connect(
            g, "a", {(2, 5, 1)}, {(50, 40, 1)}, full_window(design), 5
        )
        assert path is None

    def test_empty_sets(self):
        design = make_design()
        g = DetailedGrid(design)
        assert astar_connect(g, "a", set(), {(1, 1, 1)}, full_window(design), 10) is None
        assert astar_connect(g, "a", {(1, 1, 1)}, set(), full_window(design), 10) is None


class TestConnectionWindow:
    def test_margin_and_clipping(self):
        window = connection_window(
            {(5, 5, 1)}, {(10, 8, 1)}, margin=3, width=20, height=12
        )
        assert window == (2, 2, 13, 11)

    def test_clips_to_die(self):
        window = connection_window(
            {(0, 0, 1)}, {(19, 11, 1)}, margin=5, width=20, height=12
        )
        assert window == (0, 0, 19, 11)


class TestMaterializeTrunks:
    def route_and_assign(self):
        nets = [
            two_pin("a", (1, 1), (55, 40)),
            two_pin("b", (5, 1), (5, 40)),
        ]
        design = design_with_nets(nets)
        gr = GlobalRouter().route(design)
        columns, rows = extract_panels(gr)
        layers = assign_layers(columns, rows, design.technology)
        tracks = assign_tracks(design, gr.graph, layers, TrackMethod.GRAPH)
        return design, gr, tracks

    def test_trunks_occupy_grid(self):
        design, gr, tracks = self.route_and_assign()
        grid = DetailedGrid(design)
        pieces = materialize_trunks(design, grid, gr.graph, tracks)
        assert pieces  # at least one net has trunks
        for net, net_pieces in pieces.items():
            for piece in net_pieces:
                for node in piece.nodes:
                    assert grid.owner(node) == net

    def test_trunk_nodes_contiguous(self):
        design, gr, tracks = self.route_and_assign()
        grid = DetailedGrid(design)
        pieces = materialize_trunks(design, grid, gr.graph, tracks)
        for net_pieces in pieces.values():
            for piece in net_pieces:
                for a, b in zip(piece.nodes, piece.nodes[1:]):
                    dist = sum(abs(p - q) for p, q in zip(a, b))
                    assert dist == 1

    def test_failed_nets_skipped(self):
        design, gr, tracks = self.route_and_assign()
        tracks.failed_nets.add("a")
        grid = DetailedGrid(design)
        pieces = materialize_trunks(design, grid, gr.graph, tracks)
        assert "a" not in pieces

    def test_trunks_avoid_stitch_line_tracks(self):
        design, gr, tracks = self.route_and_assign()
        grid = DetailedGrid(design)
        pieces = materialize_trunks(design, grid, gr.graph, tracks)
        assert design.stitches is not None
        for net_pieces in pieces.values():
            for piece in net_pieces:
                for x, _y, layer in piece.nodes:
                    if design.technology.is_vertical(layer):
                        assert not design.stitches.is_on_line(x)
