"""Smoke tests for the ``repro`` console-script entry point.

The test environment does not install the package, so instead of
invoking the generated wrapper these tests verify the two halves the
wrapper is made of: the ``[project.scripts]`` declaration resolves to
a real callable, and that callable behaves as a CLI entry point.
"""

import importlib
import pathlib
import re
import subprocess
import sys

ROOT = pathlib.Path(__file__).parent.parent


def declared_entry_point():
    """The ``repro`` script target from pyproject.toml."""
    text = (ROOT / "pyproject.toml").read_text()
    try:
        import tomllib  # Python 3.11+

        scripts = tomllib.loads(text)["project"]["scripts"]
        return scripts["repro"]
    except ModuleNotFoundError:
        match = re.search(
            r"^\[project\.scripts\]\s*\nrepro\s*=\s*\"([^\"]+)\"",
            text,
            re.MULTILINE,
        )
        assert match, "pyproject.toml lost its [project.scripts] entry"
        return match.group(1)


class TestEntryPoint:
    def test_declaration_resolves_to_callable(self):
        target = declared_entry_point()
        module_name, _, attr = target.partition(":")
        assert attr, f"script target {target!r} is not module:attr"
        func = getattr(importlib.import_module(module_name), attr)
        assert callable(func)

    def test_entry_point_routes_a_command(self, capsys):
        target = declared_entry_point()
        module_name, _, attr = target.partition(":")
        main = getattr(importlib.import_module(module_name), attr)
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "MCNC" in out

    def test_module_invocation_help(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "route" in proc.stdout and "compare" in proc.stdout

    def test_workers_flag_advertised(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "route", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "--workers" in proc.stdout
