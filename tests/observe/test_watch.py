"""The ``repro watch`` monitor: tailing, progress lines, exit codes."""

import io
import json
import threading
import time

import pytest

from repro.observe import StreamingTracer
from repro.observe.watch import StreamWatcher, follow_events, watch_stream


def write_run(path, heartbeat_interval=1e9):
    """Stream a small synthetic run to ``path``; returns the trace."""
    tracer = StreamingTracer(path, heartbeat_interval=heartbeat_interval)
    with tracer.span("pass1"):
        with tracer.span("global-route") as stage:
            stage.count("maze_expansions", 40)
            for i in range(3):
                tracer.progress("net", net=f"n{i}", routed=True)
    with tracer.span("pass2"):
        tracer.progress("task", stage="detailed", index=0, busy_seconds=0.1)
    return tracer.finish(router="StitchAwareRouter", design="toy")


class TestWatchStream:
    def test_complete_stream_no_follow(self, tmp_path, capsys=None):
        path = tmp_path / "run.ndjson"
        write_run(path)
        out = io.StringIO()
        assert watch_stream(path, follow=False, out=out) == 0
        text = out.getvalue()
        assert "watching stream" in text
        assert "> pass1" in text and "< pass1" in text
        assert "finished: StitchAwareRouter on toy" in text
        assert "hotspots" in text  # final ranking from the replay

    def test_gzip_stream(self, tmp_path):
        path = tmp_path / "run.ndjson.gz"
        write_run(path)
        out = io.StringIO()
        assert watch_stream(path, follow=False, out=out) == 0
        assert "finished" in out.getvalue()

    def test_interrupted_stream_exits_nonzero(self, tmp_path):
        path = tmp_path / "run.ndjson"
        tracer = StreamingTracer(path, heartbeat_interval=1e9)
        with tracer.span("pass1"):
            pass
        tracer.close()  # no finish event
        out = io.StringIO()
        assert watch_stream(path, follow=False, out=out) == 1
        assert "without a finish event" in out.getvalue()

    def test_bad_stream_raises(self, tmp_path):
        path = tmp_path / "bogus.ndjson"
        path.write_text('{"ev":"gauge","name":"x","value":1}\n')
        with pytest.raises(ValueError, match="open"):
            watch_stream(path, follow=False, out=io.StringIO())


class TestFollowEvents:
    def test_tails_a_growing_file(self, tmp_path):
        path = tmp_path / "run.ndjson"

        def producer():
            tracer = StreamingTracer(path, heartbeat_interval=1e9)
            with tracer.span("pass1"):
                time.sleep(0.05)
            tracer.finish(router="R", design="D")

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            # Wait for the header line so open_stream_text finds the file.
            for _ in range(100):
                if path.exists() and path.read_text().endswith("\n"):
                    break
                time.sleep(0.01)
            events = list(
                follow_events(path, poll_interval=0.01, timeout=5.0)
            )
        finally:
            thread.join()
        assert [e["ev"] for e in events] == [
            "open", "span-open", "span-close", "finish",
        ]

    def test_partial_trailing_line_never_yielded(self, tmp_path):
        path = tmp_path / "run.ndjson"
        write_run(path)
        complete = path.read_text()
        # Truncate mid-line: the fragment must be invisible.
        path.write_text(complete + '{"ev":"progress","kind":')
        events = list(follow_events(path, follow=False))
        assert all("ev" in e for e in events)
        assert events[-1]["ev"] == "finish"

    def test_timeout_on_silent_producer(self, tmp_path):
        path = tmp_path / "run.ndjson"
        tracer = StreamingTracer(path, heartbeat_interval=1e9)
        with tracer.span("pass1"):
            pass
        tracer.close()  # producer goes silent without finishing
        with pytest.raises(TimeoutError):
            list(follow_events(path, poll_interval=0.01, timeout=0.05))

    def test_no_follow_stops_at_eof(self, tmp_path):
        path = tmp_path / "run.ndjson"
        tracer = StreamingTracer(path, heartbeat_interval=1e9)
        with tracer.span("pass1"):
            pass
        tracer.close()
        events = list(follow_events(path, follow=False))
        assert [e["ev"] for e in events] == [
            "open", "span-open", "span-close",
        ]


class TestStreamWatcher:
    def feed(self, events):
        out = io.StringIO()
        watcher = StreamWatcher(out=out)
        for event in events:
            watcher.handle(event)
        return watcher, out.getvalue()

    def synthetic_events(self):
        return [
            {"ev": "open", "format": "repro-trace-stream", "version": 1},
            {
                "ev": "span-open", "id": 0, "parent": None,
                "name": "pass1", "started_at": 0.0,
            },
            {
                "ev": "span-close", "id": 0, "wall_seconds": 2.0,
                "cpu_seconds": 2.0,
                "counters": {"maze_expansions": 1000, "failed_nets": 0},
            },
            {
                "ev": "heartbeat", "wall_seconds": 2.5, "rss_kib": 2048,
                "events": 3, "open_spans": 0,
            },
        ]

    def test_heartbeat_line_carries_rates_and_hotspot_delta(self):
        _, text = self.feed(self.synthetic_events())
        beat_line = next(
            line for line in text.splitlines() if "heartbeat" in line
        )
        assert "rss=2MiB" in beat_line
        assert "expansions/s" in beat_line
        assert "hotspot pass1 +2.000s" in beat_line

    def test_span_close_echoes_notable_counters(self):
        _, text = self.feed(self.synthetic_events())
        close_line = next(
            line for line in text.splitlines() if "< pass1" in line
        )
        assert "wall=2.000s" in close_line
        assert "maze_expansions=1000" in close_line

    def test_net_progress_prints_every_hundred(self):
        events = self.synthetic_events()[:2]
        events += [
            {"ev": "progress", "kind": "net", "net": f"n{i}", "routed": True}
            for i in range(250)
        ]
        watcher, text = self.feed(events)
        assert text.count("nets committed") == 2  # at 100 and 200
        assert watcher._nets == 250

    def test_deep_spans_stay_quiet_but_feed_hotspots(self):
        events = self.synthetic_events()[:2]
        events.append(
            {
                "ev": "span-open", "id": 1, "parent": 0,
                "name": "round", "started_at": 0.1,
            }
        )
        events.append(
            {
                "ev": "span-open", "id": 2, "parent": 1,
                "name": "net", "started_at": 0.2,
            }
        )
        watcher, text = self.feed(events)
        assert "> pass1/round" in text  # depth 1: printed
        assert "pass1/round/net" not in text  # depth 2: quiet
        assert watcher._depth[2] == 2

    def test_finish_prints_summary_and_ranking(self, tmp_path):
        path = tmp_path / "run.ndjson"
        write_run(path)
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        watcher, text = self.feed(events)
        assert watcher.replayer.trace is not None
        assert "finished: StitchAwareRouter on toy" in text
        assert "hotspots" in text
        assert "self_s" in text
