"""Event streaming: NDJSON emission, tailing, and byte-exact replay."""

import gzip
import io
import json
import threading

import pytest

from repro.observe import (
    STREAM_FORMAT,
    STREAM_VERSION,
    StreamReplayer,
    StreamingTracer,
    iter_stream_events,
    read_stream,
    read_stream_text,
)


def run_nested(tracer):
    """A small run exercising spans, counts, gauges, and progress."""
    with tracer.span("pass1") as pass1:
        with tracer.span("global-route", window=3) as stage:
            stage.count("maze_expansions", 40)
            for _ in range(5):
                tracer.count("probes")  # unit increments: not streamed
            tracer.progress("net", net="n1", routed=True)
            tracer.gauge("edge_overflow", 7)
        pass1.count("rounds", 2)
    with tracer.span("pass2"):
        tracer.count("astar_expansions", 99)
    tracer.count("orphans", 3)
    return tracer.finish(
        router="StitchAwareRouter", design="toy", meta={"seed": 1}
    )


class TestStreamingTracer:
    def test_replay_is_byte_identical(self):
        sink = io.StringIO()
        trace = run_nested(StreamingTracer(sink))
        replayed = read_stream_text(sink.getvalue())
        assert replayed.to_json() == trace.to_json()

    def test_event_vocabulary_and_order(self):
        sink = io.StringIO()
        run_nested(StreamingTracer(sink, heartbeat_interval=1e9))
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "open"
        assert kinds[-1] == "finish"
        assert kinds.count("span-open") == kinds.count("span-close") == 3
        assert "progress" in kinds and "gauge" in kinds
        header = events[0]
        assert header["format"] == STREAM_FORMAT
        assert header["version"] == STREAM_VERSION

    def test_unit_counts_not_streamed_but_flushes_are(self):
        sink = io.StringIO()
        run_nested(StreamingTracer(sink, heartbeat_interval=1e9))
        counts = [
            json.loads(line)
            for line in sink.getvalue().splitlines()
            if json.loads(line)["ev"] == "count"
        ]
        names = {c["name"] for c in counts}
        assert "orphans" in names and "probes" not in names

    def test_span_close_carries_final_totals(self):
        sink = io.StringIO()
        run_nested(StreamingTracer(sink, heartbeat_interval=1e9))
        closes = {
            e["id"]: e
            for e in map(json.loads, sink.getvalue().splitlines())
            if e["ev"] == "span-close"
        }
        opens = {
            e["id"]: e
            for e in map(json.loads, sink.getvalue().splitlines())
            if e["ev"] == "span-open"
        }
        gid = next(
            i for i, e in opens.items() if e["name"] == "global-route"
        )
        # The unit increments land in the close totals even though they
        # were never streamed individually.
        assert closes[gid]["counters"]["probes"] == 5
        assert closes[gid]["counters"]["maze_expansions"] == 40
        assert opens[gid]["parent"] is not None

    def test_bookkeeping_counters_recorded_at_finish(self):
        sink = io.StringIO()
        trace = run_nested(StreamingTracer(sink, heartbeat_interval=0.0))
        assert trace.counters["stream_events"] > 0
        assert trace.counters["stream_heartbeats"] > 0
        # The finish event agrees with the frozen trace exactly.
        finish = json.loads(sink.getvalue().splitlines()[-1])
        assert finish["counters"] == trace.counters

    def test_heartbeats_carry_liveness_gauges(self):
        sink = io.StringIO()
        run_nested(StreamingTracer(sink, heartbeat_interval=0.0))
        beats = [
            e
            for e in map(json.loads, sink.getvalue().splitlines())
            if e["ev"] == "heartbeat"
        ]
        assert beats
        for beat in beats:
            assert beat["wall_seconds"] >= 0.0
            assert beat["rss_kib"] > 0
            assert beat["events"] > 0
            assert beat["open_spans"] >= 0

    def test_path_sink_and_gzip_sink(self, tmp_path):
        plain = tmp_path / "run.ndjson"
        zipped = tmp_path / "run.ndjson.gz"
        t1 = run_nested(StreamingTracer(plain))
        t2 = run_nested(StreamingTracer(zipped))
        assert read_stream(plain).to_json() == t1.to_json()
        assert read_stream(zipped).to_json() == t2.to_json()
        # The gzip sink really is gzip.
        with gzip.open(zipped, "rt") as fh:
            assert json.loads(fh.readline())["ev"] == "open"

    def test_close_is_idempotent_and_stops_emission(self, tmp_path):
        path = tmp_path / "run.ndjson"
        tracer = StreamingTracer(path)
        tracer.close()
        tracer.close()
        tracer.progress("net", net="late")
        assert "late" not in path.read_text()

    def test_concurrent_progress_emission_is_line_atomic(self):
        sink = io.StringIO()
        tracer = StreamingTracer(sink, heartbeat_interval=1e9)

        def spam(worker):
            for i in range(50):
                tracer.progress("task", worker=worker, index=i)

        threads = [
            threading.Thread(target=spam, args=(w,)) for w in range(4)
        ]
        with tracer.span("stage"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        tracer.finish()
        events = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert sum(e["ev"] == "progress" for e in events) == 200


class TestReading:
    def test_read_stream_rejects_missing_finish(self):
        sink = io.StringIO()
        tracer = StreamingTracer(sink, heartbeat_interval=1e9)
        with tracer.span("stage"):
            pass
        tracer.close()  # interrupted: no finish event
        with pytest.raises(ValueError, match="finish"):
            read_stream_text(sink.getvalue())

    def test_interrupted_prefix_still_iterates(self):
        sink = io.StringIO()
        tracer = StreamingTracer(sink, heartbeat_interval=1e9)
        with tracer.span("stage"):
            pass
        tracer.close()
        events = list(iter_stream_events(io.StringIO(sink.getvalue())))
        assert [e["ev"] for e in events] == [
            "open", "span-open", "span-close",
        ]

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="open"):
            read_stream_text('{"ev":"span-open","id":0,"name":"x"}\n')
        bogus = json.dumps(
            {"ev": "open", "format": "something-else", "version": 1}
        )
        with pytest.raises(ValueError, match="not an event stream"):
            read_stream_text(bogus + "\n")
        future = json.dumps(
            {"ev": "open", "format": STREAM_FORMAT, "version": 999}
        )
        with pytest.raises(ValueError, match="version"):
            read_stream_text(future + "\n")

    def test_non_event_line_rejected(self):
        with pytest.raises(ValueError, match="not a stream event"):
            read_stream_text("[1, 2, 3]\n")

    def test_unknown_events_pass_through(self):
        sink = io.StringIO()
        run_nested(StreamingTracer(sink, heartbeat_interval=1e9))
        lines = sink.getvalue().splitlines()
        # Splice in an event from "the future" before the finish line.
        lines.insert(-1, json.dumps({"ev": "quantum-telemetry", "q": 1}))
        text = "\n".join(lines) + "\n"
        events = list(iter_stream_events(io.StringIO(text)))
        assert any(e["ev"] == "quantum-telemetry" for e in events)
        # The replayer ignores it and still reassembles the trace.
        assert read_stream_text(text).design == "toy"

    def test_replayer_incremental_state(self):
        sink = io.StringIO()
        trace = run_nested(StreamingTracer(sink, heartbeat_interval=1e9))
        replayer = StreamReplayer()
        for event in iter_stream_events(io.StringIO(sink.getvalue())):
            before = replayer.trace
            replayer.apply(event)
            if event["ev"] != "finish":
                assert before is None
        assert replayer.trace is not None
        assert replayer.trace.to_json() == trace.to_json()
        assert replayer.events > 0
