"""The canonical metric schema registry, proven complete on live runs.

Two halves:

* registry invariants — the API contracts other tooling builds on
  (history ordering for analytics, strip-prefix queries for the
  regression gate, prefix discipline at import time);
* live completeness — S9234 at the regression-gate scale is routed
  under five configurations (serial, thread pool, process pool,
  sanitizer, counter profiling) and **every** counter, gauge, span,
  and progress kind the run emits must be registered with backend
  coverage that includes the run's own engine/executor tags.  A new
  metric emitted anywhere in the engine fails here until it is
  declared in :mod:`repro.observe.schema`.
"""

import io
import json

import pytest

from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig, resolve_engine, resolve_executor
from repro.api import StitchAwareRouter
from repro.observe import StreamingTracer, schema

CIRCUIT, SCALE = "S9234", 0.02

#: The five live configurations the completeness gate covers.
CONFIGS = {
    "serial": {},
    # profile="full" turns on progress events, so the parallel runs
    # also prove the "net"/"task" progress kinds are registered.
    "thread4": {"workers": 4, "executor": "thread", "profile": "full"},
    "process4": {"workers": 4, "executor": "process", "profile": "full"},
    "sanitize": {"sanitize": True},
    "profile": {"profile": "counters"},
}


# ----------------------------------------------------------------------
# Registry invariants
# ----------------------------------------------------------------------
class TestRegistryInvariants:
    def test_lookup_roundtrip(self):
        spec = schema.lookup("counter", "maze_expansions")
        assert spec.name == "maze_expansions"
        assert spec.kind == "counter"
        assert "global" in spec.stages

    def test_lookup_unknown_returns_none(self):
        assert schema.lookup("counter", "no_such_counter") is None

    def test_is_registered(self):
        assert schema.is_registered("span", "detailed-route")
        assert not schema.is_registered("gauge", "detailed-route")

    def test_every_spec_is_well_formed(self):
        for spec in schema.metric_specs():
            assert spec.name and spec.description
            assert spec.kind in schema.KINDS
            assert spec.backends and spec.backends <= schema.ALL_BACKENDS
            assert spec.stages

    def test_history_counters_order(self):
        # The analytics history table renders in this exact order.
        assert schema.history_counters() == (
            "maze_expansions",
            "astar_searches",
            "astar_expansions",
            "ripup_rounds",
            "failed_nets",
        )

    def test_strip_prefixes(self):
        assert schema.strip_prefixes("scheduling") == ("parallel_",)
        assert set(schema.strip_prefixes("profiling", "streaming")) == {
            "perf_",
            "stream_",
        }

    def test_strip_prefixes_unknown_category_raises(self):
        with pytest.raises(ValueError, match="no strippable category"):
            schema.strip_prefixes("nonsense")

    def test_prefix_discipline(self):
        # Prefixed names carry the category their prefix promises, so
        # strip_prefixes() queries select exactly the right metrics.
        for spec in schema.metric_specs():
            for category, prefixes in schema.CATEGORY_PREFIXES.items():
                if any(spec.name.startswith(p) for p in prefixes):
                    assert spec.category == category, spec.name

    def test_metric_names_filters(self):
        scheduling = schema.metric_names("counter", category="scheduling")
        assert all(n.startswith("parallel_") for n in scheduling)
        process = schema.metric_names("counter", backend="process")
        assert "parallel_ipc_publishes" in process


# ----------------------------------------------------------------------
# Live completeness across the five configurations
# ----------------------------------------------------------------------
_RUNS: dict = {}


def run(name):
    """Route S9234 once per configuration; cache across tests."""
    if name not in _RUNS:
        sink = io.StringIO()
        tracer = StreamingTracer(sink)
        config = RouterConfig(**CONFIGS[name])
        design = mcnc_design(CIRCUIT, SCALE)
        result = StitchAwareRouter(config=config).route(
            design, tracer=tracer
        )
        progress_kinds = {
            event["kind"]
            for event in map(json.loads, sink.getvalue().splitlines())
            if event.get("ev") == "progress"
        }
        _RUNS[name] = (config, result.trace, progress_kinds)
    return _RUNS[name]


def backend_tags(config):
    """The engine/executor tags this configuration runs under."""
    engine = resolve_engine(config.engine).value
    if config.workers == 1:
        return {engine, "serial"}
    return {engine, resolve_executor(config.executor).value}


@pytest.mark.parametrize("name", sorted(CONFIGS))
class TestLiveCompleteness:
    def test_every_span_is_registered(self, name):
        _, trace, _ = run(name)
        for span in trace.walk():
            assert schema.is_registered("span", span.name), span.name

    def test_every_counter_is_registered_with_coverage(self, name):
        config, trace, _ = run(name)
        tags = backend_tags(config)
        emitted = dict(trace.counters)
        for span in trace.walk():
            emitted.update(span.counters)
        assert emitted, "run recorded no counters at all"
        for counter in emitted:
            assert schema.is_registered("counter", counter), counter
            spec = schema.lookup("counter", counter)
            assert tags <= spec.backends, (
                f"{counter}: emitted under {sorted(tags)} but schema "
                f"declares {sorted(spec.backends)}"
            )

    def test_every_gauge_is_registered_with_coverage(self, name):
        config, trace, _ = run(name)
        tags = backend_tags(config)
        for span in trace.walk():
            for gauge in span.gauges:
                assert schema.is_registered("gauge", gauge), gauge
                spec = schema.lookup("gauge", gauge)
                assert tags <= spec.backends, gauge

    def test_every_progress_kind_is_registered(self, name):
        _, _, progress_kinds = run(name)
        for kind in progress_kinds:
            assert schema.is_registered("progress", kind), kind

    def test_expected_coverage_actually_exercised(self, name):
        # Guard against the gate silently passing because a config
        # stopped emitting: each configuration must produce the
        # signals it exists to cover.
        config, trace, progress_kinds = run(name)
        counters = trace.aggregate_counters()
        if name == "profile":
            assert any(c.startswith("perf_") for c in counters)
        if name == "sanitize":
            assert any(c.startswith("sanitize_") for c in counters)
        if name in ("thread4", "process4"):
            assert any(c.startswith("parallel_") for c in counters)
            assert "task" in progress_kinds
