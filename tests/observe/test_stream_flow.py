"""Flow-level streaming contracts: replay identity and profile purity.

Three promises from ``docs/observability.md`` are proven on a real
gate circuit (S9234 at the regression-gate scale):

* a streamed run's NDJSON events replay into a :class:`RunTrace`
  byte-identical to the trace the run itself froze — serial and under
  ``workers=4`` (the executor fans progress events in on the calling
  thread, so the stream stays canonically ordered);
* ``profile="off"`` leaves the trace byte-compatible with the
  committed (pre-profiling) baselines — zero-cost means *invisible*;
* ``profile="counters"`` adds only ``perf_*`` counters: stripping
  them (and the tracer's ``stream_*`` bookkeeping) recovers the
  off-mode trace exactly.
"""

import json
import pathlib

import pytest

from repro.benchmarks_gen import mcnc_design
from repro.config import RouterConfig
from repro.api import StitchAwareRouter
from repro.observe import StreamingTracer, read_stream

CIRCUIT, SCALE = "S9234", 0.02
BASELINE = (
    pathlib.Path(__file__).parents[2]
    / "benchmarks"
    / "baselines"
    / f"BENCH_{CIRCUIT}.json"
)


def route(workers=1, profile="off", engine="auto", tracer=None):
    design = mcnc_design(CIRCUIT, SCALE)
    config = RouterConfig(workers=workers, profile=profile, engine=engine)
    return StitchAwareRouter(config=config).route(design, tracer=tracer)


def strip_instrumentation(counters):
    return {
        k: v
        for k, v in counters.items()
        if not k.startswith(("perf_", "stream_"))
    }


class TestReplayIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_streamed_run_replays_byte_identical(self, tmp_path, workers):
        path = tmp_path / "run.ndjson"
        flow = route(
            workers=workers,
            profile="full",
            tracer=StreamingTracer(path),
        )
        assert flow.trace is not None
        assert read_stream(path).to_json() == flow.trace.to_json()

    def test_parallel_stream_carries_task_progress(self, tmp_path):
        path = tmp_path / "run.ndjson"
        route(workers=4, profile="full", tracer=StreamingTracer(path))
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        tasks = [
            e for e in events
            if e["ev"] == "progress" and e["kind"] == "task"
        ]
        nets = [
            e for e in events
            if e["ev"] == "progress" and e["kind"] == "net"
        ]
        assert tasks and nets
        # Canonical fan-in: per-stage task indices are strictly
        # increasing — worker scheduling never reorders the stream.
        for stage in {t["stage"] for t in tasks}:
            indices = [t["index"] for t in tasks if t["stage"] == stage]
            assert indices == sorted(indices)


class TestProfileOffIsInvisible:
    def test_off_matches_committed_baseline_counters(self):
        flow = route(profile="off", engine="object")
        assert flow.trace is not None
        baseline = json.loads(BASELINE.read_text())["stitch-aware"]
        fresh = flow.trace.to_dict()
        # Timestamps are machine-bound; the deterministic shape (span
        # tree, counters, gauges, meta) must match byte for byte.
        def deterministic(doc):
            def scrub(span):
                span = dict(span)
                span.pop("wall_seconds", None)
                span.pop("cpu_seconds", None)
                span.pop("started_at", None)
                span["children"] = [
                    scrub(c) for c in span.get("children", ())
                ]
                return span

            return {
                "router": doc["router"],
                "design": doc["design"],
                "counters": doc["counters"],
                "meta": doc.get("meta", {}),
                "spans": [scrub(s) for s in doc["spans"]],
            }

        assert deterministic(fresh) == deterministic(baseline)

    def test_off_records_no_perf_counters(self):
        flow = route(profile="off")
        assert flow.trace is not None
        agg = flow.trace.aggregate_counters()
        assert not [k for k in agg if k.startswith("perf_")]
        assert "profile" not in flow.trace.meta


class TestCountersModeIsPure:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_stripping_recovers_off_mode(self, workers):
        off = route(workers=workers, profile="off")
        counters = route(workers=workers, profile="counters")
        assert off.trace is not None and counters.trace is not None
        assert strip_instrumentation(
            counters.trace.aggregate_counters()
        ) == off.trace.aggregate_counters()

    def test_counters_mode_actually_counts(self):
        flow = route(profile="counters")
        assert flow.trace is not None
        agg = flow.trace.aggregate_counters()
        assert agg.get("perf_heap_pushes", 0) > 0
        assert agg.get("perf_heap_pops", 0) > 0
        assert agg.get("perf_maze_heap_pops", 0) > 0
        assert flow.trace.meta["profile"] == "counters"

    def test_overlay_counters_in_parallel_runs(self):
        # Overlay commits only exist where overlays do: pooled batches.
        flow = route(workers=4, profile="counters")
        assert flow.trace is not None
        agg = flow.trace.aggregate_counters()
        assert agg.get("perf_overlay_commits", 0) > 0
        assert agg.get("perf_overlay_read_nodes", 0) > 0

    def test_engines_agree_on_perf_counters(self):
        pytest.importorskip("numpy")
        obj = route(profile="counters", engine="object")
        arr = route(profile="counters", engine="array")
        assert obj.trace is not None and arr.trace is not None
        obj_agg = obj.trace.aggregate_counters()
        arr_agg = arr.trace.aggregate_counters()
        # The derived heap-push accounting must line up with the
        # reference loop's explicit counts: identical expansions imply
        # identical heap traffic.
        for name in ("perf_maze_heap_pushes", "perf_maze_heap_pops"):
            assert obj_agg[name] == arr_agg[name]
