"""End-to-end traces from the routing flows on a tiny MCNC instance."""

import pytest

from repro.benchmarks_gen import mcnc_design
from repro.api import BaselineRouter, StitchAwareRouter
from repro.observe import RunTrace, Tracer

STAGES = ("global-route", "layer-assign", "track-assign", "detailed-route")


@pytest.fixture(scope="module")
def design():
    return mcnc_design("S9234", 0.02)


@pytest.fixture(scope="module")
def aware_trace(design) -> RunTrace:
    return StitchAwareRouter().route(design).trace


@pytest.fixture(scope="module")
def baseline_trace(design) -> RunTrace:
    return BaselineRouter().route(design).trace


class TestFlowTrace:
    def test_trace_attached_to_result_and_report(self, design):
        flow = StitchAwareRouter().route(design)
        assert flow.trace is not None
        assert flow.report.trace is flow.trace

    def test_all_stage_spans_present(self, aware_trace):
        for stage in STAGES:
            span = aware_trace.find(stage)
            assert span is not None, f"missing span {stage!r}"
            assert span.wall_seconds > 0.0

    def test_framework_spans_wrap_stages(self, aware_trace):
        top = [s.name for s in aware_trace.spans]
        assert top == ["levelize", "pass1", "assign", "pass2"]
        pass1 = aware_trace.spans[top.index("pass1")]
        assert pass1.find("global-route") is not None
        pass2 = aware_trace.spans[top.index("pass2")]
        assert pass2.find("detailed-route") is not None

    def test_expansion_counters_nonzero(self, aware_trace):
        agg = aware_trace.aggregate_counters()
        assert agg.get("maze_expansions", 0) > 0
        assert agg.get("astar_expansions", 0) > 0
        assert agg.get("stitch_cost_evaluations", 0) > 0

    def test_at_least_three_distinct_counters(self, aware_trace):
        assert len(aware_trace.aggregate_counters()) >= 3

    def test_trace_labels(self, aware_trace, design):
        assert aware_trace.router == "StitchAwareRouter"
        assert aware_trace.design == design.name
        assert aware_trace.meta["coloring"] == "flow"
        assert aware_trace.wall_seconds > 0.0

    def test_layer_assignment_metrics(self, aware_trace):
        agg = aware_trace.aggregate_counters()
        assert agg.get("panels", 0) > 0
        assert agg.get("conflict_vertices", 0) > 0

    def test_baseline_same_schema(self, aware_trace, baseline_trace):
        assert baseline_trace.router == "BaselineRouter"
        assert [s.name for s in baseline_trace.spans] == [
            s.name for s in aware_trace.spans
        ]
        for stage in STAGES:
            assert baseline_trace.find(stage) is not None
        # Diffable: both serialize under the same format/version tag.
        a, b = aware_trace.to_dict(), baseline_trace.to_dict()
        assert a["format"] == b["format"]
        assert a["version"] == b["version"]

    def test_explicit_tracer_is_used(self, design):
        tracer = Tracer()
        flow = StitchAwareRouter().route(design, tracer=tracer)
        assert [s.name for s in flow.trace.spans] == [
            s.name for s in tracer.spans
        ]

    def test_trace_json_round_trip(self, aware_trace):
        rebuilt = RunTrace.from_json(aware_trace.to_json())
        assert rebuilt.to_dict() == aware_trace.to_dict()
