"""Unit tests for the tracing/metrics subsystem."""

import time

import pytest

from repro.observe import (
    TRACE_FORMAT,
    TRACE_VERSION,
    RunTrace,
    Span,
    Tracer,
    ensure,
)


class TestSpans:
    def test_nesting_structure(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"), tracer.span("leaf"):
                pass
        trace = tracer.finish()
        assert [s.name for s in trace.spans] == ["outer"]
        outer = trace.spans[0]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert [s.name for s in trace.walk()] == [
            "outer", "inner-a", "inner-b", "leaf",
        ]
        assert trace.find("leaf") is not None
        assert trace.find("nope") is None

    def test_timing_monotonicity(self):
        tracer = Tracer()
        with tracer.span("outer"), tracer.span("inner"):
            time.sleep(0.01)
        trace = tracer.finish()
        outer = trace.spans[0]
        inner = outer.children[0]
        assert inner.wall_seconds >= 0.01
        assert outer.wall_seconds >= inner.wall_seconds
        assert trace.wall_seconds >= outer.wall_seconds
        assert inner.started_at >= outer.started_at
        assert outer.cpu_seconds >= 0.0

    def test_current_and_open_span_guard(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("a") as span:
            assert tracer.current is span
            with pytest.raises(RuntimeError, match="open span"):
                tracer.finish()
        assert tracer.current is None
        tracer.finish()  # now fine

    def test_span_kwargs_become_gauges(self):
        tracer = Tracer()
        with tracer.span("round", round=3, queued=17):
            pass
        trace = tracer.finish()
        assert trace.spans[0].gauges == {"round": 3, "queued": 17}


class TestCounters:
    def test_counts_attach_to_innermost_span(self):
        tracer = Tracer()
        tracer.count("orphan", 2)
        with tracer.span("outer"):
            tracer.count("hits")
            with tracer.span("inner"):
                tracer.count("hits", 5)
            tracer.count("hits", 3)
        trace = tracer.finish()
        outer = trace.spans[0]
        assert outer.counters["hits"] == 4
        assert outer.children[0].counters["hits"] == 5
        assert trace.counters == {"orphan": 2}

    def test_aggregate_counters_sums_spans_and_orphans(self):
        tracer = Tracer()
        tracer.count("x", 1)
        with tracer.span("a"):
            tracer.count("x", 10)
            with tracer.span("b"):
                tracer.count("x", 100)
                tracer.count("y", 7)
        trace = tracer.finish()
        assert trace.aggregate_counters() == {"x": 111, "y": 7}

    def test_gauges_overwrite(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.gauge("overflow", 12)
            tracer.gauge("overflow", 3)
        trace = tracer.finish()
        assert trace.spans[0].gauges["overflow"] == 3

    def test_stage_wall_seconds_sums_repeats(self):
        tracer = Tracer()
        with tracer.span("round"):
            pass
        with tracer.span("round"):
            pass
        trace = tracer.finish()
        assert set(trace.stage_wall_seconds()) == {"round"}


class TestSerialization:
    def _sample_trace(self) -> RunTrace:
        tracer = Tracer()
        tracer.count("orphan", 2)
        with tracer.span("stage", size=4):
            tracer.count("events", 9)
            with tracer.span("child"):
                tracer.gauge("depth", 1.5)
        return tracer.finish(
            router="StitchAwareRouter",
            design="toy",
            meta={"scale": 0.02},
        )

    def test_json_round_trip(self):
        trace = self._sample_trace()
        rebuilt = RunTrace.from_json(trace.to_json())
        assert rebuilt.to_dict() == trace.to_dict()
        assert rebuilt.router == "StitchAwareRouter"
        assert rebuilt.design == "toy"
        assert rebuilt.meta == {"scale": 0.02}
        assert rebuilt.find("child").gauges == {"depth": 1.5}

    def test_save_load(self, tmp_path):
        trace = self._sample_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        assert RunTrace.load(path).to_dict() == trace.to_dict()

    def test_format_tag(self):
        data = self._sample_trace().to_dict()
        assert data["format"] == TRACE_FORMAT
        assert data["version"] == TRACE_VERSION

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a trace"):
            RunTrace.from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self):
        data = self._sample_trace().to_dict()
        data["version"] = TRACE_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            RunTrace.from_dict(data)

    def test_span_round_trip_drops_nothing(self):
        span = Span(name="s", counters={"a": 1}, gauges={"g": 2.0})
        span.children.append(Span(name="c"))
        assert Span.from_dict(span.to_dict()).to_dict() == span.to_dict()


def test_ensure_passthrough_and_fresh():
    tracer = Tracer()
    assert ensure(tracer) is tracer
    fresh = ensure(None)
    assert isinstance(fresh, Tracer)
    assert fresh is not tracer
