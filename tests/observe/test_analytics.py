"""Trace analytics: rollups, diffing, hotspots, loading, rendering."""

import copy
import gzip
import json
import pathlib

import pytest

from repro.observe import (
    DiffThresholds,
    RunTrace,
    Span,
    StreamingTracer,
    TraceSummary,
    Tracer,
    collect_perf_history,
    diff_traces,
    hotspots,
    load_trace_file,
    render_diff,
    render_hotspots,
    render_perf_history,
    render_summary,
)

FIXTURE = pathlib.Path(__file__).parent / "data" / "trace_v1.json"


def make_trace(
    maze: int = 100, ripup: int = 3, detail_wall: float = 1.0
) -> RunTrace:
    """A hand-built two-pass trace with tunable knobs."""
    detail = Span(
        "detailed-route",
        wall_seconds=detail_wall,
        cpu_seconds=detail_wall,
        counters={"astar_expansions": 555, "ripup_rounds": ripup},
    )
    trace = RunTrace(
        router="StitchAwareRouter",
        design="toy",
        wall_seconds=1.5 + detail_wall,
        cpu_seconds=1.4 + detail_wall,
        spans=[
            Span(
                "pass1",
                wall_seconds=1.5,
                cpu_seconds=1.4,
                children=[
                    Span(
                        "global-route",
                        wall_seconds=1.4,
                        cpu_seconds=1.3,
                        counters={"maze_expansions": maze},
                    )
                ],
            ),
            Span(
                "pass2",
                wall_seconds=detail_wall + 0.01,
                cpu_seconds=detail_wall,
                children=[detail],
            ),
        ],
        counters={"orphans": 1},
    )
    return trace


class TestSummary:
    def test_rolls_up_by_name(self):
        trace = make_trace()
        summary = TraceSummary.from_trace(trace)
        assert summary.design == "toy"
        assert set(summary.stages) == {
            "pass1", "global-route", "pass2", "detailed-route",
        }
        assert summary.stages["global-route"].counters == {
            "maze_expansions": 100
        }
        assert summary.counters["orphans"] == 1

    def test_repeated_spans_merge(self):
        tracer = Tracer()
        for round_no in range(3):
            with tracer.span("round", round=round_no) as span:
                span.count("work", 10)
        summary = TraceSummary.from_trace(tracer.finish())
        assert summary.stages["round"].spans == 3
        assert summary.stages["round"].counters == {"work": 30}
        assert summary.stages["round"].gauges == {"round": 2}

    def test_render_plain_and_markdown(self):
        summary = TraceSummary.from_trace(make_trace())
        plain = render_summary(summary)
        assert "global-route" in plain and "maze_expansions=100" in plain
        md = render_summary(summary, fmt="markdown")
        assert md.count("|") > 10 and "detailed-route" in md

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            render_summary(TraceSummary.from_trace(make_trace()), fmt="html")


class TestDiff:
    def test_identical_traces_diff_empty(self):
        old, new = make_trace(), make_trace()
        diff = diff_traces(old, new)
        assert diff.ok
        assert diff.counter_deltas == []
        assert diff.wall_regressions == []
        assert diff.regressions() == []

    def test_schema_roundtrip_then_diff_empty(self):
        trace = make_trace()
        reloaded = RunTrace.from_json(trace.to_json())
        assert diff_traces(trace, reloaded).ok

    def test_counter_bump_detected(self):
        diff = diff_traces(make_trace(maze=100), make_trace(maze=101))
        assert not diff.ok
        (delta,) = diff.counter_deltas
        assert delta.name == "maze_expansions"
        assert (delta.old, delta.new, delta.delta) == (100, 101, 1)
        assert "maze_expansions" in diff.regressions()[0]

    def test_counter_drop_is_also_drift(self):
        diff = diff_traces(make_trace(ripup=3), make_trace(ripup=2))
        assert not diff.ok

    def test_slow_span_detected(self):
        diff = diff_traces(
            make_trace(detail_wall=1.0), make_trace(detail_wall=2.0)
        )
        assert not diff.ok
        regressed = {t.stage for t in diff.wall_regressions}
        assert "detailed-route" in regressed

    def test_slowdown_within_tolerance_passes(self):
        diff = diff_traces(
            make_trace(detail_wall=1.0), make_trace(detail_wall=1.1)
        )
        assert diff.ok

    def test_min_wall_floor_skips_noise(self):
        # 3x slower but both sides under the floor: not compared.
        diff = diff_traces(
            make_trace(detail_wall=0.01),
            make_trace(detail_wall=0.03),
            DiffThresholds(min_wall_seconds=0.1),
        )
        assert "detailed-route" not in {t.stage for t in diff.timing_deltas}

    def test_no_wall_mode_ignores_any_slowdown(self):
        diff = diff_traces(
            make_trace(detail_wall=1.0),
            make_trace(detail_wall=50.0),
            DiffThresholds(include_wall=False),
        )
        assert diff.ok
        assert diff.timing_deltas == []

    def test_render_diff(self):
        diff = diff_traces(make_trace(maze=100), make_trace(maze=150))
        text = render_diff(diff)
        assert "maze_expansions" in text and "REGRESSION" in text
        assert "| --- |" in render_diff(diff, fmt="markdown")

    def test_render_empty_diff(self):
        text = render_diff(
            diff_traces(
                make_trace(), make_trace(), DiffThresholds(include_wall=False)
            )
        )
        assert "no differences" in text


class TestHotspots:
    def test_self_time_ranks_leaf_above_parent(self):
        trace = make_trace(detail_wall=2.0)
        spots = hotspots(trace, n=10)
        paths = [s.path for s in spots]
        # pass2 wraps detailed-route with ~0.01s of own work; the leaf
        # carries the real time and must rank first.
        assert paths[0] == "pass2/detailed-route"
        leaf = spots[0]
        assert leaf.self_wall_seconds == pytest.approx(2.0)
        parent = next(s for s in spots if s.path == "pass2")
        assert parent.self_wall_seconds == pytest.approx(0.01)

    def test_repeated_paths_merge_and_n_limits(self):
        tracer = Tracer()
        with tracer.span("stage"):
            for _ in range(4):
                with tracer.span("round"):
                    pass
        trace = tracer.finish()
        spots = hotspots(trace, n=1)
        assert len(spots) == 1
        merged = hotspots(trace, n=10)
        round_spot = next(s for s in merged if s.path == "stage/round")
        assert round_spot.spans == 4
        assert "self_s" in render_hotspots(merged)


class TestCompatFixture:
    """A checked-in v1 document must stay loadable forever."""

    def test_from_dict_v1_fixture(self):
        trace = RunTrace.load(FIXTURE)
        assert trace.router == "StitchAwareRouter"
        assert trace.design == "FixtureCircuit"
        assert trace.counters == {"orphan_events": 2}
        assert trace.meta["coloring"] == "flow"
        round_span = trace.find("negotiation-round")
        assert round_span is not None
        assert round_span.gauges == {"round": 1, "edge_overflow": 7}
        agg = trace.aggregate_counters()
        assert agg["maze_expansions"] == 1234
        assert agg["astar_expansions"] == 5678

    def test_v1_fixture_roundtrips_losslessly(self):
        data = json.loads(FIXTURE.read_text())
        assert RunTrace.from_dict(data).to_dict() == data

    def test_unknown_version_rejected(self):
        data = json.loads(FIXTURE.read_text())
        data["version"] = 999
        with pytest.raises(ValueError):
            RunTrace.from_dict(data)


class TestLoadTraceFile:
    def test_bare_trace(self, tmp_path):
        path = tmp_path / "t.json"
        make_trace().save(path)
        assert load_trace_file(path).design == "toy"

    def test_report_with_embedded_trace(self, tmp_path):
        report_doc = {
            "format": "repro-report",
            "trace": json.loads(make_trace().to_json()),
        }
        path = tmp_path / "r.json"
        path.write_text(json.dumps(report_doc))
        assert load_trace_file(path).design == "toy"
        del report_doc["trace"]
        path.write_text(json.dumps(report_doc))
        with pytest.raises(ValueError, match="no embedded trace"):
            load_trace_file(path)

    def test_bench_document_needs_key_when_ambiguous(self, tmp_path):
        doc = {
            "baseline": make_trace().to_dict(),
            "stitch-aware": make_trace(maze=7).to_dict(),
        }
        path = tmp_path / "BENCH_toy.json"
        path.write_text(json.dumps(doc))
        trace = load_trace_file(path, key="stitch-aware")
        assert trace.aggregate_counters()["maze_expansions"] == 7
        with pytest.raises(ValueError, match="pick one"):
            load_trace_file(path)
        with pytest.raises(ValueError, match="no trace"):
            load_trace_file(path, key="bogus")
        single = copy.deepcopy(doc)
        del single["baseline"]
        path.write_text(json.dumps(single))
        assert load_trace_file(path).design == "toy"

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a trace"):
            load_trace_file(path)

    def test_gzip_compressed_trace(self, tmp_path):
        path = tmp_path / "t.json.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(make_trace().to_json())
        assert load_trace_file(path).design == "toy"

    def test_gzip_compressed_bench_document(self, tmp_path):
        doc = {"stitch-aware": make_trace(maze=7).to_dict()}
        path = tmp_path / "BENCH_toy.json.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(json.dumps(doc))
        trace = load_trace_file(path, key="stitch-aware")
        assert trace.aggregate_counters()["maze_expansions"] == 7

    @pytest.mark.parametrize("name", ["run.ndjson", "run.ndjson.gz"])
    def test_event_stream_files(self, tmp_path, name):
        path = tmp_path / name
        tracer = StreamingTracer(path)
        with tracer.span("pass1") as span:
            span.count("maze_expansions", 5)
        streamed = tracer.finish(router="R", design="streamed-toy")
        loaded = load_trace_file(path)
        assert loaded.design == "streamed-toy"
        assert loaded.to_json() == streamed.to_json()


def write_artifacts(root, make_trace_fn=None):
    """A small artifact directory in the committed schemas."""
    make = make_trace_fn or make_trace
    bench = {
        "baseline": make(maze=200).to_dict(),
        "stitch-aware": make(maze=100).to_dict(),
    }
    (root / "BENCH_S9234.json").write_text(json.dumps(bench))
    (root / "SPEEDUP_ENGINE_S9234.json").write_text(
        json.dumps(
            {
                "circuit": "S9234",
                "scale": 0.2,
                "scale_multiplier": 10.0,
                "object_wall_seconds": 2.0,
                "array_wall_seconds": 1.0,
                "repeats": 3,
                "speedup": 2.0,
            }
        )
    )
    (root / "SPEEDUP_S9234.json").write_text(
        json.dumps(
            {
                "stitch-aware": {
                    "serial_wall_seconds": 1.0,
                    "parallel_wall_seconds": 0.5,
                    "workers": 4,
                    "engine": "object",
                    "speedup": 2.0,
                }
            }
        )
    )


class TestPerfHistory:
    def test_collects_all_three_artifact_kinds(self, tmp_path):
        write_artifacts(tmp_path)
        history = collect_perf_history(tmp_path)
        assert not history.empty
        assert {r["router"] for r in history.bench_rows} == {
            "baseline", "stitch-aware",
        }
        aware = next(
            r for r in history.bench_rows if r["router"] == "stitch-aware"
        )
        assert aware["maze_expansions"] == 100
        assert aware["detail_s"] == 1.0
        (engine_row,) = history.engine_rows
        assert engine_row["speedup"] == 2.0
        (workers_row,) = history.workers_rows
        assert workers_row["workers"] == 4

    def test_unparseable_and_unrelated_json_skipped(self, tmp_path):
        write_artifacts(tmp_path)
        (tmp_path / "BENCH_garbage.json").write_text('{"x": 1}')
        (tmp_path / "SPEEDUP_ENGINE_bad.json").write_text("[]")
        (tmp_path / "SPEEDUP_bad.json").write_text('{"label": {}}')
        (tmp_path / "unrelated.json").write_text("{}")
        history = collect_perf_history(tmp_path)
        assert {r["circuit"] for r in history.bench_rows} == {"S9234"}
        assert len(history.engine_rows) == 1
        assert len(history.workers_rows) == 1

    def test_empty_directory_reports_empty(self, tmp_path):
        history = collect_perf_history(tmp_path)
        assert history.empty
        assert "no benchmark artifacts" in render_perf_history(history)

    def test_render_plain_and_markdown(self, tmp_path):
        write_artifacts(tmp_path)
        history = collect_perf_history(tmp_path)
        plain = render_perf_history(history)
        assert "benchmark snapshots" in plain
        assert "engine speedups" in plain
        assert "workers speedups" in plain
        md = render_perf_history(history, fmt="markdown")
        assert md.count("|") > 20

    def test_committed_repo_artifacts_ingest(self):
        """The real committed artifacts must parse, forever."""
        root = pathlib.Path(__file__).parents[2]
        history = collect_perf_history(root)
        circuits = {r["circuit"] for r in history.bench_rows}
        assert {"S9234", "S5378", "S13207"} <= circuits
        assert history.engine_rows  # committed SPEEDUP_ENGINE_*.json
