"""The structured-logging bridge mirrors tracer events into logging."""

import io
import logging

import pytest

from repro.observe import (
    TRACE_LOGGER_NAME,
    LoggingTracer,
    configure_logging,
)


@pytest.fixture(autouse=True)
def clean_logger():
    """Isolate each test's handlers/levels on the bridge logger."""
    logger = logging.getLogger(TRACE_LOGGER_NAME)
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield logger
    logger.handlers, logger.level, logger.propagate = saved


class TestLoggingTracer:
    def test_is_a_drop_in_tracer(self):
        tracer = LoggingTracer()
        with tracer.span("pass1") as span:
            tracer.count("events", 5)
            span.gauge("x", 1)
        trace = tracer.finish(router="R", design="d")
        assert trace.find("pass1").counters == {"events": 5}
        assert trace.find("pass1").gauges == {"x": 1}

    def test_span_close_logged_with_path_and_counters(self, caplog):
        with caplog.at_level(logging.INFO, logger=TRACE_LOGGER_NAME):
            tracer = LoggingTracer()
            with tracer.span("pass1"), tracer.span("global-route") as span:
                span.count("maze_expansions", 42)
        messages = [r.getMessage() for r in caplog.records]
        assert any(
            "pass1/global-route" in m and "maze_expansions=42" in m
            for m in messages
        )
        names = {r.name for r in caplog.records}
        assert f"{TRACE_LOGGER_NAME}.global-route" in names

    def test_round_spans_log_at_info_despite_depth(self, caplog):
        with caplog.at_level(logging.INFO, logger=TRACE_LOGGER_NAME):
            tracer = LoggingTracer()
            with tracer.span("pass1"), tracer.span("global-route"), \
                    tracer.span("negotiation-round", round=2):
                pass
        round_records = [
            r for r in caplog.records if "negotiation-round" in r.name
        ]
        assert round_records and all(
            r.levelno == logging.INFO for r in round_records
        )
        assert any("round=2" in r.getMessage() for r in round_records)

    def test_deep_spans_and_flushes_only_at_debug(self, caplog):
        tracer = LoggingTracer()
        with caplog.at_level(logging.INFO, logger=TRACE_LOGGER_NAME), \
                tracer.span("pass1"), tracer.span("stage"), \
                tracer.span("inner-detail"):
            tracer.count("bulk", 100)
        info_msgs = [r for r in caplog.records if "inner-detail" in r.name]
        assert not info_msgs
        caplog.clear()
        with caplog.at_level(logging.DEBUG, logger=TRACE_LOGGER_NAME), \
                tracer.span("pass2"), tracer.span("stage"), \
                tracer.span("inner-detail"):
            tracer.count("bulk", 100)
        messages = [r.getMessage() for r in caplog.records]
        assert any("open" in m and "inner-detail" in m for m in messages)
        assert any("bulk += 100" in m for m in messages)


class TestConfigureLogging:
    def test_zero_verbosity_is_noop(self, clean_logger):
        before = list(clean_logger.handlers)
        assert configure_logging(0) is None
        assert clean_logger.handlers == before

    def test_verbosity_levels(self, clean_logger):
        handler = configure_logging(1, stream=io.StringIO())
        assert handler in clean_logger.handlers
        assert clean_logger.level == logging.INFO
        configure_logging(2, stream=io.StringIO())
        assert clean_logger.level == logging.DEBUG

    def test_reconfigure_does_not_stack_handlers(self, clean_logger):
        base = len(logging.getLogger(TRACE_LOGGER_NAME).handlers)
        configure_logging(1, stream=io.StringIO())
        configure_logging(2, stream=io.StringIO())
        from repro.observe.log import _installed_handlers

        ours = [h for h in clean_logger.handlers if h in _installed_handlers]
        assert len(ours) == 1
        assert len(clean_logger.handlers) == base + 1

    def test_messages_reach_the_stream(self, clean_logger):
        buf = io.StringIO()
        configure_logging(1, stream=buf)
        tracer = LoggingTracer()
        with tracer.span("pass1"):
            pass
        out = buf.getvalue()
        assert "pass1" in out and "wall=" in out
