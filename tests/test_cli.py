"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import _profile_path, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route", "S5378"])
        assert args.circuit == "S5378"
        assert args.scale == 0.05
        assert not args.baseline

    def test_verbose_flag_counts(self):
        assert build_parser().parse_args(["circuits"]).verbose == 0
        args = build_parser().parse_args(["-vv", "circuits"])
        assert args.verbose == 2

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_perf_flag_defaults_off_and_validates(self):
        assert build_parser().parse_args(["route", "S5378"]).perf == "off"
        args = build_parser().parse_args(
            ["route", "S5378", "--perf", "counters"]
        )
        assert args.perf == "counters"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "S5378", "--perf", "loud"])

    def test_watch_and_perf_history_parse(self):
        args = build_parser().parse_args(
            ["watch", "run.ndjson", "--no-follow", "--timeout", "5"]
        )
        assert args.stream == "run.ndjson"
        assert args.no_follow and args.timeout == 5.0
        args = build_parser().parse_args(["perf-history", "--markdown"])
        assert args.dir == "." and args.markdown


class TestProfilePath:
    """compare --profile splices the label before the extension."""

    def test_json_suffix_spliced(self):
        assert _profile_path("foo.json", "baseline") == "foo_baseline.json"
        assert (
            _profile_path("out/foo.json", "stitch-aware")
            == "out/foo_stitch-aware.json"
        )

    def test_bare_prefix_gets_extension(self):
        assert _profile_path("trace", "baseline") == "trace_baseline.json"

    def test_non_json_suffix_kept_in_stem(self):
        # A dotted prefix that is not .json is part of the name.
        assert _profile_path("v1.2", "baseline") == "v1.2_baseline.json"


class TestCommands:
    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "S38417" in out and "RISC1" in out

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["route", "bogus"])

    def test_route_small(self, capsys, tmp_path):
        svg = tmp_path / "out.svg"
        report = tmp_path / "report.json"
        snapshot = tmp_path / "design.json"
        code = main([
            "route", "S9234", "--scale", "0.02",
            "--svg", str(svg), "--report", str(report),
            "--save-design", str(snapshot),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S9234" in out and "rout_pct" in out
        assert svg.read_text().startswith("<svg")
        assert report.exists() and snapshot.exists()

    def test_route_baseline_flag(self, capsys):
        assert main(["route", "S9234", "--scale", "0.02", "--baseline"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "S9234", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "stitch-aware" in out and "baseline" in out

    def test_compare_profile_writes_unmangled_names(self, capsys, tmp_path):
        prefix = tmp_path / "foo.json"
        assert main([
            "compare", "S9234", "--scale", "0.02", "--profile", str(prefix),
        ]) == 0
        capsys.readouterr()
        assert (tmp_path / "foo_baseline.json").exists()
        assert (tmp_path / "foo_stitch-aware.json").exists()
        assert not (tmp_path / "foo.json_baseline.json").exists()

    def test_diag_histogram_totals_match_report(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main([
            "diag", "S9234", "--scale", "0.02", "--baseline",
            "--report", str(report_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "violations per stitching line" in out
        doc = json.loads(report_path.read_text())
        hist_vv = sum(
            kinds["via"] for kinds in doc["stitch_histogram"].values()
        )
        hist_sp = sum(
            kinds["short-polygon"]
            for kinds in doc["stitch_histogram"].values()
        )
        assert hist_vv == doc["via_violations"]
        assert hist_sp == doc["short_polygons"]

    def test_verbose_route_streams_progress(self, capsys):
        import logging

        from repro.observe import TRACE_LOGGER_NAME

        logger = logging.getLogger(TRACE_LOGGER_NAME)
        saved = (list(logger.handlers), logger.level, logger.propagate)
        try:
            assert main(["-v", "route", "S9234", "--scale", "0.02"]) == 0
            err = capsys.readouterr().err
            assert "repro.trace" in err and "wall=" in err
        finally:
            logger.handlers, logger.level, logger.propagate = saved


class TestTraceCommands:
    @pytest.fixture()
    def traces(self, tmp_path, capsys):
        prefix = tmp_path / "t.json"
        main(["compare", "S9234", "--scale", "0.02", "--profile", str(prefix)])
        capsys.readouterr()
        return (
            tmp_path / "t_baseline.json",
            tmp_path / "t_stitch-aware.json",
        )

    def test_show(self, traces, capsys):
        base, _aware = traces
        assert main(["trace", "show", str(base)]) == 0
        out = capsys.readouterr().out
        assert "detailed-route" in out and "BaselineRouter" in out

    def test_top(self, traces, capsys):
        base, _aware = traces
        assert main(["trace", "top", str(base), "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "hotspots" in out
        assert len(out.strip().splitlines()) <= 3 + 3  # title + header rows

    def test_diff_identical_exits_zero(self, traces, capsys):
        base, _aware = traces
        assert main(["trace", "diff", str(base), str(base)]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_diff_counter_regression_exits_nonzero(
        self, traces, capsys, tmp_path
    ):
        base, _aware = traces
        doc = json.loads(base.read_text())

        def bump(spans):
            for span in spans:
                for name in span.get("counters", {}):
                    span["counters"][name] += 10
                    return True
                if bump(span.get("children", [])):
                    return True
            return False

        assert bump(doc["spans"])
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(doc))
        assert main(["trace", "diff", str(base), str(tampered)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_diff_across_routers_detects_drift(self, traces, capsys):
        base, aware = traces
        assert main([
            "trace", "diff", str(base), str(aware), "--no-wall",
        ]) == 1
        assert "counter" in capsys.readouterr().out

    def test_markdown_rendering(self, traces, capsys):
        base, _aware = traces
        assert main(["trace", "show", str(base), "--markdown"]) == 0
        assert "| --- |" in capsys.readouterr().out


class TestStreamingCommands:
    def test_route_stream_then_watch_then_trace_show(self, capsys, tmp_path):
        stream = tmp_path / "run.ndjson"
        assert main([
            "route", "S9234", "--scale", "0.02",
            "--perf", "full", "--stream", str(stream),
        ]) == 0
        capsys.readouterr()
        assert stream.exists()
        assert main(["watch", str(stream), "--no-follow"]) == 0
        out = capsys.readouterr().out
        assert "watching stream" in out
        assert "finished: StitchAwareRouter on S9234" in out
        assert "hotspots" in out
        # The stream doubles as a trace file for the analytics commands.
        assert main(["trace", "show", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "detailed-route" in out and "perf_heap_pops" in out

    def test_watch_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["watch", str(tmp_path / "nope.ndjson")]) == 2
        assert "no such stream" in capsys.readouterr().err

    def test_watch_bad_stream_exits_2(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.ndjson"
        bogus.write_text('{"ev":"gauge","name":"x","value":1}\n')
        assert main(["watch", str(bogus), "--no-follow"]) == 2
        assert "repro watch:" in capsys.readouterr().err

    def test_perf_counters_route_prints_report(self, capsys):
        assert main([
            "route", "S9234", "--scale", "0.02", "--perf", "counters",
        ]) == 0
        assert "rout_pct" in capsys.readouterr().out

    def test_perf_history_on_repo_artifacts(self, capsys):
        root = pathlib.Path(__file__).parents[1]
        assert main(["perf-history", "--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "benchmark snapshots" in out
        assert "engine speedups" in out

    def test_perf_history_empty_dir_exits_1(self, capsys, tmp_path):
        assert main(["perf-history", "--dir", str(tmp_path)]) == 1
        assert "no benchmark artifacts" in capsys.readouterr().out
