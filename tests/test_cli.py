"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_route_defaults(self):
        args = build_parser().parse_args(["route", "S5378"])
        assert args.circuit == "S5378"
        assert args.scale == 0.05
        assert not args.baseline


class TestCommands:
    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "S38417" in out and "RISC1" in out

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["route", "bogus"])

    def test_route_small(self, capsys, tmp_path):
        svg = tmp_path / "out.svg"
        report = tmp_path / "report.json"
        snapshot = tmp_path / "design.json"
        code = main([
            "route", "S9234", "--scale", "0.02",
            "--svg", str(svg), "--report", str(report),
            "--save-design", str(snapshot),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "S9234" in out and "rout_pct" in out
        assert svg.read_text().startswith("<svg")
        assert report.exists() and snapshot.exists()

    def test_route_baseline_flag(self, capsys):
        assert main(["route", "S9234", "--scale", "0.02", "--baseline"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "S9234", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "stitch-aware" in out and "baseline" in out
