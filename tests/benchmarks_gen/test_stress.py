"""Tests for the Table IV congestion-stress benchmark variant."""

import pytest

from repro.benchmarks_gen import (
    MCNC_HARD_NAMES,
    mcnc_design,
    mcnc_stress_design,
)
from repro.globalroute import GlobalRouter


class TestStressDesign:
    def test_unknown_circuit_rejected(self):
        with pytest.raises(KeyError):
            mcnc_stress_design("nope")

    def test_same_net_count_as_plain(self):
        plain = mcnc_design("S13207", scale=0.05)
        stressed = mcnc_stress_design("S13207", scale=0.05)
        assert abs(stressed.num_nets - plain.num_nets) <= plain.num_nets * 0.05

    def test_deterministic(self):
        a = mcnc_stress_design("S5378", scale=0.05)
        b = mcnc_stress_design("S5378", scale=0.05)
        assert [p.location for n in a.netlist for p in n.pins] == [
            p.location for n in b.netlist for p in n.pins
        ]

    def test_line_end_demand_below_total_capacity(self):
        """Stress must be routable-around: demand < total capacity."""
        design = mcnc_stress_design("S38417", scale=0.05)
        result = GlobalRouter(stitch_aware=False).route(design)
        graph = result.graph
        assert (
            graph.vertex_demand.sum() < graph.vertex_capacity.sum()
        ), "over-capacity stress would make Table IV unreproducible"

    def test_stress_shows_reducible_overflow(self):
        """The Table IV mechanism on one mid-size circuit."""
        design = mcnc_stress_design("S13207", scale=0.1)
        without = GlobalRouter(stitch_aware=False).route(design)
        with_ends = GlobalRouter(stitch_aware=True).route(design)
        assert without.total_vertex_overflow > 0
        assert (
            with_ends.total_vertex_overflow
            <= without.total_vertex_overflow // 2
        )

    def test_all_hard_names_supported(self):
        for name in MCNC_HARD_NAMES:
            design = mcnc_stress_design(name, scale=0.02)
            assert design.num_nets > 0
