"""Tests for the synthetic benchmark generator and suite specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks_gen import (
    FARADAY_SPECS,
    MCNC_HARD_NAMES,
    MCNC_SPECS,
    SyntheticSpec,
    faraday_design,
    generate_design,
    mcnc_design,
    mcnc_suite,
)
from repro.config import RouterConfig

SMALL = SyntheticSpec(name="tiny", nets=60, pins=180, layers=3)


class TestGenerateDesign:
    def test_deterministic_per_name(self):
        d1 = generate_design(SMALL, scale=1.0)
        d2 = generate_design(SMALL, scale=1.0)
        assert [n.name for n in d1.netlist] == [n.name for n in d2.netlist]
        assert [
            p.location for n in d1.netlist for p in n.pins
        ] == [p.location for n in d2.netlist for p in n.pins]

    def test_distinct_across_names(self):
        other = SyntheticSpec(name="tiny2", nets=60, pins=180, layers=3)
        d1, d2 = generate_design(SMALL), generate_design(other)
        pins1 = [p.location for n in d1.netlist for p in n.pins]
        pins2 = [p.location for n in d2.netlist for p in n.pins]
        assert pins1 != pins2

    def test_net_and_pin_counts_close_to_spec(self):
        d = generate_design(SMALL)
        assert abs(d.num_nets - SMALL.nets) <= SMALL.nets * 0.05
        assert d.num_pins >= 2 * d.num_nets

    def test_scale_shrinks_nets_and_area(self):
        full = generate_design(SMALL, scale=1.0)
        half = generate_design(SMALL, scale=0.5)
        assert half.num_nets < full.num_nets
        assert half.width * half.height < full.width * full.height

    def test_density_preserved_under_scale(self):
        full = generate_design(SMALL, scale=1.0)
        half = generate_design(SMALL, scale=0.5)
        density_full = full.num_pins / (full.width * full.height)
        density_half = half.num_pins / (half.width * half.height)
        assert density_half == pytest.approx(density_full, rel=0.35)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_design(SMALL, scale=0.0)
        with pytest.raises(ValueError):
            generate_design(SMALL, scale=101.0)

    def test_oversize_scale_grows_the_instance(self):
        # Factors above 1 (up to 100) build the oversized workloads
        # the engine-speedup measurements need (docs/performance.md).
        full = generate_design(SMALL, scale=1.0)
        double = generate_design(SMALL, scale=2.0)
        assert double.num_nets > full.num_nets
        assert double.width * double.height > full.width * full.height

    def test_all_nets_have_two_distinct_locations(self):
        d = generate_design(SMALL)
        for net in d.netlist:
            assert len({p.location for p in net.pins}) >= 2

    def test_stitch_pin_fraction_honored(self):
        spec = SyntheticSpec(
            name="oniony", nets=400, pins=1600, layers=3,
            stitch_pin_fraction=0.15,
        )
        d = generate_design(spec)
        assert d.stitches is not None
        on_line = sum(
            1 for p in d.netlist.pins if d.stitches.is_on_line(p.location.x)
        )
        fraction = on_line / d.num_pins
        assert 0.10 <= fraction <= 0.20

    def test_low_stitch_pin_fraction(self):
        spec = SyntheticSpec(
            name="cleanly", nets=400, pins=1600, layers=3,
            stitch_pin_fraction=0.002,
        )
        d = generate_design(spec)
        on_line = sum(
            1 for p in d.netlist.pins if d.stitches.is_on_line(p.location.x)
        )
        assert on_line / d.num_pins <= 0.02

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.05, max_value=1.0))
    def test_any_scale_yields_valid_design(self, scale):
        d = generate_design(SMALL, scale=scale)
        assert d.num_nets >= 4
        for pin in d.netlist.pins:
            assert d.bounds.contains(pin.location)


class TestSuites:
    def test_mcnc_specs_match_table1(self):
        assert MCNC_SPECS["Struct"].nets == 1920
        assert MCNC_SPECS["Struct"].pins == 5471
        assert MCNC_SPECS["S38584"].nets == 14754
        assert all(s.layers == 3 for s in MCNC_SPECS.values())
        assert len(MCNC_SPECS) == 9

    def test_faraday_specs_match_table2(self):
        assert FARADAY_SPECS["DMA"].nets == 13256
        assert FARADAY_SPECS["RISC1"].pins == 196677
        assert all(s.layers == 6 for s in FARADAY_SPECS.values())
        assert len(FARADAY_SPECS) == 5

    def test_hard_names_subset(self):
        assert set(MCNC_HARD_NAMES) <= set(MCNC_SPECS)
        assert len(MCNC_HARD_NAMES) == 6

    def test_unknown_circuit_raises(self):
        with pytest.raises(KeyError):
            mcnc_design("nope")
        with pytest.raises(KeyError):
            faraday_design("nope")

    def test_small_scale_suite(self):
        suite = mcnc_suite(scale=0.02)
        assert len(suite) == 9
        names = [d.name for d in suite]
        assert names == list(MCNC_SPECS)

    def test_aspect_ratio_respected(self):
        d = mcnc_design("Primary2", scale=0.05)
        assert d.width / d.height == pytest.approx(10438 / 6488, rel=0.25)

    def test_config_propagates(self):
        config = RouterConfig(stitch_spacing=10, tile_size=10)
        d = mcnc_design("Struct", scale=0.02, config=config)
        gaps = {b - a for a, b in zip(d.stitches.xs, d.stitches.xs[1:])}
        assert gaps == {10}
