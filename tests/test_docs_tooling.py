"""The API reference generator stays runnable and in sync-ish."""

import pathlib
import subprocess
import sys

DOCS = pathlib.Path(__file__).parent.parent / "docs"


def test_generate_api_runs(tmp_path):
    script = DOCS / "generate_api.py"
    out = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        cwd=str(DOCS.parent),
    )
    assert out.returncode == 0, out.stderr
    api = (DOCS / "api.md").read_text()
    assert "# API reference" in api
    # A few load-bearing symbols must be documented.
    for symbol in (
        "StitchAwareRouter",
        "max_weight_k_colorable",
        "assign_tracks_ilp",
        "short_polygon_experiment",
    ):
        assert symbol in api, f"{symbol} missing from the API reference"
