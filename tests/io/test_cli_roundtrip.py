"""End-to-end: CLI snapshot -> reload -> identical re-route."""

import json

from repro.cli import main
from repro.api import StitchAwareRouter
from repro.io import load_design, load_report


def test_cli_snapshot_reroutes_identically(tmp_path, capsys):
    design_path = tmp_path / "design.json"
    report_path = tmp_path / "report.json"
    code = main([
        "route", "S9234", "--scale", "0.02",
        "--report", str(report_path),
        "--save-design", str(design_path),
    ])
    assert code == 0
    capsys.readouterr()

    design = load_design(design_path)
    saved_report = load_report(report_path)
    fresh = StitchAwareRouter().route(design).report
    assert fresh.short_polygons == saved_report.short_polygons
    assert fresh.routed_nets == saved_report.routed_nets
    assert fresh.wirelength == saved_report.wirelength
    # The files are valid JSON documents with format tags.
    assert json.loads(design_path.read_text())["format"] == "repro-design"
    assert json.loads(report_path.read_text())["format"] == "repro-report"
