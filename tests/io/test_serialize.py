"""Tests for JSON persistence of designs and reports."""

import json

import pytest

from repro.benchmarks_gen import SyntheticSpec, generate_design
from repro.api import StitchAwareRouter
from repro.io import (
    design_from_dict,
    design_to_dict,
    load_design,
    load_report,
    report_from_dict,
    report_to_dict,
    save_design,
    save_report,
)

SPEC = SyntheticSpec(name="io-t", nets=25, pins=60, layers=3)


@pytest.fixture(scope="module")
def design():
    return generate_design(SPEC)


@pytest.fixture(scope="module")
def report(design):
    return StitchAwareRouter().route(design).report


class TestDesignRoundtrip:
    def test_dict_roundtrip_preserves_structure(self, design):
        rebuilt = design_from_dict(design_to_dict(design))
        assert rebuilt.name == design.name
        assert (rebuilt.width, rebuilt.height) == (design.width, design.height)
        assert rebuilt.technology.num_layers == design.technology.num_layers
        assert rebuilt.stitches.xs == design.stitches.xs
        assert [n.name for n in rebuilt.netlist] == [
            n.name for n in design.netlist
        ]
        assert [
            (p.name, p.location, p.layer)
            for n in rebuilt.netlist
            for p in n.pins
        ] == [
            (p.name, p.location, p.layer)
            for n in design.netlist
            for p in n.pins
        ]

    def test_config_roundtrip(self, design):
        rebuilt = design_from_dict(design_to_dict(design))
        assert rebuilt.config == design.config

    def test_file_roundtrip(self, design, tmp_path):
        path = tmp_path / "design.json"
        save_design(design, path)
        rebuilt = load_design(path)
        assert rebuilt.num_nets == design.num_nets
        # The file is valid plain JSON.
        json.loads(path.read_text())

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            design_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, design):
        data = design_to_dict(design)
        data["version"] = 99
        with pytest.raises(ValueError):
            design_from_dict(data)

    def test_roundtrip_routes_identically(self, design):
        """A reloaded design routes to the same report."""
        rebuilt = design_from_dict(design_to_dict(design))
        a = StitchAwareRouter().route(design).report
        b = StitchAwareRouter().route(rebuilt).report
        assert a.short_polygons == b.short_polygons
        assert a.wirelength == b.wirelength
        assert a.routed_nets == b.routed_nets


class TestReportRoundtrip:
    def test_dict_roundtrip(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.design_name == report.design_name
        assert rebuilt.short_polygons == report.short_polygons
        assert rebuilt.via_violations == report.via_violations
        assert rebuilt.routability == report.routability
        assert set(rebuilt.nets) == set(report.nets)

    def test_file_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        rebuilt = load_report(path)
        assert rebuilt.wirelength == report.wirelength

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            report_from_dict({"format": "nope"})
