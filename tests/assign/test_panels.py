"""Tests for panel extraction and segment decomposition."""


from repro.assign import Panel, PanelKind, PanelSegment, extract_panels, runs_of_path
from repro.geometry import Interval
from repro.globalroute import GlobalRouter
from tests.globalroute.test_router import design_with_nets, two_pin


class TestRunsOfPath:
    def test_empty_and_single(self):
        assert runs_of_path([]) == []
        assert runs_of_path([(0, 0)]) == []

    def test_horizontal_run(self):
        assert runs_of_path([(0, 2), (1, 2), (2, 2)]) == [
            ("h", 2, Interval(0, 2))
        ]

    def test_vertical_run(self):
        assert runs_of_path([(1, 0), (1, 1), (1, 2)]) == [
            ("v", 1, Interval(0, 2))
        ]

    def test_l_shape_shares_corner(self):
        runs = runs_of_path([(0, 0), (1, 0), (1, 1)])
        assert runs == [("h", 0, Interval(0, 1)), ("v", 1, Interval(0, 1))]

    def test_descending_path_normalized(self):
        runs = runs_of_path([(1, 5), (1, 4), (1, 3)])
        assert runs == [("v", 1, Interval(3, 5))]

    def test_staircase(self):
        path = [(0, 0), (0, 1), (1, 1), (1, 2)]
        runs = runs_of_path(path)
        assert runs == [
            ("v", 0, Interval(0, 1)),
            ("h", 1, Interval(0, 1)),
            ("v", 1, Interval(1, 2)),
        ]


class TestPanelSegment:
    def test_line_end_rows_both(self):
        seg = PanelSegment(net="n", index=0, span=Interval(2, 6))
        assert seg.line_end_rows == (2, 6)
        assert seg.length == 5

    def test_line_end_rows_partial(self):
        seg = PanelSegment(
            net="n", index=0, span=Interval(2, 6), has_high_end=False
        )
        assert seg.line_end_rows == (2,)


class TestPanelDensities:
    def make_panel(self):
        return Panel(
            kind=PanelKind.COLUMN,
            position=0,
            segments=[
                PanelSegment(net="a", index=0, span=Interval(0, 4)),
                PanelSegment(net="b", index=1, span=Interval(2, 6)),
                PanelSegment(net="c", index=2, span=Interval(4, 8)),
            ],
        )

    def test_segment_density(self):
        panel = self.make_panel()
        density = panel.segment_density()
        assert density[4] == 3
        assert density[0] == 1
        assert panel.max_segment_density() == 3

    def test_line_end_density(self):
        panel = self.make_panel()
        density = panel.line_end_density()
        assert density[4] == 2  # high end of a, low end of c
        assert density[2] == 1
        assert panel.max_line_end_density() == 2

    def test_empty_panel(self):
        panel = Panel(kind=PanelKind.ROW, position=1, segments=[])
        assert panel.max_segment_density() == 0
        assert panel.max_line_end_density() == 0


class TestExtractPanels:
    def test_segments_cover_all_runs(self):
        nets = [two_pin("a", (1, 1), (55, 40)), two_pin("b", (40, 2), (2, 41))]
        result = GlobalRouter().route(design_with_nets(nets))
        columns, rows = extract_panels(result)
        total_segments = sum(len(p) for p in columns.values()) + sum(
            len(p) for p in rows.values()
        )
        expected = sum(
            len(runs_of_path(path))
            for route in result.routes.values()
            for path in route.paths
        )
        assert total_segments == expected

    def test_panel_positions_match_graph(self):
        nets = [two_pin("a", (1, 1), (55, 40))]
        result = GlobalRouter().route(design_with_nets(nets))
        columns, rows = extract_panels(result)
        assert set(columns) == set(range(result.graph.nx))
        assert set(rows) == set(range(result.graph.ny))

    def test_vertical_runs_in_column_panels(self):
        nets = [two_pin("a", (5, 1), (5, 40))]  # straight vertical net
        result = GlobalRouter().route(design_with_nets(nets))
        columns, rows = extract_panels(result)
        column_segments = [s for p in columns.values() for s in p.segments]
        assert len(column_segments) == 1
        assert column_segments[0].net == "a"
        assert all(len(p.segments) == 0 for p in rows.values())
