"""Property tests for the ILP track assigner (small random panels)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign import (
    assign_tracks_graph,
    assign_tracks_ilp,
    validate_assignment,
)
from repro.layout import StitchingLines
from tests.assign.test_track_assign import make_panel, random_panel

LINES = StitchingLines((15, 30), epsilon=1, escape_width=4)
PANEL_XS = list(range(15, 30))


class TestIlpProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000), st.integers(2, 6))
    def test_valid_and_ordered(self, seed, count):
        rng = random.Random(seed)
        panel = random_panel(rng, count, num_rows=6)
        result = assign_tracks_ilp(panel, PANEL_XS, LINES)
        live = [s for s in panel.segments if s.index in result.tracks]
        assert validate_assignment(live, result.tracks) == []
        # Never a stitch-line track.
        for per_row in result.tracks.values():
            assert all(x not in (15, 30) for x in per_row.values())

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2_000))
    def test_ilp_not_worse_than_graph(self, seed):
        rng = random.Random(seed)
        panel = random_panel(rng, rng.randint(2, 6), num_rows=6)
        ilp = assign_tracks_ilp(panel, PANEL_XS, LINES)
        graph = assign_tracks_graph(panel, PANEL_XS, LINES)
        assert ilp.num_bad_ends <= graph.num_bad_ends

    def test_no_crossings_in_solution(self):
        """Constraint (9): doglegs of different segments never cross."""
        spans = [(0, 5)] * 10 + [(2, 3)] * 3
        panel = make_panel(spans)
        result = assign_tracks_ilp(panel, PANEL_XS, LINES)
        # For each adjacent row pair, orderings must be consistent.
        rows = range(0, 6)
        for r1, r2 in zip(rows, rows[1:]):
            placed = [
                (per_row.get(r1), per_row.get(r2))
                for per_row in result.tracks.values()
                if r1 in per_row and r2 in per_row
            ]
            for i in range(len(placed)):
                for j in range(i + 1, len(placed)):
                    a1, a2 = placed[i]
                    b1, b2 = placed[j]
                    assert (a1 - b1) * (a2 - b2) > 0, "crossing doglegs"
