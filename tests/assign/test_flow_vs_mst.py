"""Targeted cases where the flow-based coloring beats the MST heuristic.

Reproduces the Fig. 9 situation: with more than two colors available,
the maximum-spanning-tree coloring wastes colors (it only guarantees
tree edges are bichromatic), while iterated max-weight k-colorable
extraction uses the full palette.
"""


from repro.algorithms import coloring_cost
from repro.assign import (
    Panel,
    PanelKind,
    PanelSegment,
    build_conflict_graph,
    flow_kcoloring,
    mst_kcoloring,
)
from repro.geometry import Interval


def panel_from_spans(spans):
    return Panel(
        kind=PanelKind.COLUMN,
        position=0,
        segments=[
            PanelSegment(net=f"n{i}", index=i, span=Interval(*s))
            for i, s in enumerate(spans)
        ],
    )


class TestFig9Style:
    def test_three_mutually_overlapping_segments(self):
        """A triangle needs 3 colors; MST by depth uses only 2 of 3."""
        panel = panel_from_spans([(0, 6), (1, 7), (2, 8)])
        vertices, edges = build_conflict_graph(panel)
        spans = {s.index: s.span for s in panel.segments}
        flow_cost = coloring_cost(edges, flow_kcoloring(vertices, spans, edges, 3))
        mst_cost = coloring_cost(edges, mst_kcoloring(vertices, edges, 3))
        # A triangle is 3-colorable: the flow solution is perfect.
        assert flow_cost == 0.0
        # The spanning tree of a triangle is a path; depth-mod-3
        # coloring happens to 3-color a 3-path perfectly too, so only
        # assert not-worse here; the clique test below separates them.
        assert flow_cost <= mst_cost

    def test_k4_clique_with_four_colors(self):
        """A 4-clique colored with 4 colors: flow perfect, MST not.

        The maximum spanning tree of a clique is a star or path;
        depth-based coloring reuses colors at equal depths, leaving
        monochromatic clique edges.
        """
        panel = panel_from_spans([(0, 9), (1, 9), (2, 9), (3, 9)])
        vertices, edges = build_conflict_graph(panel)
        spans = {s.index: s.span for s in panel.segments}
        flow_cost = coloring_cost(edges, flow_kcoloring(vertices, spans, edges, 4))
        mst_cost = coloring_cost(edges, mst_kcoloring(vertices, edges, 4))
        assert flow_cost == 0.0
        assert mst_cost > 0.0

    def test_flow_never_worse_on_dense_panels(self):
        spans = [(i % 4, (i % 4) + 5) for i in range(10)]
        panel = panel_from_spans(spans)
        vertices, edges = build_conflict_graph(panel)
        span_map = {s.index: s.span for s in panel.segments}
        for k in (3, 4, 5):
            flow_cost = coloring_cost(
                edges, flow_kcoloring(vertices, span_map, edges, k)
            )
            mst_cost = coloring_cost(edges, mst_kcoloring(vertices, edges, k))
            assert flow_cost <= mst_cost
