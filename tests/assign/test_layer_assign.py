"""Tests for conflict graphs and the two layer-assignment heuristics."""

import itertools

import pytest

from repro.algorithms import coloring_cost
from repro.assign import (
    ColoringMethod,
    Panel,
    PanelKind,
    PanelSegment,
    assign_layers,
    assign_panel,
    build_conflict_graph,
    flow_kcoloring,
    instance_suite,
    mst_kcoloring,
    order_groups_for_vias,
    random_instance,
    suite_stats,
    vertex_weights,
)
from repro.geometry import Interval
from repro.layout import Technology


def panel_from_spans(spans, kind=PanelKind.COLUMN, nets=None):
    segments = [
        PanelSegment(
            net=(nets[i] if nets else f"n{i}"), index=i, span=Interval(*s)
        )
        for i, s in enumerate(spans)
    ]
    return Panel(kind=kind, position=0, segments=segments)


class TestConflictGraph:
    def test_no_overlap_no_edges(self):
        panel = panel_from_spans([(0, 1), (3, 4)])
        vertices, edges = build_conflict_graph(panel)
        assert vertices == [0, 1]
        assert edges == []

    def test_edge_weight_includes_density(self):
        # Three segments overlapping at tile 2 -> D_segment = 3.
        panel = panel_from_spans([(0, 2), (2, 4), (2, 6)])
        _, edges = build_conflict_graph(panel)
        weights = {(u, v): w for u, v, w in edges}
        # Segments 1 and 2 share a low line end at tile 2 (density 2 at
        # tile 2: ends of 1 and 2; segment 0's high end is also there).
        assert (0, 1) in weights and (0, 2) in weights and (1, 2) in weights

    def test_line_end_term_only_for_shared_end_rows(self):
        # Segments 0 and 1 overlap but no shared line-end row.
        panel = panel_from_spans([(0, 4), (2, 6)])
        _, edges = build_conflict_graph(panel)
        ((u, v, w),) = edges
        # D_segment = 2 (both cover tiles 2..4), no shared end -> w = 2.
        assert w == 2.0

    def test_line_end_term_added_on_shared_ends(self):
        # Both segments end at tile 4.
        panel = panel_from_spans([(0, 4), (4, 8), (2, 4)])
        _, edges = build_conflict_graph(panel)
        weights = {(u, v): w for u, v, w in edges}
        # Segments 0 and 2 share end row 4 where three line ends meet
        # (high ends of 0 and 2, low end of 1): D_end = 3.
        assert weights[(0, 2)] == 3.0 + 3.0

    def test_row_panels_skip_line_end_term(self):
        col = panel_from_spans([(0, 4), (2, 4)], kind=PanelKind.COLUMN)
        row = panel_from_spans([(0, 4), (2, 4)], kind=PanelKind.ROW)
        _, col_edges = build_conflict_graph(col)
        _, row_edges = build_conflict_graph(row)
        assert col_edges[0][2] > row_edges[0][2]

    def test_vertex_weights(self):
        vertices = [0, 1, 2]
        edges = [(0, 1, 2.0), (1, 2, 3.0)]
        weights = vertex_weights(vertices, edges)
        assert weights == {0: 2.0, 1: 5.0, 2: 3.0}


class TestColoringHeuristics:
    def proper(self, panel, colors):
        for a, b in itertools.combinations(range(len(panel.segments)), 2):
            sa, sb = panel.segments[a], panel.segments[b]
            if sa.span.overlaps(sb.span) and colors[sa.index] == colors[sb.index]:
                return False
        return True

    def test_flow_coloring_proper_when_density_fits(self):
        panel = panel_from_spans([(0, 3), (1, 4), (5, 8)])
        vertices, edges = build_conflict_graph(panel)
        spans = {s.index: s.span for s in panel.segments}
        colors = flow_kcoloring(vertices, spans, edges, 2)
        assert self.proper(panel, colors)
        assert set(colors) == {0, 1, 2}

    def test_flow_coloring_all_vertices_colored(self):
        panel = random_instance(3)
        vertices, edges = build_conflict_graph(panel)
        spans = {s.index: s.span for s in panel.segments}
        for k in (2, 3, 5):
            colors = flow_kcoloring(vertices, spans, edges, k)
            assert set(colors) == set(vertices)
            assert all(0 <= c < k for c in colors.values())

    def test_mst_coloring_all_vertices_colored(self):
        panel = random_instance(4)
        vertices, edges = build_conflict_graph(panel)
        colors = mst_kcoloring(vertices, edges, 3)
        assert set(colors) == set(vertices)

    def test_flow_beats_mst_on_average(self):
        """The Table VI claim: ours wins, and more so for larger k."""
        suite = instance_suite(count=12)
        improvements = {}
        for k in (2, 5):
            mst_total = flow_total = 0.0
            for panel in suite:
                vertices, edges = build_conflict_graph(panel)
                spans = {s.index: s.span for s in panel.segments}
                mst_total += coloring_cost(edges, mst_kcoloring(vertices, edges, k))
                flow_total += coloring_cost(
                    edges, flow_kcoloring(vertices, spans, edges, k)
                )
            assert flow_total < mst_total
            improvements[k] = 1 - flow_total / mst_total
        assert improvements[5] > improvements[2]

    def test_empty_graph(self):
        colors = flow_kcoloring([], {}, [], 3)
        assert colors == {}


class TestAssignPanel:
    def test_layers_mapped(self):
        panel = panel_from_spans([(0, 3), (1, 4), (5, 8)])
        pa = assign_panel(panel, 2, ColoringMethod.FLOW, layers=[2, 4])
        assert set(pa.layer_of_segment.values()) <= {2, 4}
        assert len(pa.layer_of_segment) == 3

    def test_single_layer(self):
        panel = panel_from_spans([(0, 3), (5, 8)])
        pa = assign_panel(panel, 1, layers=[2])
        assert set(pa.layer_of_segment.values()) == {2}

    def test_bad_layers_length(self):
        panel = panel_from_spans([(0, 3)])
        with pytest.raises(ValueError):
            assign_panel(panel, 2, layers=[1])

    def test_order_groups_for_vias_prefers_shared_nets(self):
        # Segments of net x in colors 0 and 2 -> those groups adjacent.
        panel = panel_from_spans(
            [(0, 3), (0, 3), (0, 3)], nets=["x", "y", "x"]
        )
        colors = {0: 0, 1: 1, 2: 2}
        order = order_groups_for_vias(panel, colors, 3)
        assert abs(order.index(0) - order.index(2)) == 1

    def test_assign_layers_covers_all_panels(self):
        columns = {0: panel_from_spans([(0, 3), (1, 4)])}
        rows = {0: panel_from_spans([(0, 3)], kind=PanelKind.ROW)}
        tech = Technology(3)
        result = assign_layers(columns, rows, tech)
        assert set(result.columns[0].layer_of_segment.values()) <= {2}
        assert set(result.rows[0].layer_of_segment.values()) <= {1, 3}
        assert result.total_cost >= 0


class TestInstances:
    def test_suite_deterministic(self):
        s1 = instance_suite(count=5)
        s2 = instance_suite(count=5)
        assert [
            [seg.span for seg in p.segments] for p in s1
        ] == [[seg.span for seg in p.segments] for p in s2]

    def test_suite_stats_near_table5(self):
        stats = suite_stats(instance_suite())
        assert stats.count == 50
        assert 8 <= stats.max_segment_density <= 14
        assert 4 <= stats.avg_segment_density <= 8
        assert 4 <= stats.max_line_end_density <= 8
        assert 1.5 <= stats.avg_line_end_density <= 3.5
