"""Tests for track regions and assignment validation helpers."""


from repro.assign import (
    PanelSegment,
    TrackRegion,
    find_bad_ends,
    regions_of_span,
    validate_assignment,
)
from repro.geometry import Interval
from repro.layout import StitchingLines


def seg(index, lo, hi, net=None):
    return PanelSegment(net=net or f"n{index}", index=index, span=Interval(lo, hi))


class TestRegions:
    lines = StitchingLines((15, 30), epsilon=1, escape_width=4)

    def test_span_with_line_at_left_edge(self):
        regions = regions_of_span(15, 29, self.lines)
        assert len(regions) == 1
        region = regions[0]
        assert region.xs == tuple(range(16, 30))
        assert region.sur_left == 1  # track 16 adjacent to line 15
        assert region.sur_right == 1  # track 29 adjacent to line 30

    def test_span_without_lines(self):
        regions = regions_of_span(0, 14, self.lines)
        assert len(regions) == 1
        assert regions[0].xs == tuple(range(0, 15))
        assert regions[0].sur_left == 0
        assert regions[0].sur_right == 1  # track 14 adjacent to line 15

    def test_span_with_interior_line_splits(self):
        regions = regions_of_span(10, 20, self.lines)
        assert len(regions) == 2
        assert regions[0].xs == tuple(range(10, 15))
        assert regions[1].xs == tuple(range(16, 21))

    def test_is_unfriendly_indexing(self):
        region = TrackRegion(xs=tuple(range(16, 30)), sur_left=1, sur_right=1)
        assert region.is_unfriendly(0)
        assert not region.is_unfriendly(1)
        assert not region.is_unfriendly(12)
        assert region.is_unfriendly(13)


class TestFindBadEnds:
    lines = StitchingLines((15,), epsilon=1, escape_width=4)

    def test_end_on_unfriendly_track(self):
        segments = [seg(0, 2, 5)]
        tracks = {0: {r: 16 for r in range(2, 6)}}
        bad = find_bad_ends(segments, tracks, self.lines)
        assert bad == [(0, 2), (0, 5)]

    def test_end_on_friendly_track(self):
        segments = [seg(0, 2, 5)]
        tracks = {0: {r: 20 for r in range(2, 6)}}
        assert find_bad_ends(segments, tracks, self.lines) == []

    def test_dogleg_moves_end_off_unfriendly(self):
        segments = [seg(0, 2, 5)]
        tracks = {0: {2: 18, 3: 16, 4: 16, 5: 18}}
        assert find_bad_ends(segments, tracks, self.lines) == []

    def test_unassigned_segment_skipped(self):
        assert find_bad_ends([seg(0, 2, 5)], {}, self.lines) == []


class TestValidateAssignment:
    def test_valid(self):
        segments = [seg(0, 0, 2), seg(1, 1, 3)]
        tracks = {
            0: {0: 5, 1: 5, 2: 5},
            1: {1: 6, 2: 6, 3: 6},
        }
        assert validate_assignment(segments, tracks) == []

    def test_collision_detected(self):
        segments = [seg(0, 0, 2), seg(1, 1, 3)]
        tracks = {
            0: {0: 5, 1: 5, 2: 5},
            1: {1: 5, 2: 6, 3: 6},
        }
        problems = validate_assignment(segments, tracks)
        assert any("collide" in p for p in problems)

    def test_missing_row_detected(self):
        segments = [seg(0, 0, 2)]
        tracks = {0: {0: 5, 2: 5}}
        problems = validate_assignment(segments, tracks)
        assert any("missing row 1" in p for p in problems)
