"""Tests for the three track assignment algorithms and the driver."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assign import (
    Panel,
    PanelKind,
    PanelSegment,
    TrackMethod,
    assign_layers,
    assign_tracks,
    assign_tracks_baseline,
    assign_tracks_graph,
    assign_tracks_ilp,
    extract_panels,
    validate_assignment,
)
from repro.geometry import Interval
from repro.layout import StitchingLines
from repro.globalroute import GlobalRouter

LINES = StitchingLines((15, 30), epsilon=1, escape_width=4)
PANEL_XS = list(range(15, 30))  # one tile column [15, 29]


def make_panel(spans, nets=None):
    segments = [
        PanelSegment(
            net=(nets[i] if nets else f"n{i}"), index=i, span=Interval(*s)
        )
        for i, s in enumerate(spans)
    ]
    return Panel(kind=PanelKind.COLUMN, position=1, segments=segments)


def random_panel(rng, num_segments, num_rows=8):
    spans = []
    for _ in range(num_segments):
        length = rng.randint(1, max(1, num_rows // 2))
        lo = rng.randint(0, num_rows - length)
        spans.append((lo, lo + length - 1))
    return make_panel(spans)


class TestBaseline:
    def test_no_overlap_single_track(self):
        panel = make_panel([(0, 2), (4, 6)])
        result = assign_tracks_baseline(panel, list(range(16, 30)), LINES)
        assert not result.failed
        # Left-edge: both reuse the first track.
        xs = {x for rows in result.tracks.values() for x in rows.values()}
        assert len(xs) == 1

    def test_on_line_track_failed(self):
        # First track of the span IS the stitching line at x=15.
        panel = make_panel([(0, 2)])
        result = assign_tracks_baseline(panel, [15] + PANEL_XS, LINES)
        assert result.failed == [0]

    def test_overflow_failed(self):
        panel = make_panel([(0, 2)] * 3)
        result = assign_tracks_baseline(panel, [16, 17], LINES)
        assert len(result.failed) == 1
        assert len(result.tracks) == 2

    def test_no_doglegs(self):
        panel = make_panel([(0, 4), (1, 3), (2, 5)])
        result = assign_tracks_baseline(panel, PANEL_XS, LINES)
        assert result.dogleg_count() == 0

    def test_valid_assignment(self):
        rng = random.Random(11)
        panel = random_panel(rng, 10)
        result = assign_tracks_baseline(panel, PANEL_XS, LINES)
        live = [s for s in panel.segments if s.index in result.tracks]
        assert validate_assignment(live, result.tracks) == []


class TestGraph:
    def test_avoids_bad_ends_with_space(self):
        # Two short line-end segments; plenty of friendly tracks.
        panel = make_panel([(0, 3), (2, 6)])
        result = assign_tracks_graph(panel, PANEL_XS, LINES)
        assert not result.failed
        assert result.num_bad_ends == 0
        assert validate_assignment(panel.segments, result.tracks) == []

    def test_never_uses_stitch_line_track(self):
        rng = random.Random(5)
        panel = random_panel(rng, 12)
        result = assign_tracks_graph(panel, [15] + PANEL_XS, LINES)
        for rows in result.tracks.values():
            assert all(x != 15 and x != 30 for x in rows.values())

    def test_full_density_assigns_all(self):
        # 14 usable tracks, 14 segments all overlapping.
        panel = make_panel([(0, 5)] * 14)
        result = assign_tracks_graph(panel, PANEL_XS, LINES)
        assert not result.failed
        assert len(result.tracks) == 14
        assert validate_assignment(panel.segments, result.tracks) == []
        # With every track used, the two unfriendly tracks carry ends.
        assert result.num_bad_ends > 0

    def test_over_density_fails_extra(self):
        panel = make_panel([(0, 5)] * 16)
        result = assign_tracks_graph(panel, PANEL_XS, LINES)
        assert len(result.failed) == 2
        assert len(result.tracks) == 14

    def test_dogleg_resolves_bad_end(self):
        # A long segment forced next to the line by 13 competing
        # segments in its middle rows; its ends can dogleg inward.
        spans = [(0, 9)] + [(3, 6)] * 13
        panel = make_panel(spans)
        result = assign_tracks_graph(panel, PANEL_XS, LINES)
        assert not result.failed
        assert validate_assignment(panel.segments, result.tracks) == []
        # Bad ends are far rarer than the 28 line ends at stake.
        assert result.num_bad_ends <= 2

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(2, 14))
    def test_property_valid_and_no_line_tracks(self, seed, count):
        rng = random.Random(seed)
        panel = random_panel(rng, count)
        result = assign_tracks_graph(panel, PANEL_XS, LINES)
        live = [s for s in panel.segments if s.index in result.tracks]
        assert validate_assignment(live, result.tracks) == []
        for rows in result.tracks.values():
            assert all(16 <= x <= 29 for x in rows.values())
        assert set(result.tracks) | set(result.failed) == set(
            s.index for s in panel.segments
        )


class TestILP:
    def test_simple_panel_optimal(self):
        panel = make_panel([(0, 3), (2, 6)])
        result = assign_tracks_ilp(panel, PANEL_XS, LINES)
        assert not result.failed
        assert result.num_bad_ends == 0
        assert validate_assignment(panel.segments, result.tracks) == []

    def test_prefers_straight_tracks(self):
        panel = make_panel([(0, 5)])
        result = assign_tracks_ilp(panel, PANEL_XS, LINES)
        assert result.dogleg_count() == 0

    def test_uses_dogleg_when_forced(self):
        # Middle rows crowded: the long segment ends must dogleg off
        # the unfriendly track to avoid bad ends.
        spans = [(0, 9)] + [(3, 6)] * 13
        panel = make_panel(spans)
        result = assign_tracks_ilp(panel, PANEL_XS, LINES)
        assert not result.failed
        assert validate_assignment(panel.segments, result.tracks) == []
        # Rows 3..6 are at full density (14 segments, 14 tracks, two of
        # them unfriendly).  One unfriendly track can be absorbed by a
        # mid-span row of the long segment, the other must carry a
        # short segment with both ends bad: 2 bad ends is optimal.
        assert result.num_bad_ends == 2
        assert result.dogleg_count() > 0

    def test_infeasible_exclusions_relaxed(self):
        # All 14 tracks needed: bad ends unavoidable, ILP must relax.
        panel = make_panel([(0, 5)] * 14)
        result = assign_tracks_ilp(panel, PANEL_XS, LINES)
        assert not result.failed
        assert len(result.tracks) == 14
        assert result.num_bad_ends > 0

    def test_graph_matches_ilp_bad_ends_on_small_cases(self):
        rng = random.Random(23)
        for _ in range(5):
            panel = random_panel(rng, rng.randint(2, 8))
            ilp = assign_tracks_ilp(panel, PANEL_XS, LINES)
            graph = assign_tracks_graph(panel, PANEL_XS, LINES)
            # The heuristic may be slightly worse, never better than
            # the exact optimum.
            assert graph.num_bad_ends >= ilp.num_bad_ends
            assert ilp.num_bad_ends == 0


class TestDesignDriver:
    def route_small(self):
        from tests.globalroute.test_router import design_with_nets, two_pin

        nets = [
            two_pin("a", (1, 1), (55, 40)),
            two_pin("b", (40, 2), (2, 41)),
            two_pin("c", (5, 1), (5, 40)),
        ]
        design = design_with_nets(nets)
        result = GlobalRouter().route(design)
        return design, result

    def test_assign_tracks_graph_end_to_end(self):
        design, gr = self.route_small()
        columns, rows = extract_panels(gr)
        layers = assign_layers(columns, rows, design.technology)
        tracks = assign_tracks(design, gr.graph, layers, TrackMethod.GRAPH)
        assert not tracks.failed_nets
        assert tracks.cpu_seconds >= 0
        # Every routed segment got tracks.
        total_assigned = sum(len(r.tracks) for r in tracks.columns.values())
        total_assigned += sum(len(r.tracks) for r in tracks.rows.values())
        total_segments = sum(len(p.segments) for p in columns.values())
        total_segments += sum(len(p.segments) for p in rows.values())
        assert total_assigned == total_segments

    def test_bad_ends_per_net(self):
        design, gr = self.route_small()
        columns, rows = extract_panels(gr)
        layers = assign_layers(columns, rows, design.technology)
        tracks = assign_tracks(design, gr.graph, layers, TrackMethod.GRAPH)
        counts = tracks.bad_ends_per_net()
        assert all(v > 0 for v in counts.values())
        assert sum(counts.values()) == tracks.num_bad_ends

    def test_baseline_vs_graph_bad_ends(self):
        design, gr = self.route_small()
        columns, rows = extract_panels(gr)
        layers = assign_layers(columns, rows, design.technology)
        base = assign_tracks(design, gr.graph, layers, TrackMethod.BASELINE)
        graph = assign_tracks(design, gr.graph, layers, TrackMethod.GRAPH)
        assert graph.num_bad_ends <= base.num_bad_ends
