"""Focused tests for the via-minimizing group ordering."""


from repro.assign import Panel, PanelKind, PanelSegment, order_groups_for_vias
from repro.geometry import Interval


def panel_with_nets(net_names):
    segments = [
        PanelSegment(net=name, index=i, span=Interval(0, 3))
        for i, name in enumerate(net_names)
    ]
    return Panel(kind=PanelKind.COLUMN, position=0, segments=segments)


class TestOrderGroups:
    def test_returns_permutation(self):
        panel = panel_with_nets(["a", "b", "c", "d"])
        colors = {0: 0, 1: 1, 2: 2, 3: 3}
        order = order_groups_for_vias(panel, colors, 4)
        assert sorted(order) == [0, 1, 2, 3]

    def test_single_group(self):
        panel = panel_with_nets(["a"])
        assert order_groups_for_vias(panel, {0: 0}, 1) == [0]

    def test_shared_net_groups_adjacent(self):
        # Net "x" in groups 0 and 3; net "y" in groups 1 and 2.
        panel = panel_with_nets(["x", "y", "y", "x"])
        colors = {0: 0, 1: 1, 2: 2, 3: 3}
        order = order_groups_for_vias(panel, colors, 4)
        assert abs(order.index(0) - order.index(3)) == 1
        assert abs(order.index(1) - order.index(2)) == 1

    def test_no_affinity_still_valid(self):
        panel = panel_with_nets(["a", "b", "c"])
        colors = {0: 0, 1: 1, 2: 2}
        order = order_groups_for_vias(panel, colors, 3)
        assert sorted(order) == [0, 1, 2]

    def test_deterministic(self):
        panel = panel_with_nets(["x", "y", "y", "x", "z"])
        colors = {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        o1 = order_groups_for_vias(panel, colors, 5)
        o2 = order_groups_for_vias(panel, colors, 5)
        assert o1 == o2
