"""Seeded synthetic routing-benchmark generator.

The paper evaluates on the MCNC and Faraday suites (Tables I and II),
whose original files are legacy/proprietary distributions we cannot
ship.  This generator reproduces each circuit's *published statistics*
— die aspect ratio, layer count, net count, pin count, average pins per
net — with standard-cell-like pin placement and net locality, so the
routing experiments exercise the same code paths at the same relative
densities.

Two knobs keep the reproduction faithful:

* ``scale`` shrinks net count and die area together (area is
  proportional to pin count), preserving congestion ratios while
  keeping pure-Python routing tractable.
* ``stitch_pin_fraction`` controls how many pins sit exactly on
  stitching lines.  Via violations are only allowed on fixed pins
  (Problem 1), so this fraction calibrates the #VV columns of Tables
  III/VII/VIII, which differ per circuit in the paper because of each
  benchmark's own pin alignment.
"""

from __future__ import annotations

import dataclasses
import math
import random

from ..config import RouterConfig
from ..geometry import Point
from ..layout import Design, Net, Netlist, Pin, Technology


@dataclasses.dataclass(frozen=True)
class SyntheticSpec:
    """Published statistics of one benchmark circuit.

    Attributes:
        name: circuit name as in Table I/II.
        nets: full-size net count.
        pins: full-size pin count.
        layers: routing layer count.
        aspect: die width / height ratio.
        stitch_pin_fraction: fraction of pins placed exactly on
            stitching lines (drives the #VV columns).
        cells_per_pin: die area in grid cells per pin; controls
            congestion.  Calibrated so routability lands in the paper's
            96–100% band.
        locality: typical net span as a fraction of the die edge.
        cluster_fraction: fraction of nets whose centers concentrate in
            a few hotspot regions.  Real placements are not uniform;
            hotspots are what make some tiles overflow while spare
            capacity remains nearby — the situation the stitch-aware
            global router exploits (Table IV).
        num_clusters: number of hotspot regions.
        cluster_sigma_frac: hotspot radius as a fraction of the die
            edge; broader hotspots spread the same demand over more
            tiles (milder, routable-around pressure).
    """

    name: str
    nets: int
    pins: int
    layers: int
    aspect: float = 1.0
    stitch_pin_fraction: float = 0.067
    cells_per_pin: float = 26.0
    locality: float = 0.12
    cluster_fraction: float = 0.3
    num_clusters: int = 6
    cluster_sigma_frac: float = 0.12

    @property
    def pins_per_net(self) -> float:
        """Average pins per net of the full-size circuit."""
        return self.pins / self.nets


def _net_pin_count(rng: random.Random, mean: float) -> int:
    """Draw a pin count with the given mean, minimum two.

    Shifted geometric distribution: realistic netlists are dominated by
    2-pin and 3-pin nets with a thin tail of high-fanout nets.
    """
    if mean <= 2.0:
        return 2
    p = 1.0 / (mean - 1.0)
    count = 2
    while rng.random() > p and count < 40:
        count += 1
    return count


def generate_design(
    spec: SyntheticSpec,
    scale: float = 1.0,
    config: RouterConfig | None = None,
    seed: int | None = None,
) -> Design:
    """Instantiate a synthetic :class:`Design` for ``spec``.

    Args:
        spec: published circuit statistics.
        scale: fraction of the full-size net count to generate; die
            area shrinks proportionally so density is preserved.
            Factors above 1 (up to 100) *grow* the instance past the
            published statistics — density is still preserved, so
            oversized instances stress the routers without changing
            congestion character (used by engine-speedup benchmarks;
            see ``docs/performance.md``).
        config: framework parameters (stitch spacing etc.).
        seed: RNG seed; defaults to a hash of the circuit name so each
            circuit is deterministic yet distinct.
    """
    if not 0.0 < scale <= 100.0:
        raise ValueError(f"scale must be in (0, 100], got {scale}")
    config = config or RouterConfig()
    rng = random.Random(seed if seed is not None else _name_seed(spec.name))

    num_nets = max(4, int(round(spec.nets * scale)))
    target_pins = max(2 * num_nets, int(round(spec.pins * scale)))
    area = target_pins * spec.cells_per_pin
    width = max(3 * config.stitch_spacing + 1, int(round(math.sqrt(area * spec.aspect))))
    height = max(2 * config.tile_size, int(round(math.sqrt(area / spec.aspect))))

    mean_pins = target_pins / num_nets
    stitch_xs = list(range(config.stitch_spacing, width, config.stitch_spacing))

    clusters = [
        Point(rng.randrange(width), rng.randrange(height))
        for _ in range(max(1, spec.num_clusters))
    ]
    cluster_sigma = max(3, int(spec.cluster_sigma_frac * min(width, height)))

    nets: list[Net] = []
    taken: set = set()
    for i in range(num_nets):
        pin_count = _net_pin_count(rng, mean_pins)
        if rng.random() < spec.cluster_fraction:
            hub = rng.choice(clusters)
            center = Point(
                _clamp(hub.x + rng.randint(-cluster_sigma, cluster_sigma), 0, width - 1),
                _clamp(hub.y + rng.randint(-cluster_sigma, cluster_sigma), 0, height - 1),
            )
        else:
            center = Point(rng.randrange(width), rng.randrange(height))
        window = max(2, int(spec.locality * min(width, height)))
        # A small share of nets are global (clock/reset-like).
        if rng.random() < 0.04:
            window = max(window, min(width, height) // 2)
        pins = []
        for j in range(pin_count):
            placed = None
            for _ in range(80):
                x = _clamp(center.x + rng.randint(-window, window), 0, width - 1)
                y = _clamp(center.y + rng.randint(-window, window), 0, height - 1)
                x = _adjust_stitch_alignment(
                    rng, x, stitch_xs, spec.stitch_pin_fraction, width, config
                )
                if (x, y) not in taken:
                    placed = (x, y)
                    break
            if placed is None:
                continue  # hopelessly crowded neighbourhood; smaller net
            taken.add(placed)
            pins.append(Pin(f"n{i}.{j}", Point(*placed), layer=1))
        if len(pins) < 2:
            continue
        nets.append(Net(f"n{i}", tuple(pins)))

    return Design(
        name=spec.name,
        width=width,
        height=height,
        technology=Technology(spec.layers),
        netlist=Netlist(nets),
        config=config,
    )


def _adjust_stitch_alignment(
    rng: random.Random,
    x: int,
    stitch_xs: list[int],
    target_fraction: float,
    width: int,
    config: RouterConfig,
) -> int:
    """Re-sample ``x`` so the on-stitch-line pin rate hits the target.

    Uniform placement puts ``1/stitch_spacing`` of pins on lines; we
    nudge on-line pins off (or off-line pins on) with the probability
    that makes the expected on-line fraction equal ``target_fraction``.
    """
    natural = 1.0 / config.stitch_spacing
    on_line = x in stitch_xs
    if not stitch_xs:
        return x
    if target_fraction >= natural:
        # Need extra on-line pins: promote off-line pins with prob q.
        if not on_line:
            q = (target_fraction - natural) / max(1e-9, 1.0 - natural)
            if rng.random() < q:
                return min(stitch_xs, key=lambda s: abs(s - x))
        return x
    # Need fewer on-line pins: demote with prob q.
    if on_line and rng.random() < 1.0 - target_fraction / natural:
        shifted = x + rng.choice((-1, 1, -2, 2))
        return _clamp(shifted, 0, width - 1)
    return x


def _clamp(value: int, lo: int, hi: int) -> int:
    return max(lo, min(hi, value))


def _name_seed(name: str) -> int:
    """Stable per-name seed (hash() is salted per process; avoid it)."""
    seed = 0
    for ch in name:
        seed = (seed * 131 + ord(ch)) % (2**31 - 1)
    return seed
