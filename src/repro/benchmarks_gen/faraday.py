"""The Faraday industry benchmark suite (Table II), synthesized to spec.

Six routing layers, near-square dice, and high-fanout nets (about 5.5
pins per net on average).  ``stitch_pin_fraction`` values derive from
the #VV / #pins ratios of Table III.
"""

from __future__ import annotations

from ..config import RouterConfig
from ..layout import Design
from .generator import SyntheticSpec, generate_design

FARADAY_SPECS = {
    "DMA": SyntheticSpec(
        name="DMA", nets=13256, pins=73982, layers=6,
        aspect=1.0, stitch_pin_fraction=0.0165,
        cells_per_pin=18.0, locality=0.10,
    ),
    "DSP1": SyntheticSpec(
        name="DSP1", nets=28447, pins=144872, layers=6,
        aspect=1.0, stitch_pin_fraction=0.0122,
        cells_per_pin=18.0, locality=0.10,
    ),
    "DSP2": SyntheticSpec(
        name="DSP2", nets=28431, pins=144703, layers=6,
        aspect=1.0, stitch_pin_fraction=0.0141,
        cells_per_pin=18.0, locality=0.10,
    ),
    "RISC1": SyntheticSpec(
        name="RISC1", nets=34034, pins=196677, layers=6,
        aspect=1.0, stitch_pin_fraction=0.0117,
        cells_per_pin=18.0, locality=0.10,
    ),
    "RISC2": SyntheticSpec(
        name="RISC2", nets=34034, pins=196670, layers=6,
        aspect=1.0, stitch_pin_fraction=0.0114,
        cells_per_pin=18.0, locality=0.10,
    ),
}

FARADAY_NAMES: list[str] = list(FARADAY_SPECS)


def faraday_design(
    name: str, scale: float = 1.0, config: RouterConfig | None = None
) -> Design:
    """One Faraday circuit at the given size scale."""
    try:
        spec = FARADAY_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown Faraday circuit {name!r}; choose from {FARADAY_NAMES}"
        ) from None
    return generate_design(spec, scale=scale, config=config)


def faraday_suite(
    scale: float = 1.0, config: RouterConfig | None = None
) -> list[Design]:
    """All five Faraday circuits of Table II."""
    return [faraday_design(name, scale, config) for name in FARADAY_NAMES]
