"""The MCNC benchmark suite (Table I), synthesized to spec.

Die aspect ratios come from the published µm dimensions; net and pin
counts match Table I; ``stitch_pin_fraction`` is calibrated per circuit
from the #VV / #pins ratios of Table III (via violations occur only on
fixed pins, so the pin/stitch-line alignment of each original benchmark
is what those columns measure).  Congestion (``cells_per_pin``,
``locality``) is calibrated so the "hard" circuits land in the paper's
96–99% routability band while Struct/Primary route fully.
"""

from __future__ import annotations

from ..config import RouterConfig
from ..layout import Design
from .generator import SyntheticSpec, generate_design

MCNC_SPECS = {
    "Struct": SyntheticSpec(
        name="Struct", nets=1920, pins=5471, layers=3,
        aspect=4903 / 4904, stitch_pin_fraction=0.076,
        cells_per_pin=34.0, locality=0.10, cluster_fraction=0.15,
    ),
    "Primary1": SyntheticSpec(
        name="Primary1", nets=904, pins=2941, layers=3,
        aspect=7522 / 4988, stitch_pin_fraction=0.077,
        cells_per_pin=34.0, locality=0.10, cluster_fraction=0.15,
    ),
    "Primary2": SyntheticSpec(
        name="Primary2", nets=3029, pins=11226, layers=3,
        aspect=10438 / 6488, stitch_pin_fraction=0.072,
        cells_per_pin=34.0, locality=0.10, cluster_fraction=0.15,
    ),
    "S5378": SyntheticSpec(
        name="S5378", nets=1694, pins=4818, layers=3,
        aspect=435 / 239, stitch_pin_fraction=0.18,
        cells_per_pin=16.0, locality=0.17,
    ),
    "S9234": SyntheticSpec(
        name="S9234", nets=1486, pins=4260, layers=3,
        aspect=404 / 225, stitch_pin_fraction=0.17,
        cells_per_pin=16.0, locality=0.17,
    ),
    "S13207": SyntheticSpec(
        name="S13207", nets=3781, pins=10776, layers=3,
        aspect=660 / 365, stitch_pin_fraction=0.005,
        cells_per_pin=18.0, locality=0.15,
    ),
    "S15850": SyntheticSpec(
        name="S15850", nets=4472, pins=12793, layers=3,
        aspect=705 / 389, stitch_pin_fraction=0.005,
        cells_per_pin=18.0, locality=0.15,
    ),
    "S38417": SyntheticSpec(
        name="S38417", nets=11309, pins=32344, layers=3,
        aspect=1144 / 619, stitch_pin_fraction=0.001,
        cells_per_pin=20.0, locality=0.15, num_clusters=12,
    ),
    "S38584": SyntheticSpec(
        name="S38584", nets=14754, pins=42931, layers=3,
        aspect=1295 / 672, stitch_pin_fraction=0.002,
        cells_per_pin=22.0, locality=0.14, num_clusters=12,
    ),
}

MCNC_NAMES: list[str] = list(MCNC_SPECS)

#: The six circuits Table IV calls "hard" (the only ones with any
#: vertex overflow even without line-end consideration).
MCNC_HARD_NAMES: list[str] = [
    "S5378", "S9234", "S13207", "S15850", "S38417", "S38584",
]


def mcnc_design(
    name: str, scale: float = 1.0, config: RouterConfig | None = None
) -> Design:
    """One MCNC circuit at the given size scale."""
    try:
        spec = MCNC_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown MCNC circuit {name!r}; choose from {MCNC_NAMES}"
        ) from None
    return generate_design(spec, scale=scale, config=config)


def mcnc_suite(
    scale: float = 1.0, config: RouterConfig | None = None
) -> list[Design]:
    """All nine MCNC circuits of Table I."""
    return [mcnc_design(name, scale, config) for name in MCNC_NAMES]


def mcnc_stress_design(
    name: str, scale: float = 1.0, config: RouterConfig | None = None
) -> Design:
    """Congestion-stressed variant of a hard circuit (Table IV).

    The paper's global-routing experiment measures vertex (line-end)
    overflow on the full-size hard circuits.  Scaled-down instances
    lose that pressure (overflow grows superlinearly with size), so
    this variant restores it with broader placement hotspots and
    slightly wider net spans — same generator, same code paths, and
    line-end utilization kept *below* total capacity so the overflow
    is routable-around (the situation Table IV demonstrates).
    """
    import dataclasses as _dataclasses

    try:
        spec = MCNC_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown MCNC circuit {name!r}; choose from {MCNC_NAMES}"
        ) from None
    stressed = _dataclasses.replace(
        spec,
        locality=spec.locality + 0.03,
        cluster_fraction=0.25,
        num_clusters=14,
        cluster_sigma_frac=0.2,
    )
    return generate_design(stressed, scale=scale, config=config)
