"""Synthetic reproductions of the paper's benchmark suites."""

from .faraday import FARADAY_NAMES, FARADAY_SPECS, faraday_design, faraday_suite
from .generator import SyntheticSpec, generate_design
from .mcnc import (
    MCNC_HARD_NAMES,
    MCNC_NAMES,
    MCNC_SPECS,
    mcnc_design,
    mcnc_stress_design,
    mcnc_suite,
)

__all__ = [
    "FARADAY_NAMES",
    "FARADAY_SPECS",
    "MCNC_HARD_NAMES",
    "MCNC_NAMES",
    "MCNC_SPECS",
    "SyntheticSpec",
    "faraday_design",
    "faraday_suite",
    "generate_design",
    "mcnc_design",
    "mcnc_stress_design",
    "mcnc_suite",
]
