"""ASCII rendering of small routed windows (debugging and examples).

One character per grid cell on a chosen layer: ``|`` stitching line,
``-``/``=`` horizontal wire, ``!`` vertical wire, ``x`` via, ``o`` pin,
``.`` empty.  Layers are drawn separately because terminals are flat.
"""

from __future__ import annotations

from typing import Optional

from ..detailed import DetailedResult
from ..detailed.wiring import trim_dangling
from ..geometry import Rect


def render_layer_ascii(
    result: DetailedResult,
    layer: int,
    window: Optional[Rect] = None,
) -> str:
    """Text picture of one routing layer inside ``window``."""
    design = result.design
    assert design.stitches is not None
    window = window or design.bounds
    grid: list[list[str]] = [
        ["." for _ in range(window.width)] for _ in range(window.height)
    ]

    def put(x: int, y: int, ch: str) -> None:
        if window.lo_x <= x <= window.hi_x and window.lo_y <= y <= window.hi_y:
            grid[window.hi_y - y][x - window.lo_x] = ch

    for x in design.stitches.lines_in_range(window.lo_x, window.hi_x):
        for y in range(window.lo_y, window.hi_y + 1):
            put(x, y, "|")

    horizontal_mark = "-" if design.technology.is_horizontal(layer) else "="
    for record in result.nets.values():
        edges = trim_dangling(record.edges, record.pin_nodes)
        for a, b in sorted(edges):
            if a[2] != b[2]:
                if layer in (a[2], b[2]):
                    put(a[0], a[1], "x")
                continue
            if a[2] != layer:
                continue
            if a[1] == b[1]:
                put(a[0], a[1], horizontal_mark)
                put(b[0], b[1], horizontal_mark)
            else:
                put(a[0], a[1], "!")
                put(a[0], b[1], "!")
        for x, y, pin_layer in record.pin_nodes:
            if pin_layer == layer:
                put(x, y, "o")

    return "\n".join("".join(row) for row in grid)
