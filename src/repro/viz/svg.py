"""SVG rendering of routed layouts (Figs. 15 and 16).

Pure-Python SVG writer: wire segments colored per layer, stitching
lines dashed, vias as squares, pins as dots, short polygons
highlighted.  ``window`` crops to a local view for Fig. 16-style
close-ups.
"""

from __future__ import annotations

from typing import Optional

from ..detailed import DetailedResult
from ..detailed.wiring import short_polygon_sites, trim_dangling
from ..eval import edges_to_segments
from ..geometry import Orientation, Rect, WireSegment

#: Layer palette (1-based; cycles for deep stacks).
LAYER_COLORS = (
    "#1f77b4",  # layer 1 horizontal - blue
    "#d62728",  # layer 2 vertical   - red
    "#2ca02c",  # layer 3 horizontal - green
    "#9467bd",  # layer 4            - purple
    "#ff7f0e",  # layer 5            - orange
    "#8c564b",  # layer 6            - brown
)

_PX = 8  # pixels per routing pitch


def layer_color(layer: int) -> str:
    """Display color of a 1-based routing layer."""
    return LAYER_COLORS[(layer - 1) % len(LAYER_COLORS)]


def render_routing_svg(
    result: DetailedResult,
    window: Optional[Rect] = None,
    highlight_short_polygons: bool = True,
) -> str:
    """Full or windowed SVG view of a detailed routing result."""
    design = result.design
    assert design.stitches is not None
    window = window or design.bounds
    width_px = window.width * _PX
    height_px = window.height * _PX

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width_px}" height="{height_px}" '
        f'viewBox="0 0 {width_px} {height_px}">',
        f'<rect width="{width_px}" height="{height_px}" fill="#ffffff"/>',
    ]

    def sx(x: int) -> float:
        return (x - window.lo_x + 0.5) * _PX

    def sy(y: int) -> float:
        # SVG y grows downward; flip so the layout reads naturally.
        return (window.hi_y - y + 0.5) * _PX

    # Stitching lines first (under the wires).
    for line in design.stitches.lines_in_range(window.lo_x, window.hi_x):
        parts.append(
            f'<line x1="{sx(line)}" y1="0" x2="{sx(line)}" y2="{height_px}" '
            f'stroke="#888888" stroke-width="1.5" stroke-dasharray="6,4"/>'
        )

    sp_markers: list[tuple[int, int, int]] = []
    for name in sorted(result.nets):
        record = result.nets[name]
        edges = trim_dangling(record.edges, record.pin_nodes)
        if highlight_short_polygons:
            for _crossing, end in short_polygon_sites(
                edges, record.pin_nodes, design.stitches
            ):
                sp_markers.append(end)
        for seg in edges_to_segments(edges):
            parts.extend(_segment_svg(seg, window, sx, sy))
        for x, y, _layer in sorted(record.pin_nodes):
            if window.contains_rect(Rect(x, y, x, y)):
                parts.append(
                    f'<circle cx="{sx(x)}" cy="{sy(y)}" r="{_PX * 0.28:.1f}" '
                    f'fill="#000000"/>'
                )

    for x, y, _layer in sp_markers:
        if window.contains_rect(Rect(x, y, x, y)):
            parts.append(
                f'<circle cx="{sx(x)}" cy="{sy(y)}" r="{_PX * 0.8:.1f}" '
                f'fill="none" stroke="#ff00ff" stroke-width="2"/>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def _segment_svg(seg: WireSegment, window: Rect, sx, sy) -> list[str]:
    out: list[str] = []
    orient = seg.orientation
    if orient is Orientation.VIA:
        x, y = seg.a.x, seg.a.y
        if window.contains_rect(Rect(x, y, x, y)):
            half = _PX * 0.3
            out.append(
                f'<rect x="{sx(x) - half:.1f}" y="{sy(y) - half:.1f}" '
                f'width="{2 * half:.1f}" height="{2 * half:.1f}" '
                f'fill="#333333"/>'
            )
        return out
    box = Rect(seg.a.x, seg.a.y, seg.b.x, seg.b.y)
    clipped = box.clipped(window)
    if clipped is None:
        return out
    color = layer_color(seg.layer)
    out.append(
        f'<line x1="{sx(clipped.lo_x)}" y1="{sy(clipped.lo_y)}" '
        f'x2="{sx(clipped.hi_x)}" y2="{sy(clipped.hi_y)}" '
        f'stroke="{color}" stroke-width="{_PX * 0.45:.1f}" '
        f'stroke-linecap="round" opacity="0.85"/>'
    )
    return out
