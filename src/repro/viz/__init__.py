"""Layout visualization: SVG (Figs. 15-16) and ASCII debugging views."""

from .ascii_art import render_layer_ascii
from .svg import LAYER_COLORS, layer_color, render_routing_svg

__all__ = [
    "LAYER_COLORS",
    "layer_color",
    "render_layer_ascii",
    "render_routing_svg",
]
