"""Closed integer intervals and helpers for interval graphs.

Vertical routing segments within a panel are one-dimensional spans, so
interval arithmetic is the workhorse of layer and track assignment.  The
segment conflict graph of Section III-B is an *interval graph* — the
property that makes the max-weight k-colorable subproblem polynomial.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence


@dataclasses.dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"malformed interval: [{self.lo}, {self.hi}]")

    @property
    def length(self) -> int:
        """Number of integer positions covered (inclusive)."""
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the closed interval."""
        return self.lo <= value <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping interval, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def union_span(self, other: "Interval") -> "Interval":
        """The smallest interval covering both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def shifted(self, delta: int) -> "Interval":
        """A copy translated by ``delta``."""
        return Interval(self.lo + delta, self.hi + delta)


def max_overlap_density(intervals: Iterable[Interval]) -> int:
    """Maximum number of intervals covering any single point.

    This is the *segment density* of a panel: the minimum number of
    tracks required to assign all segments without overlap.
    """
    events: list[tuple[int, int]] = []
    for iv in intervals:
        events.append((iv.lo, 1))
        events.append((iv.hi + 1, -1))
    events.sort()
    best = 0
    current = 0
    for _, delta in events:
        current += delta
        best = max(best, current)
    return best


def point_density(intervals: Sequence[Interval], point: int) -> int:
    """Number of intervals containing ``point``."""
    return sum(1 for iv in intervals if iv.contains(point))


def overlapping_pairs(
    intervals: Sequence[Interval],
) -> list[tuple[int, int]]:
    """Indices ``(i, j)`` with ``i < j`` of every overlapping pair.

    Uses a sweep over sorted endpoints; output size is the number of
    edges of the interval graph.
    """
    order = sorted(range(len(intervals)), key=lambda i: intervals[i].lo)
    active: list[int] = []
    pairs: list[tuple[int, int]] = []
    for idx in order:
        iv = intervals[idx]
        active = [a for a in active if intervals[a].hi >= iv.lo]
        for a in active:
            pairs.append((min(a, idx), max(a, idx)))
        active.append(idx)
    pairs.sort()
    return pairs
