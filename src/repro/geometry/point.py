"""Integer grid points and rectangles.

All routing geometry lives on an integer grid whose unit is one routing
pitch.  ``Point`` is a 2-D location, ``GridPoint`` adds a routing layer
index, and ``Rect`` is a closed axis-aligned rectangle.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator


@dataclasses.dataclass(frozen=True, order=True)
class Point:
    """A 2-D integer grid location (x = column, y = row)."""

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def manhattan(self, other: "Point") -> int:
        """Manhattan distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclasses.dataclass(frozen=True, order=True)
class GridPoint:
    """A routing-grid node: 2-D location plus layer index (1-based)."""

    x: int
    y: int
    layer: int

    @property
    def point(self) -> Point:
        """The 2-D projection of this node."""
        return Point(self.x, self.y)

    def manhattan(self, other: "GridPoint") -> int:
        """Manhattan distance including one unit per layer hop."""
        return (
            abs(self.x - other.x)
            + abs(self.y - other.y)
            + abs(self.layer - other.layer)
        )


@dataclasses.dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle on the grid.

    ``lo_x <= hi_x`` and ``lo_y <= hi_y``; a degenerate rectangle with
    equal coordinates is a single point.
    """

    lo_x: int
    lo_y: int
    hi_x: int
    hi_y: int

    def __post_init__(self) -> None:
        if self.lo_x > self.hi_x or self.lo_y > self.hi_y:
            raise ValueError(f"malformed rectangle: {self}")

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """Bounding box of two points."""
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @property
    def width(self) -> int:
        """Number of grid columns covered (inclusive)."""
        return self.hi_x - self.lo_x + 1

    @property
    def height(self) -> int:
        """Number of grid rows covered (inclusive)."""
        return self.hi_y - self.lo_y + 1

    @property
    def area(self) -> int:
        """Number of grid cells covered."""
        return self.width * self.height

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside this closed rectangle."""
        return self.lo_x <= p.x <= self.hi_x and self.lo_y <= p.y <= self.hi_y

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.lo_x <= other.lo_x
            and self.lo_y <= other.lo_y
            and other.hi_x <= self.hi_x
            and other.hi_y <= self.hi_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the closed rectangles share at least one grid cell."""
        return not (
            other.hi_x < self.lo_x
            or self.hi_x < other.lo_x
            or other.hi_y < self.lo_y
            or self.hi_y < other.lo_y
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.lo_x, other.lo_x),
            max(self.lo_y, other.lo_y),
            min(self.hi_x, other.hi_x),
            min(self.hi_y, other.hi_y),
        )

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of both rectangles."""
        return Rect(
            min(self.lo_x, other.lo_x),
            min(self.lo_y, other.lo_y),
            max(self.hi_x, other.hi_x),
            max(self.hi_y, other.hi_y),
        )

    def expanded(self, margin: int) -> "Rect":
        """A copy grown by ``margin`` cells on every side."""
        return Rect(
            self.lo_x - margin,
            self.lo_y - margin,
            self.hi_x + margin,
            self.hi_y + margin,
        )

    def clipped(self, bounds: "Rect") -> "Rect | None":
        """This rectangle clipped to ``bounds`` (``None`` if outside)."""
        return self.intersection(bounds)

    def points(self) -> Iterator[Point]:
        """Iterate over every grid cell in the rectangle."""
        for y in range(self.lo_y, self.hi_y + 1):
            for x in range(self.lo_x, self.hi_x + 1):
                yield Point(x, y)
