"""Grid geometry primitives: points, rectangles, intervals, segments."""

from .point import GridPoint, Point, Rect
from .interval import (
    Interval,
    max_overlap_density,
    overlapping_pairs,
    point_density,
)
from .segment import (
    Orientation,
    WireSegment,
    merge_colinear,
    path_to_segments,
)

__all__ = [
    "GridPoint",
    "Point",
    "Rect",
    "Interval",
    "max_overlap_density",
    "overlapping_pairs",
    "point_density",
    "Orientation",
    "WireSegment",
    "merge_colinear",
    "path_to_segments",
]
