"""Rectilinear wire segments.

A :class:`WireSegment` is a maximal straight run of routed wire on one
layer: horizontal (constant ``y``), vertical (constant ``x``), or a via
(zero 2-D extent, connecting two adjacent layers at one location).
Detailed routes decompose into wire segments; the violation checker and
the rasterizer both consume this representation.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterable, Iterator, Sequence

from .point import GridPoint
from .interval import Interval


class Orientation(enum.Enum):
    """Direction of a wire segment."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"
    VIA = "via"


@dataclasses.dataclass(frozen=True)
class WireSegment:
    """A maximal straight piece of routed wire.

    ``a`` and ``b`` are the endpoints in grid coordinates; for a via they
    share ``(x, y)`` and differ by exactly one layer.  Endpoints are
    normalized so that ``a <= b`` component-wise along the varying axis.
    """

    a: GridPoint
    b: GridPoint

    def __post_init__(self) -> None:
        diffs = (
            (self.a.x != self.b.x)
            + (self.a.y != self.b.y)
            + (self.a.layer != self.b.layer)
        )
        if diffs > 1:
            raise ValueError(f"segment is not axis-aligned: {self.a} -> {self.b}")
        if self.a > self.b:
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)

    @property
    def orientation(self) -> Orientation:
        """Whether this run is horizontal, vertical, or a via."""
        if self.a.layer != self.b.layer:
            return Orientation.VIA
        if self.a.y != self.b.y:
            return Orientation.VERTICAL
        # A single grid point defaults to horizontal; callers that care
        # about zero-length stubs should filter on ``length``.
        return Orientation.HORIZONTAL

    @property
    def length(self) -> int:
        """Grid length of the run (0 for a single point; 1 per layer hop)."""
        return self.a.manhattan(self.b)

    @property
    def layer(self) -> int:
        """Layer of a planar segment (lower layer for a via)."""
        return min(self.a.layer, self.b.layer)

    @property
    def span(self) -> Interval:
        """The varying-axis interval covered by a planar segment."""
        if self.orientation is Orientation.VERTICAL:
            return Interval(self.a.y, self.b.y)
        return Interval(self.a.x, self.b.x)

    def points(self) -> Iterator[GridPoint]:
        """Every grid node covered by the segment, endpoints included."""
        if self.orientation is Orientation.VIA:
            for layer in range(self.a.layer, self.b.layer + 1):
                yield GridPoint(self.a.x, self.a.y, layer)
        elif self.orientation is Orientation.VERTICAL:
            for y in range(self.a.y, self.b.y + 1):
                yield GridPoint(self.a.x, y, self.a.layer)
        else:
            for x in range(self.a.x, self.b.x + 1):
                yield GridPoint(x, self.a.y, self.a.layer)


def path_to_segments(path: Sequence[GridPoint]) -> list[WireSegment]:
    """Decompose a grid path into maximal straight wire segments.

    ``path`` is an ordered list of adjacent grid nodes (each consecutive
    pair differs by one step in exactly one of x, y, or layer), as
    produced by the detailed router.  Consecutive co-linear steps merge
    into a single segment.  A single-node path yields no segments.
    """
    if len(path) < 2:
        return []
    segments: list[WireSegment] = []
    run_start = path[0]
    prev = path[0]

    def axis(p: GridPoint, q: GridPoint) -> str:
        if p.layer != q.layer:
            return "z"
        if p.y != q.y:
            return "y"
        return "x"

    current_axis: str | None = None
    for node in path[1:]:
        if node.manhattan(prev) != 1:
            raise ValueError(f"non-adjacent path nodes: {prev} -> {node}")
        step_axis = axis(prev, node)
        if current_axis is None:
            current_axis = step_axis
        elif step_axis != current_axis:
            segments.append(WireSegment(run_start, prev))
            run_start = prev
            current_axis = step_axis
        prev = node
    segments.append(WireSegment(run_start, prev))
    return segments


def merge_colinear(segments: Iterable[WireSegment]) -> list[WireSegment]:
    """Merge overlapping/abutting co-linear planar segments.

    Vias are passed through unchanged.  Used to compute the *polygons*
    a net contributes to a layer before violation checking: two routes
    of the same net sharing a track form one electrical wire.
    """
    vias: list[WireSegment] = []
    runs: dict[tuple[str, int, int], list[Interval]] = {}
    for seg in segments:
        orient = seg.orientation
        if orient is Orientation.VIA:
            vias.append(seg)
            continue
        key = (
            ("h", seg.layer, seg.a.y)
            if orient is Orientation.HORIZONTAL
            else ("v", seg.layer, seg.a.x)
        )
        runs.setdefault(key, []).append(seg.span)

    merged: list[WireSegment] = []
    for (kind, layer, fixed), spans in sorted(runs.items()):
        spans.sort()
        acc = spans[0]
        out: list[Interval] = []
        for iv in spans[1:]:
            if iv.lo <= acc.hi + 1:
                acc = acc.union_span(iv)
            else:
                out.append(acc)
                acc = iv
        out.append(acc)
        for iv in out:
            if kind == "h":
                merged.append(
                    WireSegment(
                        GridPoint(iv.lo, fixed, layer),
                        GridPoint(iv.hi, fixed, layer),
                    )
                )
            else:
                merged.append(
                    WireSegment(
                        GridPoint(fixed, iv.lo, layer),
                        GridPoint(fixed, iv.hi, layer),
                    )
                )
    return merged + vias
