"""The two-pass bottom-up routing framework driver (Fig. 6).

Pass 1 walks the coarsening hierarchy bottom-up and finds the global
route of each net at the level where it becomes local.  An intermediate
stage then performs layer/track assignment on the completed global
routing solution, and pass 2 walks bottom-up again performing detailed
routing (pin-to-segment and segment-to-segment) with rip-up and
re-route for failed nets.

The driver is deliberately generic: the three stages are injected as
callables, so the stitch-aware flow and the baseline flow of Table III
share the exact same orchestration and differ only in stage policies.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable
from typing import Generic, Optional, TypeVar

from ..layout import Design, Net
from ..observe import Tracer, ensure
from ..parallel import net_rect, plan_batches
from .scheme import MultilevelScheme

GlobalResultT = TypeVar("GlobalResultT")
AssignResultT = TypeVar("AssignResultT")
DetailResultT = TypeVar("DetailResultT")


@dataclasses.dataclass
class TwoPassOutcome(Generic[GlobalResultT, AssignResultT, DetailResultT]):
    """Everything produced by one two-pass run."""

    global_result: GlobalResultT
    assign_result: AssignResultT
    detail_result: DetailResultT
    level_order: list[list[Net]]
    cpu_seconds: float


class TwoPassFramework(Generic[GlobalResultT, AssignResultT, DetailResultT]):
    """Orchestrates pass 1 -> assignment -> pass 2 (Fig. 6).

    Args:
        global_stage: callable ``(design, ordered_nets) -> G`` that
            globally routes the nets in the given bottom-up order.
        assign_stage: callable ``(design, G) -> A`` performing
            layer/track assignment on the global routing solution.
        detail_stage: callable ``(design, G, A, ordered_nets) -> D``
            performing detailed routing in bottom-up order.
        workers: worker-thread count the stages will route with (the
            ``RouterConfig.workers`` knob).  The driver itself never
            spawns threads; with ``workers > 1`` it annotates each
            hierarchy level's span with the level's net-batch profile
            (batch count and widths), so a trace shows how much
            concurrency each level offers before the stages run.
    """

    def __init__(
        self,
        global_stage: Callable[[Design, list[Net]], GlobalResultT],
        assign_stage: Callable[[Design, GlobalResultT], AssignResultT],
        detail_stage: Callable[
            [Design, GlobalResultT, AssignResultT, list[Net]], DetailResultT
        ],
        workers: int = 1,
    ) -> None:
        self._global_stage = global_stage
        self._assign_stage = assign_stage
        self._detail_stage = detail_stage
        self._workers = workers

    def run(
        self,
        design: Design,
        scheme: MultilevelScheme,
        tracer: Optional[Tracer] = None,
    ) -> TwoPassOutcome[GlobalResultT, AssignResultT, DetailResultT]:
        """Execute the two bottom-up passes on ``design``.

        Args:
            design: the routing instance.
            scheme: the coarsening hierarchy assigning nets to levels.
            tracer: observability sink; each pass gets its own span, and
                the injected stage callables run inside it (stages that
                accept a tracer nest their own spans underneath).
        """
        tracer = ensure(tracer)
        start = time.perf_counter()
        with tracer.span("levelize", levels=scheme.num_levels):
            by_level = scheme.nets_by_level()
            level_order = [
                sorted(
                    by_level.get(level, []), key=lambda n: (n.hpwl, n.name)
                )
                for level in range(scheme.num_levels)
            ]
            ordered = [net for level in level_order for net in level]
            for level, nets in enumerate(level_order):
                with tracer.span("level", level=level, nets=len(nets)) as span:
                    if self._workers > 1 and nets:
                        plan = plan_batches(nets, rect_of=net_rect)
                        span.gauge("parallel_batches_planned", len(plan))
                        span.gauge("parallel_max_batch_width", plan.max_width)
                        span.gauge(
                            "parallel_mean_batch_width",
                            round(plan.mean_width, 3),
                        )

        with tracer.span("pass1"):
            global_result = self._global_stage(design, ordered)
        with tracer.span("assign"):
            assign_result = self._assign_stage(design, global_result)
        with tracer.span("pass2"):
            detail_result = self._detail_stage(
                design, global_result, assign_result, ordered
            )
        return TwoPassOutcome(
            global_result=global_result,
            assign_result=assign_result,
            detail_result=detail_result,
            level_order=level_order,
            cpu_seconds=time.perf_counter() - start,
        )
