"""Two-pass bottom-up multilevel routing framework (Section II-B)."""

from .framework import TwoPassFramework, TwoPassOutcome
from .scheme import CoarseTile, MultilevelScheme

__all__ = [
    "CoarseTile",
    "MultilevelScheme",
    "TwoPassFramework",
    "TwoPassOutcome",
]
