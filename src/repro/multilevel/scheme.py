"""Bottom-up coarsening scheme (Section II-B).

The routing plane starts as a grid of level-0 tiles; each coarsening
step merges 2x2 tiles into one.  A net is *local at level i* when all
its pins fall into a single level-i tile; the bottom-up passes route
each net at the first level where it becomes local, so short nets are
committed before long ones — the property that makes local effects
like stitching-line constraints optimizable (Section II-B).
"""

from __future__ import annotations

import dataclasses

from ..layout import Design, Net

Tile = tuple[int, int]


@dataclasses.dataclass(frozen=True)
class CoarseTile:
    """A tile at some coarsening level."""

    level: int
    x: int
    y: int


class MultilevelScheme:
    """Maps nets and level-0 tiles through the coarsening hierarchy.

    Args:
        design: the routing instance.
        nx, ny: level-0 tile grid dimensions (from the global graph).
    """

    def __init__(self, design: Design, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError("tile grid must be non-empty")
        self.design = design
        self.nx = nx
        self.ny = ny
        levels = 0
        extent = max(nx, ny)
        while (1 << levels) < extent:
            levels += 1
        #: Number of coarsening steps until a single tile remains.
        self.num_levels = levels + 1

    def tile_at_level(self, tile0: Tile, level: int) -> Tile:
        """Coarse tile containing level-0 tile ``tile0`` at ``level``."""
        self._check_level(level)
        return (tile0[0] >> level, tile0[1] >> level)

    def grid_at_level(self, level: int) -> tuple[int, int]:
        """Coarse grid dimensions at ``level``."""
        self._check_level(level)
        step = 1 << level
        return ((self.nx + step - 1) // step, (self.ny + step - 1) // step)

    def tile0_of(self, x: int, y: int) -> Tile:
        """Level-0 tile of grid cell ``(x, y)``."""
        t = self.design.config.tile_size
        return (
            min(x // t, self.nx - 1),
            min(y // t, self.ny - 1),
        )

    def net_level(self, net: Net) -> int:
        """First level at which ``net`` is local.

        Level 0 means all pins share one level-0 tile; the maximum is
        ``num_levels - 1``, where the whole plane is a single tile.
        """
        box = net.bbox
        lo = self.tile0_of(box.lo_x, box.lo_y)
        hi = self.tile0_of(box.hi_x, box.hi_y)
        for level in range(self.num_levels):
            if self.tile_at_level(lo, level) == self.tile_at_level(hi, level):
                return level
        return self.num_levels - 1

    def nets_by_level(self) -> dict[int, list[Net]]:
        """Nets grouped by the level at which they become local."""
        groups: dict[int, list[Net]] = {}
        for net in self.design.netlist:
            groups.setdefault(self.net_level(net), []).append(net)
        return groups

    def bottom_up_order(self) -> list[Net]:
        """All nets, lowest locality level first (ties by HPWL, name)."""
        return sorted(
            self.design.netlist,
            key=lambda n: (self.net_level(n), n.hpwl, n.name),
        )

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ValueError(
                f"level {level} outside hierarchy of {self.num_levels} levels"
            )
