"""Wire-edge utilities shared by the router and the evaluator.

A wire *edge* is a pair of adjacent grid nodes physically connected by
metal or a via.  The router trims each net right after connecting it
(releasing never-used trunk metal back to the grid — real routers'
cleanup, and essential for routability since untrimmed trunks would
block later pins); the evaluator re-uses the same trimming for its
reports.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from ..geometry import GridPoint, Interval, Orientation, WireSegment
from ..layout import StitchingLines
from .grid import Node

Edge = tuple[Node, Node]


def canonical_edge(a: Node, b: Node) -> Edge:
    """Order-normalized edge between two adjacent nodes."""
    if sum(abs(p - q) for p, q in zip(a, b)) != 1:
        raise ValueError(f"nodes {a} and {b} are not adjacent")
    return (a, b) if a <= b else (b, a)


def path_edges(path: Sequence[Node]) -> set[Edge]:
    """Order-normalized wire edges of an ordered node path.

    Validates adjacency: a gap in the path would silently fabricate
    diagonal "wire", which every consumer downstream (trimming,
    violation checking, rendering) would misinterpret.
    """
    out: set[Edge] = set()
    for a, b in zip(path, path[1:]):
        if abs(a[0] - b[0]) + abs(a[1] - b[1]) + abs(a[2] - b[2]) != 1:
            raise ValueError(f"non-adjacent path nodes: {a} -> {b}")
        out.add((a, b) if a <= b else (b, a))
    return out


def nodes_of_edges(edges: set[Edge]) -> set[Node]:
    """All endpoints of an edge set."""
    return {node for edge in edges for node in edge}


def trim_dangling(edges: set[Edge], anchors: set[Node]) -> set[Edge]:
    """Remove edges hanging off non-anchor degree-1 nodes.

    Repeatedly peels leaf edges whose leaf endpoint is not an anchor
    (pin) until every remaining leaf is an anchor or a cycle remains.
    """
    # Leaf peeling is confluent: whatever order edges are indexed and
    # leaves are peeled in, the surviving edge set is the same.
    incident: dict[Node, set[Edge]] = defaultdict(set)
    for edge in edges:  # repro: allow-DET001 confluent reduction
        incident[edge[0]].add(edge)
        incident[edge[1]].add(edge)
    alive = set(edges)
    frontier = [
        node
        for node, inc in incident.items()
        if len(inc) == 1 and node not in anchors
    ]
    while frontier:
        node = frontier.pop()
        inc = incident.get(node, set())
        if len(inc) != 1 or node in anchors:
            continue
        (edge,) = inc
        if edge not in alive:
            continue
        alive.discard(edge)
        for endpoint in edge:
            incident[endpoint].discard(edge)
            if len(incident[endpoint]) == 1 and endpoint not in anchors:
                frontier.append(endpoint)
    return alive


def edges_to_segments(edges: set[Edge]) -> list[WireSegment]:
    """Merge collinear unit edges into maximal wire segments."""
    # Group contents are canonicalized downstream: groups are consumed
    # via sorted(...) and run starts via sorted(set(...)).
    groups: dict[tuple[str, int, int], list[int]] = defaultdict(list)
    for a, b in edges:  # repro: allow-DET001 output canonicalized below
        a0, a1, a2 = a
        b0 = b[0]
        if a0 != b0:
            groups[("x", a1, a2)].append(a0 if a0 < b0 else b0)
        else:
            b1 = b[1]
            if a1 != b1:
                groups[("y", a0, a2)].append(a1 if a1 < b1 else b1)
            else:
                b2 = b[2]
                groups[("z", a0, a1)].append(a2 if a2 < b2 else b2)

    segments: list[WireSegment] = []
    for (axis, c1, c2), starts in sorted(groups.items()):
        for lo, hi in _edge_runs(starts):
            if axis == "x":
                seg = WireSegment(GridPoint(lo, c1, c2), GridPoint(hi + 1, c1, c2))
            elif axis == "y":
                seg = WireSegment(GridPoint(c1, lo, c2), GridPoint(c1, hi + 1, c2))
            else:
                seg = WireSegment(GridPoint(c1, c2, lo), GridPoint(c1, c2, hi + 1))
            segments.append(seg)
    return segments


def _edge_runs(starts: Iterable[int]) -> list[tuple[int, int]]:
    """Maximal runs of consecutive unit-edge start coordinates."""
    ordered = sorted(set(starts))
    runs: list[tuple[int, int]] = []
    if not ordered:
        return runs
    begin = prev = ordered[0]
    for v in ordered[1:]:
        if v == prev + 1:
            prev = v
            continue
        runs.append((begin, prev))
        begin = prev = v
    runs.append((begin, prev))
    return runs


def via_landing_points(edges: set[Edge], pins: set[Node]) -> set[Node]:
    """(x, y, layer) points where a via (or a pin contact) lands."""
    landings: set[Node] = set()
    for a, b in edges:  # repro: allow-DET001 building a set; order-free
        if a[2] != b[2]:
            landings.add(a)
            landings.add(b)
    landings.update(pins)
    return landings


def short_polygon_sites(
    edges: set[Edge], pins: set[Node], stitches: StitchingLines
) -> list[tuple[Node, Node]]:
    """Short polygons of a net's trimmed geometry (Fig. 5c).

    Returns one ``(crossing_node, end_node)`` pair per short polygon:
    the node where the offending horizontal wire crosses the stitching
    line, and the wire's bad line end.  The count equals the #SP
    contribution of this net; the crossing nodes are what a repair
    pass blocks when re-routing.
    """
    epsilon = stitches.epsilon
    landings = via_landing_points(edges, pins)
    sites: list[tuple[Node, Node]] = []
    for seg in edges_to_segments(edges):
        if seg.orientation is not Orientation.HORIZONTAL or seg.length == 0:
            continue
        y, layer = seg.a.y, seg.a.layer
        span = Interval(seg.a.x, seg.b.x)
        for line in stitches.lines_crossing(span):
            for end_x in (seg.a.x, seg.b.x):
                if 0 < abs(end_x - line) <= epsilon and (
                    (end_x, y, layer) in landings
                ):
                    sites.append(((line, y, layer), (end_x, y, layer)))
    return sites
