"""A*-search detailed path finding (Section III-D).

Connects a source component of a net to any node of a target set under
the stitch-aware weighted grid cost of Eq. (10).  The search runs
inside an expanding window around the endpoints; the cost function and
hard-constraint filtering live in :class:`~repro.detailed.grid.DetailedGrid`.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from typing import Optional

from ..analysis.pairing import paired
from .grid import DetailedGrid, Node


@paired("detailed-astar", backend="object")
def astar_connect(
    grid: DetailedGrid,
    net: str,
    sources: set[Node],
    targets: set[Node],
    window: tuple[int, int, int, int],
    expansion_limit: int,
    blocked: Optional[set[Node]] = None,
    foreign_penalty: Optional[float] = None,
    stats: Optional[dict[str, float]] = None,
    profile: bool = False,
) -> Optional[list[Node]]:
    """Cheapest path from any source to any target inside ``window``.

    Args:
        grid: the routing grid (cost model + occupancy).
        net: the net being routed (its own nodes are passable).
        sources: starting nodes (cost 0).
        targets: success condition — reaching any one ends the search.
        window: inclusive (lo_x, lo_y, hi_x, hi_y) search bounds.
        expansion_limit: node-expansion budget.
        blocked: extra nodes this search must not enter (used by the
            short-polygon repair pass to forbid a line crossing).
        foreign_penalty: when set, other nets' non-pin wire becomes
            passable at this extra cost per node (negotiated rip-up).
        stats: mutable counter dict; ``astar_searches`` and
            ``astar_expansions`` are accumulated into it.
        profile: additionally flush ``perf_heap_pushes`` /
            ``perf_heap_pops`` into ``stats``.  The counts are kept as
            plain local increments either way, so the flag costs one
            branch per *search*, not per node — ``profile="off"`` runs
            stay byte- and wall-identical.

    Returns:
        The node path from a source to a target, or ``None``.
    """
    if stats is not None:
        stats["astar_searches"] = (  # repro: allow-PAR001 object-only entry counter
            stats.get("astar_searches", 0) + 1
        )
    if not sources or not targets:
        return None
    if sources & targets:
        # Any shared node is already a complete source-to-target path;
        # nodes are int-coordinate tuples, so the set order behind this
        # pick is hash-seed independent and reproducible as committed.
        node = next(iter(sources & targets))  # repro: allow-DET005
        return [node]
    indexed = getattr(grid, "indexed_search", None)
    if indexed is not None:
        # Array-core fast path (repro.engine): same loop over flat
        # node ids, byte-identical result and counters.  Sanitized
        # overlays expose no indexed_search, so instrumented runs fall
        # through to the reference loop below.
        return indexed(
            net,
            sources,
            targets,
            window,
            expansion_limit,
            blocked=blocked,
            foreign_penalty=foreign_penalty,
            stats=stats,
            profile=profile,
        )
    lo_x, lo_y, hi_x, hi_y = window

    # O(1) heuristic: distance to the targets' bounding box, weighted
    # slightly above admissible (bounded-suboptimal A*, standard in
    # detailed routers: large speedup for a <=30% path-cost bound).
    t_lo_x = min(t[0] for t in targets)
    t_hi_x = max(t[0] for t in targets)
    t_lo_y = min(t[1] for t in targets)
    t_hi_y = max(t[1] for t in targets)
    weight = 1.3 * grid.config.alpha

    def heuristic(node: Node) -> float:
        x, y, _ = node
        dx = (t_lo_x - x) if x < t_lo_x else (x - t_hi_x) if x > t_hi_x else 0
        dy = (t_lo_y - y) if y < t_lo_y else (y - t_hi_y) if y > t_hi_y else 0
        return weight * (dx + dy)

    # Seeding order over the source set is immaterial: best_g is a pure
    # mapping, and heap entries are totally ordered by (f, g, node), so
    # pop order never depends on insertion order.
    best_g: dict[Node, float] = {
        s: 0.0 for s in sources  # repro: allow-DET001
    }
    parent: dict[Node, Node] = {}
    heap: list[tuple[float, float, Node]] = [
        (heuristic(s), 0.0, s) for s in sources  # repro: allow-DET001
    ]
    heapq.heapify(heap)
    expansions = 0
    pushes = len(heap)
    pops = 0
    try:
        while heap:
            _, g, node = heapq.heappop(heap)
            pops += 1
            if g > best_g.get(node, float("inf")):
                continue
            if node in targets:
                return _reconstruct(parent, sources, node)
            expansions += 1
            if expansions > expansion_limit:
                return None
            for succ, step in grid.neighbors(node, net, foreign_penalty):
                if not (lo_x <= succ[0] <= hi_x and lo_y <= succ[1] <= hi_y):
                    continue
                if blocked is not None and succ in blocked:
                    continue
                candidate = g + step
                if candidate < best_g.get(succ, float("inf")) - 1e-12:
                    best_g[succ] = candidate
                    parent[succ] = node
                    pushes += 1
                    heapq.heappush(
                        heap, (candidate + heuristic(succ), candidate, succ)
                    )
        return None
    finally:
        # Hot loop: count locally, flush once per search.
        if stats is not None:
            stats["astar_expansions"] = (
                stats.get("astar_expansions", 0) + expansions
            )
            if profile:
                stats["perf_heap_pushes"] = (
                    stats.get("perf_heap_pushes", 0) + pushes
                )
                stats["perf_heap_pops"] = stats.get("perf_heap_pops", 0) + pops


def _reconstruct(
    parent: dict[Node, Node], sources: set[Node], end: Node
) -> list[Node]:
    path = [end]
    while path[-1] not in sources:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def connection_window(
    sources: Iterable[Node],
    targets: Iterable[Node],
    margin: int,
    width: int,
    height: int,
) -> tuple[int, int, int, int]:
    """Bounding window of two node sets, expanded by ``margin``."""
    xs = [n[0] for n in sources] + [n[0] for n in targets]
    ys = [n[1] for n in sources] + [n[1] for n in targets]
    return (
        max(0, min(xs) - margin),
        max(0, min(ys) - margin),
        min(width - 1, max(xs) + margin),
        min(height - 1, max(ys) + margin),
    )
