"""Materialize track-assigned segments into detailed wire trunks.

Pass 2 of the framework performs pin-to-segment and segment-to-segment
detailed routing: the layer/track-assigned segments become fixed wire
*trunks* on the detailed grid, and A* only has to make the (local)
connections.  A vertical segment whose track assignment doglegs gets a
short wrong-way jog on its own layer at the tile boundary (the classic
dogleg of Fig. 11e / Fig. 16b).

Nets whose track assignment failed are ripped up here — none of their
trunks are materialized — and will be routed directly by the detailed
router (Section IV-A).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from typing import Optional

from ..assign import DesignTrackAssignment, TrackAssignmentResult
from ..globalroute import GlobalGraph
from ..layout import Design
from .grid import DetailedGrid, Node


@dataclasses.dataclass
class TrunkPiece:
    """One contiguous materialized wire piece of a net."""

    net: str
    nodes: list[Node]

    @property
    def node_set(self) -> set[Node]:
        """The nodes as a set (connectivity component seed)."""
        return set(self.nodes)


def materialize_trunks(
    design: Design,
    grid: DetailedGrid,
    graph: GlobalGraph,
    assignment: DesignTrackAssignment,
) -> dict[str, list[TrunkPiece]]:
    """Place every surviving segment's wire onto the grid.

    Returns the trunk pieces per net.  Pieces are split wherever a
    foreign node (e.g. another net's pin) blocks the run; the detailed
    router reconnects the parts.
    """
    pieces: dict[str, list[TrunkPiece]] = {}
    tile = design.config.tile_size

    for (_pos, layer), result in sorted(assignment.columns.items()):
        _materialize_panel(
            result,
            vertical=True,
            layer=layer,
            tile=tile,
            extent=design.height,
            grid=grid,
            skip_nets=assignment.failed_nets,
            out=pieces,
        )
    for (_pos, layer), result in sorted(assignment.rows.items()):
        _materialize_panel(
            result,
            vertical=False,
            layer=layer,
            tile=tile,
            extent=design.width,
            grid=grid,
            skip_nets=assignment.failed_nets,
            out=pieces,
        )
    return pieces


def _materialize_panel(
    result: TrackAssignmentResult,
    vertical: bool,
    layer: int,
    tile: int,
    extent: int,
    grid: DetailedGrid,
    skip_nets: set[str],
    out: dict[str, list[TrunkPiece]],
) -> None:
    by_index = {seg.index: seg for seg in result.panel.segments}
    for seg_index, per_row in sorted(result.tracks.items()):
        seg = by_index[seg_index]
        if seg.net in skip_nets:
            continue
        nodes = _segment_nodes(per_row, vertical, layer, tile, extent)
        for run in _split_on_blockage(nodes, grid, seg.net):
            piece = TrunkPiece(net=seg.net, nodes=run)
            for node in run:
                grid.occupy(node, seg.net)
            out.setdefault(seg.net, []).append(piece)


def _segment_nodes(
    per_row: dict[int, int],
    vertical: bool,
    layer: int,
    tile: int,
    extent: int,
) -> list[Node]:
    """Ordered nodes of one trunk, including dogleg jogs."""
    nodes: list[Node] = []
    rows = sorted(per_row)
    previous_track: Optional[int] = None
    for row in rows:
        track = per_row[row]
        lo = row * tile
        hi = min((row + 1) * tile, extent) - 1
        if previous_track is not None and track != previous_track:
            # Wrong-way jog at the tile boundary on the same layer; it
            # starts above the old track (corner included) so the run
            # stays contiguous.
            step = 1 if track > previous_track else -1
            for jx in range(previous_track, track + step, step):
                nodes.append(
                    (jx, lo, layer) if vertical else (lo, jx, layer)
                )
            # The jog lands on the first node of this row's run.
            for coord in range(lo + 1, hi + 1):
                nodes.append(
                    (track, coord, layer) if vertical else (coord, track, layer)
                )
        else:
            for coord in range(lo, hi + 1):
                nodes.append(
                    (track, coord, layer) if vertical else (coord, track, layer)
                )
        previous_track = track
    return nodes


def _split_on_blockage(
    nodes: Sequence[Node], grid: DetailedGrid, net: str
) -> list[list[Node]]:
    """Split a node run at foreign-owned or out-of-bounds nodes."""
    runs: list[list[Node]] = []
    current: list[Node] = []
    for node in nodes:
        if grid.is_free_for(node, net):
            current.append(node)
        elif current:
            runs.append(current)
            current = []
    if current:
        runs.append(current)
    return runs
