"""Speculative-routing overlay for the detailed routing grid.

A worker thread in the parallel net-batch engine (see
:mod:`repro.parallel`) connects its net against a
:class:`GridOverlay`: reads see the grid as of the batch barrier plus
the net's own writes, writes are buffered as a replayable delta, and
the exact read/write node sets are captured so the merge loop can
prove — net by net, in canonical serial order — that the speculative
result equals the serial one.  A net whose reads touch an earlier
batch-mate's writes is discarded and re-routed on the live grid.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.context import context
from .grid import DetailedGrid, Node


class _OwnerOverlay:
    """Ownership mapping that shadows a base dict and logs access.

    Presents the ``get`` / ``__setitem__`` / ``__delitem__`` surface
    :class:`DetailedGrid` uses on its ``_owner`` dict.  Deletions are
    tombstoned so a released base-owned node reads back as free.
    """

    __slots__ = ("_base", "local", "reads", "writes")

    #: Marks a node released in the overlay while still set in base.
    TOMBSTONE = "\0released"

    def __init__(self, base: dict[Node, str]) -> None:
        self._base = base
        #: node -> net name, or TOMBSTONE for overlay-released nodes.
        self.local: dict[Node, str] = {}
        #: every node whose ownership the worker observed.
        self.reads: set[Node] = set()
        #: every node the worker wrote (claimed or released).
        self.writes: set[Node] = set()

    def get(self, node: Node, default: Optional[str] = None) -> Optional[str]:
        self.reads.add(node)
        value = self.local.get(node)
        if value is None:
            return self._base.get(node, default)
        if value is _OwnerOverlay.TOMBSTONE:
            return default
        return value

    def __setitem__(self, node: Node, net: str) -> None:
        self.writes.add(node)
        self.local[node] = net

    def __delitem__(self, node: Node) -> None:
        self.writes.add(node)
        self.local[node] = _OwnerOverlay.TOMBSTONE


class GridOverlay(DetailedGrid):
    """A :class:`DetailedGrid` whose ownership writes are buffered.

    Geometry caches, the pin set, and the base ownership dict are
    shared by reference (all frozen while a batch is in flight); every
    ownership access goes through an :class:`_OwnerOverlay`, giving
    the merge loop exact read/write node sets.  ``cost_evaluations``
    starts at zero so accepted counts merge additively.
    """

    def __init__(self, base: DetailedGrid) -> None:
        # Deliberately skips DetailedGrid.__init__ (per-x precomputes
        # are borrowed, not rebuilt).
        self.design = base.design
        self.config = base.config
        self.tech = base.tech
        self.stitches = base.stitches
        self.stitch_aware = base.stitch_aware
        self._pins = base._pins
        self._on_line = base._on_line
        self._unfriendly = base._unfriendly
        self._escape = base._escape
        self._vertical = base._vertical
        self._num_layers = base._num_layers
        self._width = base._width
        self._height = base._height
        self.cost_evaluations = 0
        self._owner = _OwnerOverlay(base._owner)

    # -- speculative-result plumbing -----------------------------------
    @property
    def read_nodes(self) -> set[Node]:
        """Nodes whose ownership this overlay observed."""
        return self._owner.reads

    @property
    def write_nodes(self) -> set[Node]:
        """Nodes this overlay wrote (claimed or released)."""
        return self._owner.writes

    @context("canonical", reads=("grid.owner",), writes=("grid.owner",))
    def apply_to(self, base: DetailedGrid, net: str) -> None:
        """Replay the buffered ownership delta onto ``base``.

        Valid only when the merge loop has proven the overlay conflict
        free; every write then lands exactly as the serial router's
        would have.  The delta holds each written node's *final*
        speculative state: claims replay through
        :meth:`DetailedGrid.force_occupy` (evicting other nets' wire
        exactly as negotiated rip-up did speculatively), and
        tombstones free the node *whatever base currently says* — a
        node the search force-claimed from a foreign net and then
        trimmed away ends up free in the serial run, even though the
        base grid still shows the evicted owner.
        """
        for node, value in self._owner.local.items():
            if value is _OwnerOverlay.TOMBSTONE:
                current = base.owner(node)
                if current is not None:
                    base.release(node, current)
            else:
                base.force_occupy(node, value)
        base.cost_evaluations += self.cost_evaluations
