"""Stitch-aware detailed routing (Section III-D).

Connects each net's pins and trunk pieces into one electrically
connected tree with A* searches under the Eq. (10) cost, using:

* **stitch-aware net ordering** — nets with more bad ends from track
  assignment are routed first so their escapes still find resources
  (Fig. 14);
* **rip-up and re-route** — nets that fail in the first pass are fully
  ripped and re-routed with wider search windows, mirroring the second
  bottom-up pass of the framework.

The baseline mode (``stitch_aware=False``) keeps the hard MEBL
constraints (wires cross stitching lines in the x direction only, no
vias on lines except fixed pins — Section IV-A gives the baseline the
same legality) but drops the beta/gamma costs and uses conventional
net ordering.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from collections.abc import Sequence
from typing import Optional, Union

from ..analysis.context import context
from ..assign import DesignTrackAssignment
from ..engine.deltas import OverlayDelta
from ..globalroute import GlobalGraph
from ..layout import Design, Net
from ..observe import Span, Tracer, ensure
from ..parallel import (
    BatchExecutor,
    ProcessBatchExecutor,
    SharedStateChannel,
    plan_batches,
)
from .grid import DetailedGrid, Node
from .overlay import GridOverlay
from .search import astar_connect, connection_window
from .trunks import TrunkPiece, materialize_trunks
from .wiring import (
    Edge,
    nodes_of_edges,
    path_edges,
    short_polygon_sites,
    trim_dangling,
)

#: Successive window margins for connection attempts.
WINDOW_MARGINS = (6, 16, 48)

#: Margins for direct (trunk-less) re-routes: failed nets usually span
#: several tiles, so the smallest window is rarely sufficient and only
#: wastes a full failed search.
DIRECT_WINDOW_MARGINS = (16, 48)

#: Either batch-executor backend (``RouterConfig(executor=...)``).
AnyPool = Union[BatchExecutor, ProcessBatchExecutor]

#: Per-process worker state installed by :func:`_process_worker_init`
#: (a module global because pool tasks must be picklable by reference).
_PROC_CONTEXT: Optional[dict] = None


@context("worker-process", reads=("channel",), writes=("grid.journal",))
def _process_worker_init(
    params: dict,
    design: Design,
    grid: DetailedGrid,
    trunk_pieces: dict,
    handle: tuple,
) -> None:
    """Pool initializer: adopt the detailed-routing stage in a worker.

    ``grid`` arrives by fork inheritance (or pickle under spawn) at
    whatever state the parent had last published; the channel's
    journal frames keep it current from there.
    """
    global _PROC_CONTEXT
    # The inherited grid carries the parent's journal hook; workers
    # replay journals, they never record them.
    grid.stop_journal()
    _PROC_CONTEXT = {
        "router": DetailedRouter(**params),
        "design": design,
        "grid": grid,
        "trunks": trunk_pieces,
        "channel": SharedStateChannel.attach(handle),
    }


@context("worker-process", reads=("grid.owner",), writes=("grid.owner",))
def _replay_journal(grid: DetailedGrid, frames: list) -> None:
    """Apply published ownership journals to a worker's grid.

    Entries are absolute assignments, so replaying a prefix the
    fork-inherited state already contains is idempotent: each node
    ends at its last assignment, which is the published state.
    """
    for frame in frames:
        for node, owner in pickle.loads(frame):
            if owner is None:
                current = grid.owner(node)
                if current is not None:
                    grid.release(node, current)
            else:
                grid.force_occupy(node, owner)


@context("worker-process", reads=("channel", "grid.owner"), writes=("grid.owner",))
def _process_worker_task(
    net_name: str,
) -> tuple[tuple, OverlayDelta, dict]:
    """Pool task: speculatively connect one net in a worker process."""
    ctx = _PROC_CONTEXT
    assert ctx is not None, "worker used before _process_worker_init"
    synced = ctx["channel"].sync()
    if synced is not None:
        _arrays, frames = synced
        _replay_journal(ctx["grid"], frames)
    net = ctx["design"].netlist[net_name]
    result, overlay, stats = ctx["router"]._connect_speculative(
        ctx["design"], ctx["grid"], net, ctx["trunks"]
    )
    return result, OverlayDelta.from_overlay(overlay), stats


@dataclasses.dataclass
class RoutedNet:
    """Final routing state of one net."""

    net: Net
    nodes: set[Node]
    edges: set[Edge]
    routed: bool

    @property
    def pin_nodes(self) -> set[Node]:
        """Grid nodes of the net's pins."""
        return {
            (p.location.x, p.location.y, p.layer) for p in self.net.pins
        }


@dataclasses.dataclass
class DetailedResult:
    """Outcome of detailed routing a design."""

    design: Design
    nets: dict[str, RoutedNet]
    failed: list[str]
    cpu_seconds: float

    @property
    def routability(self) -> float:
        """Fraction of nets fully routed (Table III definition)."""
        total = len(self.nets)
        if total == 0:
            return 1.0
        routed = sum(1 for rn in self.nets.values() if rn.routed)
        return routed / total


class DetailedRouter:
    """Two-pass detailed router over materialized trunks.

    Args:
        stitch_aware: include the beta/gamma costs of Eq. (10) and the
            stitch-aware net ordering.
        workers: worker threads for the first connection pass.  ``1``
            keeps the serial loop; ``N > 1`` connects bbox-disjoint net
            batches speculatively against :class:`GridOverlay` views
            and merges them in canonical order, which is provably
            result-identical to the serial loop (see
            ``docs/parallelism.md``).  The rip-up loop and short-
            polygon repair negotiate over shared state and stay serial.
        sanitize: connect speculative nets against instrumented
            overlays that audit every ownership access and verify the
            declared read/write footprints, raising
            :class:`~repro.analysis.SanitizerViolation` on any
            undeclared access (see ``docs/static_analysis.md``).
        engine: concrete engine name — ``"object"`` routes on the
            reference :class:`DetailedGrid`, ``"array"`` on the
            :class:`~repro.engine.ArrayDetailedGrid` array core.  The
            two produce byte-identical results (``docs/performance.md``);
            resolve ``"auto"`` with :func:`repro.config.resolve_engine`
            before constructing the router.
        profile: ``"off"`` / ``"counters"`` / ``"full"``.  ``"counters"``
            flushes engine-level ``perf_*`` counters (heap pushes/pops,
            overlay node churn, rip-up net visits) at stage boundaries;
            ``"full"`` additionally reports per-net commits through
            :meth:`Tracer.progress` (see ``docs/observability.md``).
        executor: pool backend for ``workers > 1`` — ``"thread"``
            (in-process) or ``"process"`` (multiprocessing pool; the
            grid's committed ownership changes stream to workers as
            shared-memory journal frames and workers ship back
            :class:`~repro.engine.OverlayDelta` wire forms).
            Byte-identical output either way; resolve ``"auto"`` with
            :func:`repro.config.resolve_executor` before constructing
            the router.
    """

    def __init__(
        self,
        stitch_aware: bool = True,
        workers: int = 1,
        sanitize: bool = False,
        engine: str = "object",
        profile: str = "off",
        executor: str = "thread",
    ) -> None:
        if engine not in ("object", "array"):
            raise ValueError(
                f"engine must be 'object' or 'array', got {engine!r}"
            )
        if profile not in ("off", "counters", "full"):
            raise ValueError(
                f"profile must be 'off', 'counters' or 'full', got {profile!r}"
            )
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        self.stitch_aware = stitch_aware
        self.workers = workers
        self.sanitize = sanitize
        self.engine = engine
        self.profile = profile
        self.executor = executor
        self._profiling = profile != "off"
        #: A* search counters flushed into the tracer at stage end.
        self._search_stats: dict[str, float] = {}
        self._proc_channel: Optional[SharedStateChannel] = None

    def route(
        self,
        design: Design,
        graph: GlobalGraph,
        assignment: DesignTrackAssignment,
        order_hint: Optional[Sequence[Net]] = None,
        tracer: Optional[Tracer] = None,
    ) -> DetailedResult:
        """Detail-route every net of ``design``.

        Args:
            design: the routing instance.
            graph: the global routing graph (for tile geometry).
            assignment: the track assignment whose trunks to realize.
            order_hint: bottom-up net order from the multilevel scheme;
                defaults to HPWL order.
            tracer: observability sink for spans and counters.
        """
        tracer = ensure(tracer)
        start = time.perf_counter()
        self._search_stats = {}
        pool: Optional[AnyPool] = None
        if self.workers > 1:
            on_task = None
            if self.profile == "full":
                # Per-task fan-in: the executor reports completions on
                # the calling (main) thread in submission order, so the
                # stream stays canonically ordered.
                def on_task(index: int, busy: float) -> None:
                    tracer.progress(
                        "task",
                        stage="detailed",
                        index=index,
                        busy_seconds=round(busy, 6),
                    )

            if self.executor == "process":
                pool = ProcessBatchExecutor(self.workers, on_task=on_task)
            else:
                pool = BatchExecutor(self.workers, on_task=on_task)
        try:
            return self._route(
                design, graph, assignment, order_hint, tracer, pool, start
            )
        finally:
            if pool is not None:
                pool.shutdown()
            if self._proc_channel is not None:
                # After shutdown: no worker still maps the segments.
                self._proc_channel.unlink()
                self._proc_channel = None

    def _route(
        self,
        design: Design,
        graph: GlobalGraph,
        assignment: DesignTrackAssignment,
        order_hint: Optional[Sequence[Net]],
        tracer: Tracer,
        pool: Optional[AnyPool],
        start: float,
    ) -> DetailedResult:
        with tracer.span(
            "detailed-route", nets=len(design.netlist)
        ) as stage:
            with tracer.span("grid-build"):
                if self.engine == "array":
                    from ..engine import ArrayDetailedGrid

                    grid: DetailedGrid = ArrayDetailedGrid(
                        design, stitch_aware=self.stitch_aware
                    )
                else:
                    grid = DetailedGrid(design, stitch_aware=self.stitch_aware)
                nets = list(order_hint) if order_hint is not None else sorted(
                    design.netlist, key=lambda n: (n.hpwl, n.name)
                )
                # Fixed pins first: they own their nodes unconditionally.
                for net in nets:
                    for pin in net.pins:
                        node = (pin.location.x, pin.location.y, pin.layer)
                        if grid.owner(node) is None:
                            grid.occupy(node, net.name)
                            grid.mark_pin(node)

            with tracer.span("trunks"):
                trunk_pieces = materialize_trunks(
                    design, grid, graph, assignment
                )
            order = self._net_order(nets, assignment)

            routed: dict[str, RoutedNet] = {}
            failed: list[str] = []
            with tracer.span("first-pass") as span:
                self._first_pass(
                    design, grid, order, trunk_pieces, routed, failed,
                    tracer, pool, span,
                )
                tracer.count("first_pass_failed", len(failed))

            failed = self._ripup_loop(
                design, grid, routed, failed, trunk_pieces, tracer
            )

            if self.stitch_aware:
                with tracer.span("short-polygon-repair"):
                    self._repair_short_polygons(
                        design, grid, routed, trunk_pieces
                    )

            for name, value in self._search_stats.items():
                tracer.count(name, value)
            tracer.count("stitch_cost_evaluations", grid.cost_evaluations)
            tracer.count("failed_nets", len(failed))
            if self.sanitize:
                # Explicit zero: a clean sanitized run reports the
                # counter so rollups can assert on its presence.
                tracer.count("sanitize_violations", 0)
            if pool is not None:
                stage.count("parallel_tasks", pool.tasks)
                stage.gauge(
                    "worker_utilization", round(pool.utilization(), 4)
                )
            if self._proc_channel is not None:
                stage.count(
                    "parallel_ipc_publishes", self._proc_channel.publishes
                )
                stage.count(
                    "parallel_ipc_publish_bytes",
                    self._proc_channel.published_bytes,
                )

        return DetailedResult(
            design=design,
            nets=routed,
            failed=failed,
            cpu_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # Net-batch scheduling (workers > 1)
    # ------------------------------------------------------------------
    @context("canonical")
    def _first_pass(
        self,
        design: Design,
        grid: DetailedGrid,
        order: Sequence[Net],
        trunk_pieces: dict[str, list[TrunkPiece]],
        routed: dict[str, "RoutedNet"],
        failed: list[str],
        tracer: Tracer,
        pool: Optional[AnyPool],
        span: Span,
    ) -> None:
        """First connection pass, batched onto the pool when given.

        The serial loop and the batched loop commit identical state:
        batches hold bbox-disjoint nets connected speculatively against
        a :class:`GridOverlay`, then merged in canonical net order — a
        net whose ownership reads touch a node an earlier batch-mate
        wrote is discarded and re-connected on the live grid, so every
        committed route (and every committed counter) is the one the
        serial loop would have produced.
        """
        if pool is None or len(order) < 2:
            for net in order:
                result = self._connect_net(design, grid, net, trunk_pieces)
                self._commit_first_pass(
                    grid, net, result, routed, failed, tracer
                )
            return

        plan = plan_batches(
            order,
            rect_of=lambda n: self._net_pitch_rect(n, trunk_pieces),
            expand=WINDOW_MARGINS[0] + 1,
        )
        conflicts = 0
        for batch in plan:
            if len(batch) == 1:
                net = batch[0]
                result = self._connect_net(design, grid, net, trunk_pieces)
                self._commit_first_pass(
                    grid, net, result, routed, failed, tracer
                )
                continue
            results = self._speculate_batch(
                design, grid, batch, trunk_pieces, pool
            )
            written: set[Node] = set()
            for net, (result, overlay, stats) in zip(batch, results):
                if overlay.read_nodes & written:
                    # The speculative search read a node an earlier
                    # batch-mate has since written; redo it serially
                    # (through a write-through overlay so the exact
                    # write set feeds later conflict checks).
                    conflicts += 1
                    live = grid.speculative_overlay()
                    result = self._connect_net(
                        design, live, net, trunk_pieces
                    )
                    live.apply_to(grid, net.name)
                    written |= live.write_nodes
                    if self._profiling:
                        self._count_overlay(live)
                else:
                    overlay.apply_to(grid, net.name)
                    written |= overlay.write_nodes
                    for name, value in stats.items():
                        self._search_stats[name] = (
                            self._search_stats.get(name, 0) + value
                        )
                    if self._profiling:
                        self._count_overlay(overlay)
                self._commit_first_pass(
                    grid, net, result, routed, failed, tracer
                )
        span.count("parallel_batches", len(plan))
        span.count("parallel_conflicts", conflicts)
        span.gauge("parallel_max_batch_width", plan.max_width)
        span.gauge("parallel_mean_batch_width", round(plan.mean_width, 3))
        if isinstance(pool, ProcessBatchExecutor):
            # The first pass is the only pooled phase; the rip-up loop
            # routes on shared live state and needs no journal.
            grid.stop_journal()

    @context("canonical")
    def _speculate_batch(
        self,
        design: Design,
        grid: DetailedGrid,
        batch: Sequence[Net],
        trunk_pieces: dict[str, list[TrunkPiece]],
        pool: AnyPool,
    ) -> list[
        tuple[
            tuple[bool, set[Node], set[Edge], set[str]],
            Union[GridOverlay, OverlayDelta],
            dict[str, float],
        ]
    ]:
        """Run one conflict-free batch on whichever pool backend is up.

        The thread pool closes over the live grid and returns
        :class:`GridOverlay` objects; the process pool first publishes
        the ownership changes committed since the previous batch (as a
        journal frame — the grid is frozen while the batch is in
        flight) and gets back :class:`OverlayDelta` wire forms.  Both
        expose the same read/write/apply surface, so the merge loop
        above is backend-blind.
        """
        if isinstance(pool, ProcessBatchExecutor):
            channel = self._ensure_process_backend(
                design, grid, trunk_pieces, pool
            )
            channel.publish({}, pickle.dumps(grid.drain_journal()))
            return pool.run([net.name for net in batch])
        return pool.run(
            lambda net: self._connect_speculative(
                design, grid, net, trunk_pieces
            ),
            batch,
        )

    def _ensure_process_backend(
        self,
        design: Design,
        grid: DetailedGrid,
        trunk_pieces: dict[str, list[TrunkPiece]],
        pool: ProcessBatchExecutor,
    ) -> SharedStateChannel:
        """Lazily create the journal channel and configure the pool."""
        if self._proc_channel is None:
            grid.start_journal()
            self._proc_channel = SharedStateChannel.create("detail", [])
            params = dict(
                stitch_aware=self.stitch_aware,
                workers=1,
                sanitize=self.sanitize,
                engine=self.engine,
                profile=self.profile,
            )
            pool.configure(
                task=_process_worker_task,
                initializer=_process_worker_init,
                initargs=(
                    params,
                    design,
                    grid,
                    trunk_pieces,
                    self._proc_channel.handle,
                ),
            )
        return self._proc_channel

    def _count_overlay(
        self, overlay: Union[GridOverlay, OverlayDelta]
    ) -> None:
        """Accumulate ``perf_*`` node-churn counters for one overlay."""
        stats = self._search_stats
        for name, delta in (
            ("perf_overlay_commits", 1),
            ("perf_overlay_read_nodes", len(overlay.read_nodes)),
            ("perf_overlay_write_nodes", len(overlay.write_nodes)),
        ):
            stats[name] = stats.get(name, 0) + delta

    @context("speculative")
    def _connect_speculative(
        self,
        design: Design,
        grid: DetailedGrid,
        net: Net,
        trunk_pieces: dict[str, list[TrunkPiece]],
    ) -> tuple[
        tuple[bool, set[Node], set[Edge], set[str]],
        GridOverlay,
        dict[str, float],
    ]:
        """Worker body: connect one net against an ownership overlay.

        Returns the connection result (buffered, not yet on the live
        grid), the overlay holding the write delta and the exact
        read/write node sets, and the net's local search counters.
        """
        stats: dict[str, float] = {}
        if self.sanitize:
            # Imported lazily: repro.analysis is a downstream tool
            # layer; the routers must not depend on it by default.
            from ..analysis.sanitize import SanitizedGridOverlay

            overlay: GridOverlay = SanitizedGridOverlay(grid)
        else:
            overlay = grid.speculative_overlay()
        result = self._connect_net(
            design, overlay, net, trunk_pieces, stats=stats
        )
        if self.sanitize:
            overlay.verify(stats)
        return result, overlay, stats

    @staticmethod
    def _net_pitch_rect(
        net: Net, trunk_pieces: dict[str, list[TrunkPiece]]
    ) -> tuple[int, int, int, int]:
        """Inclusive pitch-space bbox of the net's pins and trunks."""
        xs = [pin.location.x for pin in net.pins]
        ys = [pin.location.y for pin in net.pins]
        for piece in trunk_pieces.get(net.name, []):
            for x, y, _layer in piece.nodes:
                xs.append(x)
                ys.append(y)
        return (min(xs), min(ys), max(xs), max(ys))

    def _commit_first_pass(
        self,
        grid: DetailedGrid,
        net: Net,
        result: tuple[bool, set[Node], set[Edge], set[str]],
        routed: dict[str, "RoutedNet"],
        failed: list[str],
        tracer: Tracer,
    ) -> None:
        """Record one first-pass outcome exactly as the serial loop does."""
        ok, nodes, edges, victims = result
        routed[net.name] = RoutedNet(
            net=net, nodes=nodes, edges=edges, routed=ok
        )
        tracer.count("nets_attempted")
        if self.profile == "full":
            tracer.progress("net", stage="detailed", net=net.name, routed=ok)
        if not ok:
            failed.append(net.name)
        for victim in sorted(victims):
            if victim in routed and routed[victim].routed:
                routed[victim] = _strip_stolen(grid, routed[victim])
                failed.append(victim)
            # Not-yet-routed victims lost trunk nodes only; their own
            # connection phase routes around the gaps.

    # ------------------------------------------------------------------
    def _ripup_loop(
        self,
        design: Design,
        grid: DetailedGrid,
        routed: dict[str, "RoutedNet"],
        failed: list[str],
        trunk_pieces: dict[str, list[TrunkPiece]],
        tracer: Optional[Tracer] = None,
    ) -> list[str]:
        """Negotiated rip-up and re-route of failed nets.

        Each round first tries to reconnect over the net's surviving
        trunk fragments (plan-preserving), then over a clean direct
        route; if both fail, the net may buy a path through other
        nets' wire at a penalty, and the victims it crosses are ripped
        and queued for re-route in the same fashion.
        """
        tracer = ensure(tracer)
        for round_index in range(design.config.max_ripup_iterations):
            if not failed:
                break
            queue = list(dict.fromkeys(failed))
            next_failed: list[str] = []
            tracer.count("ripup_rounds")
            if self._profiling:
                self._search_stats["perf_ripup_net_visits"] = (
                    self._search_stats.get("perf_ripup_net_visits", 0)
                    + len(queue)
                )
            with tracer.span(
                "ripup-round", round=round_index, queued=len(queue)
            ):
                for name in queue:
                    record = routed[name]
                    pieces = trunk_pieces.get(name, [])
                    live_trunk = {
                        node
                        for piece in pieces
                        for node in piece.nodes
                        if grid.owner(node) == name
                    }
                    ok = False
                    nodes: set[Node] = set()
                    edges: set[Edge] = set()
                    salvage = _salvage_components(grid, record)
                    if salvage is not None:
                        ok, nodes, edges, _ = self._connect_net(
                            design,
                            grid,
                            record.net,
                            {},
                            direct=True,
                            salvage=salvage,
                            allow_negotiation=False,
                        )
                        if not ok:
                            record = RoutedNet(
                                net=record.net,
                                nodes=nodes | record.nodes,
                                edges=edges | record.edges,
                                routed=False,
                            )
                    if not ok and live_trunk:
                        # Release connections only; keep the plan's wire.
                        keep = live_trunk | record.pin_nodes
                        for node in sorted(record.nodes - keep):
                            grid.release(node, name)
                        for pin_node in record.pin_nodes:
                            grid.occupy(pin_node, name)
                        fragments = _piece_fragments(pieces, live_trunk)
                        ok, nodes, edges, _ = self._connect_net(
                            design,
                            grid,
                            record.net,
                            {name: fragments},
                            allow_negotiation=False,
                        )
                        if not ok:
                            record = RoutedNet(
                                net=record.net,
                                nodes=nodes | live_trunk | record.pin_nodes,
                                edges=edges,
                                routed=False,
                            )
                    if not ok:
                        self._rip(grid, record)
                        for node in sorted(live_trunk):
                            grid.release(node, name)
                        ok, nodes, edges, _ = self._connect_net(
                            design, grid, record.net, {}, direct=True
                        )
                    if not ok:
                        ok, nodes, edges, victims = self._connect_net(
                            design,
                            grid,
                            record.net,
                            {},
                            direct=True,
                            foreign_penalty=30.0,
                        )
                        for victim in sorted(victims):
                            if victim in routed:
                                routed[victim] = _strip_stolen(
                                    grid, routed[victim]
                                )
                                next_failed.append(victim)
                    routed[name] = RoutedNet(
                        net=record.net, nodes=nodes, edges=edges, routed=ok
                    )
                    if not ok:
                        next_failed.append(name)
                    tracer.count("reroutes")
            if set(next_failed) == set(failed):
                break
            failed = list(dict.fromkeys(next_failed))
        return failed

    @staticmethod
    def _rip(grid: DetailedGrid, record: "RoutedNet") -> None:
        """Release a net's wire, keeping its pin nodes claimed.

        Pins are never released (not even transiently): a free pin
        node could be claimed by a concurrent negotiated search.
        """
        name = record.net.name
        pin_nodes = record.pin_nodes
        for node in record.nodes - pin_nodes:
            grid.release(node, name)
        for pin_node in pin_nodes:
            if grid.owner(pin_node) is None:
                grid.occupy(pin_node, name)

    # ------------------------------------------------------------------
    def _repair_short_polygons(
        self,
        design: Design,
        grid: DetailedGrid,
        routed: dict[str, "RoutedNet"],
        trunk_pieces: dict[str, list[TrunkPiece]],
    ) -> None:
        """Re-route connections whose wires still form short polygons.

        The repair is surgical and respects the track assignment: the
        net's trunk wire stays in place; only the A*-made connections
        are ripped and re-found with the offending line crossings
        blocked, forcing the wire to reach its end from the
        non-crossing side (or cross on a different track).

        Short polygons whose bad end sits *on a trunk* (a bad end the
        track assignment left behind) are not repairable here — moving
        them would undo the assignment — so they remain, exactly as in
        the paper, where only better track assignment removes them.
        A net that cannot be improved keeps its original route.
        """
        stitches = design.stitches
        assert stitches is not None
        blocked_per_net: dict[str, set[Node]] = {}
        for _ in range(2):
            victims = []
            for name, record in routed.items():
                if not record.routed:
                    continue
                trunk_nodes = {
                    node
                    for piece in trunk_pieces.get(name, [])
                    for node in piece.nodes
                    if node in record.nodes
                }
                sites = [
                    site
                    for site in short_polygon_sites(
                        record.edges, record.pin_nodes, stitches
                    )
                    if site[1] not in trunk_nodes  # end anchored off-trunk
                ]
                if sites:
                    victims.append((name, sites, trunk_nodes))
            if not victims:
                return
            progressed = False
            for name, sites, trunk_nodes in victims:
                record = routed[name]
                blocked = blocked_per_net.setdefault(name, set())
                blocked.update(crossing for crossing, _end in sites)
                saved_nodes, saved_edges = record.nodes, record.edges
                before = len(
                    short_polygon_sites(
                        record.edges, record.pin_nodes, stitches
                    )
                )
                # Rip connections only; trunks and pins stay claimed.
                keep = trunk_nodes | record.pin_nodes
                for node in sorted(saved_nodes - keep):
                    grid.release(node, name)
                fragments = _piece_fragments(
                    trunk_pieces.get(name, []), trunk_nodes
                )
                ok, nodes, edges, _ = self._connect_net(
                    design,
                    grid,
                    record.net,
                    {name: fragments},
                    blocked=blocked,
                    allow_negotiation=False,
                )
                repaired = ok and len(
                    short_polygon_sites(edges, record.pin_nodes, stitches)
                ) < before
                if not repaired:
                    # Restore the original route.
                    for node in nodes:
                        grid.release(node, name)
                    for node in saved_nodes:
                        grid.occupy(node, name)
                    routed[name] = RoutedNet(
                        net=record.net,
                        nodes=saved_nodes,
                        edges=saved_edges,
                        routed=record.routed,
                    )
                else:
                    progressed = True
                    routed[name] = RoutedNet(
                        net=record.net, nodes=nodes, edges=edges, routed=True
                    )
            if not progressed:
                return

    # ------------------------------------------------------------------
    def _net_order(
        self, nets: Sequence[Net], assignment: DesignTrackAssignment
    ) -> list[Net]:
        """Stitch-aware: more bad ends first (Section III-D2)."""
        if not self.stitch_aware:
            return list(nets)
        bad_ends = assignment.bad_ends_per_net()
        base_rank = {net.name: pos for pos, net in enumerate(nets)}
        return sorted(
            nets,
            key=lambda n: (-bad_ends.get(n.name, 0), base_rank[n.name]),
        )

    def _connect_net(
        self,
        design: Design,
        grid: DetailedGrid,
        net: Net,
        trunk_pieces: dict[str, list[TrunkPiece]],
        direct: bool = False,
        blocked: Optional[set[Node]] = None,
        foreign_penalty: Optional[float] = None,
        allow_negotiation: bool = True,
        salvage: Optional[tuple[list[set[Node]], set[Edge]]] = None,
        stats: Optional[dict[str, float]] = None,
    ) -> tuple[bool, set[Node], set[Edge], set[str]]:
        """Merge the net's pins and trunks into one component.

        Returns ``(ok, nodes, edges, victims)``; ``victims`` is the set
        of nets whose wire the path force-claimed (only non-empty when
        ``foreign_penalty`` is given).  ``stats`` overrides the search
        counter sink (speculative workers keep local counters that are
        merged only if their result is accepted).
        """
        if stats is None:
            stats = self._search_stats
        pin_components: list[set[Node]] = []
        edges: set[Edge] = set()
        victims: set[str] = set()
        seen_pins = set()
        for pin in net.pins:
            node = (pin.location.x, pin.location.y, pin.layer)
            if grid.owner(node) != net.name:
                # Pin location captured by another net (malformed
                # input); the net cannot be legally completed.
                return False, set(), set(), victims
            if node not in seen_pins:
                seen_pins.add(node)
                pin_components.append({node})
        trunk_components: list[set[Node]] = []
        if salvage is not None:
            # Minimal repair: reconnect the net's surviving wire
            # instead of rebuilding from scratch.
            salvage_components, salvage_edges = salvage
            trunk_components.extend(
                set(comp) for comp in salvage_components if comp
            )
            edges |= salvage_edges
        if not direct:
            raw_pieces = trunk_pieces.get(net.name, [])
            # Negotiated rip-up may have stolen parts of the trunks
            # (e.g. before this net's first routing turn); only wire
            # the net still owns belongs in its components.
            owned = {
                node
                for piece in raw_pieces
                for node in piece.nodes
                if grid.owner(node) == net.name
            }
            pieces = _piece_fragments(raw_pieces, owned)
            for piece in pieces:
                trunk_components.append(piece.node_set)
                edges |= path_edges(piece.nodes)
            # Segment-to-segment connections happen at the assigned
            # crossing points (the paper's model: a via joins two
            # segments where they intersect; the line-end position is
            # fixed by track assignment, not negotiable by the router).
            via_edges, via_components = _preconnect_crossings(
                grid, net.name, pieces
            )
            edges |= via_edges
            trunk_components.extend(via_components)
        trunk_components = _merge_overlapping(trunk_components)

        all_nodes: set[Node] = set()
        for comp in pin_components + trunk_components:
            all_nodes |= comp

        def connect_round(
            components: list[set[Node]],
            target_filter: Optional[set[Node]] = None,
            margins: Optional[tuple[int, ...]] = None,
            penalty: Optional[float] = None,
        ) -> tuple[bool, list[set[Node]]]:
            """Merge components until one remains; updates closure state.

            ``target_filter`` restricts where the search may terminate
            (pin-to-*segment* routing: a pin must reach the assigned
            wire, not shortcut onto another pin's connection arm);
            ``margins`` overrides the window escalation schedule;
            ``penalty`` overrides the foreign-wire pass-through cost
            (negotiated attachment for boxed pins).
            """
            nonlocal all_nodes, edges, victims
            if margins is None:
                margins = DIRECT_WINDOW_MARGINS if direct else WINDOW_MARGINS
            if penalty is None:
                penalty = foreign_penalty
            # Negotiated searches see almost every node as passable, so
            # an unreachable target otherwise floods the whole window.
            limit = design.config.detail_expansion_limit
            if penalty is not None:
                limit //= 8
            while len(components) > 1:
                components.sort(key=len)
                source = components[0]
                targets: set[Node] = set().union(*components[1:])
                if target_filter is not None:
                    targets &= target_filter
                    if not targets:
                        return False, components
                path = None
                for margin in margins:
                    window = connection_window(
                        source, targets, margin, design.width, design.height
                    )
                    path = astar_connect(
                        grid,
                        net.name,
                        source,
                        targets,
                        window,
                        limit,
                        blocked=blocked,
                        foreign_penalty=penalty,
                        stats=stats,
                        profile=self._profiling,
                    )
                    if path is not None:
                        break
                if path is None:
                    return False, components
                for node in path:
                    evicted = grid.force_occupy(node, net.name)
                    if evicted is not None:
                        victims.add(evicted)
                    all_nodes.add(node)
                edges |= path_edges(path)
                end = path[-1]
                merged = source | set(path)
                rest: list[set[Node]] = []
                for comp in components[1:]:
                    if end in comp or comp & merged:
                        merged |= comp
                    else:
                        rest.append(comp)
                components = rest + [merged]
            return True, components

        if trunk_components:
            # Pass 2 semantics (Section III-D): first unify the
            # assigned segments (segment-to-segment), then attach each
            # pin to the assigned route (pin-to-segment) — pins must
            # reach their segments, not shortcut to each other.
            ok, trunk_components = connect_round(trunk_components)
            if not ok:
                # Disjoint trunks (blocked crossings): fall back to a
                # free-for-all merge of everything.
                ok, remaining = connect_round(
                    pin_components + trunk_components
                )
                if not ok:
                    return False, all_nodes, edges, victims
                components = remaining
            else:
                spine = trunk_components[0]
                trunk_targets = set(spine)
                tile = design.config.tile_size
                for pin_comp in pin_components:
                    if pin_comp & spine:
                        spine |= pin_comp
                        continue
                    # Pin-to-segment: prefer the assigned wire passing
                    # through the pin's own tile (that is why global
                    # routing went there), then any assigned wire, and
                    # only then the net's other connection arms.
                    pin_node = next(iter(pin_comp))
                    pin_tile = (pin_node[0] // tile, pin_node[1] // tile)
                    local_targets = {
                        n
                        for n in trunk_targets
                        if (n[0] // tile, n[1] // tile) == pin_tile
                    }
                    # The local attempt only ever needs to look a tile
                    # around the pin; a single small window keeps the
                    # escalation cascade cheap.
                    attempts: list[
                        tuple[Optional[set[Node]], Optional[tuple[int, ...]], Optional[float]]
                    ] = []
                    if local_targets:
                        attempts.append((local_targets, (tile,), None))
                    attempts.append((trunk_targets, None, None))
                    attempts.append((None, None, None))
                    if allow_negotiation and foreign_penalty is None:
                        # Boxed pin: negotiate through foreign wire
                        # (the victims are ripped by the caller) rather
                        # than abandoning the whole net's plan.
                        attempts.append((trunk_targets, (16,), 30.0))
                    ok = False
                    for target_filter, margin_override, penalty in attempts:
                        ok, merged = connect_round(
                            [pin_comp, spine],
                            target_filter=target_filter,
                            margins=margin_override,
                            penalty=penalty,
                        )
                        if ok:
                            break
                    if not ok:
                        return False, all_nodes, edges, victims
                    spine = merged[0]
                components = [spine]
        else:
            ok, components = connect_round(pin_components)
            if not ok:
                return False, all_nodes, edges, victims
        for comp in components:
            all_nodes |= comp
        # Trim: release never-used trunk metal back to the grid so it
        # does not block later nets (the cleanup a real router does).
        pin_nodes = set(seen_pins)
        trimmed_edges = trim_dangling(edges, pin_nodes)
        trimmed_nodes = nodes_of_edges(trimmed_edges) | pin_nodes
        for node in sorted(all_nodes - trimmed_nodes):
            grid.release(node, net.name)
        return True, trimmed_nodes, trimmed_edges, victims


def _strip_stolen(grid: DetailedGrid, record: "RoutedNet") -> "RoutedNet":
    """A victim's record reduced to the wire it still owns.

    Negotiated rip-up steals individual nodes; the victim keeps the
    rest of its route so its repair is a minimal reconnect instead of
    a from-scratch re-route.
    """
    name = record.net.name
    nodes = {n for n in record.nodes if grid.owner(n) == name}
    nodes |= record.pin_nodes
    edges = {e for e in record.edges if e[0] in nodes and e[1] in nodes}
    return RoutedNet(net=record.net, nodes=nodes, edges=edges, routed=False)


def _salvage_components(
    grid: DetailedGrid, record: "RoutedNet"
) -> Optional[tuple[list[set[Node]], set[Edge]]]:
    """Connected components of a net's surviving wire, for reconnects.

    Returns ``None`` when nothing beyond the pins survives (a from-
    scratch re-route is needed anyway).
    """
    name = record.net.name
    live_edges = {
        e
        for e in record.edges
        if grid.owner(e[0]) == name and grid.owner(e[1]) == name
    }
    if not live_edges:
        return None
    from ..algorithms import DisjointSet

    ds = DisjointSet()
    # Union order cannot change the resulting partition, and edge keys
    # are int-coordinate tuples whose set order is hash-seed
    # independent, so the grouping below is reproducible as committed.
    for a, b in live_edges:  # repro: allow-DET001 partition is order-independent
        ds.union(a, b)
    groups: dict[Node, set[Node]] = {}
    for edge in live_edges:  # repro: allow-DET001 same traversal as the union above
        for node in edge:
            groups.setdefault(ds.find(node), set()).add(node)
    return list(groups.values()), live_edges


def _preconnect_crossings(
    grid: DetailedGrid,
    net: str,
    pieces: list[TrunkPiece],
) -> tuple[set[Edge], list[set[Node]]]:
    """Stitch same-net trunks together with vias at their crossings.

    For every pair of not-yet-connected trunk pieces that intersect in
    (x, y), a via stack is placed at the crossing (when the grid allows
    it), merging the pieces exactly where the track assignment put
    them.  Redundant crossings between already-connected pieces are
    skipped so no via loops appear.  Pairs whose stack is blocked are
    left for the A* connection search.
    """
    from ..algorithms import DisjointSet

    edges: set[Edge] = set()
    components: list[set[Node]] = []
    if len(pieces) < 2:
        return edges, components
    ds = DisjointSet(range(len(pieces)))
    xy_maps = []
    for piece in pieces:
        xy_map: dict[tuple[int, int], set[int]] = {}
        for x, y, layer in piece.nodes:
            xy_map.setdefault((x, y), set()).add(layer)
        xy_maps.append(xy_map)
    for i in range(len(pieces)):
        for j in range(i + 1, len(pieces)):
            if ds.connected(i, j):
                continue
            shared = set(xy_maps[i]) & set(xy_maps[j])
            for xy in sorted(shared):
                lo = min(min(xy_maps[i][xy]), min(xy_maps[j][xy]))
                hi = max(max(xy_maps[i][xy]), max(xy_maps[j][xy]))
                if lo == hi:
                    ds.union(i, j)  # pieces touch on the same layer
                    break
                if grid.on_stitch_line(xy[0]):
                    continue  # via constraint: leave for A*
                stack = [(xy[0], xy[1], layer) for layer in range(lo, hi + 1)]
                if all(grid.is_free_for(node, net) for node in stack):
                    for node in stack:
                        grid.occupy(node, net)
                    edges |= path_edges(stack)
                    components.append(set(stack))
                    ds.union(i, j)
                    break
    return edges, components


def _piece_fragments(
    pieces: list[TrunkPiece], live_nodes: set[Node]
) -> list[TrunkPiece]:
    """Contiguous sub-runs of trunk pieces still owned by the net.

    Trimming after the first connection may have released parts of a
    trunk; the repair pass must only rebuild over what is still there.
    """
    fragments: list[TrunkPiece] = []
    for piece in pieces:
        current: list[Node] = []
        for node in piece.nodes:
            if node in live_nodes:
                current.append(node)
            elif current:
                fragments.append(TrunkPiece(net=piece.net, nodes=current))
                current = []
        if current:
            fragments.append(TrunkPiece(net=piece.net, nodes=current))
    return fragments


def _merge_overlapping(components: list[set[Node]]) -> list[set[Node]]:
    """Union components sharing at least one node."""
    merged: list[set[Node]] = []
    for comp in components:
        absorbed = comp
        keep: list[set[Node]] = []
        for existing in merged:
            if existing & absorbed:
                absorbed = absorbed | existing
            else:
                keep.append(existing)
        keep.append(absorbed)
        merged = keep
    return merged
