"""Stitch-aware detailed routing (Section III-D)."""

from .grid import DetailedGrid, Node, nodes_of_points
from .router import DetailedResult, DetailedRouter, RoutedNet
from .search import astar_connect, connection_window
from .trunks import TrunkPiece, materialize_trunks

__all__ = [
    "DetailedGrid",
    "DetailedResult",
    "DetailedRouter",
    "Node",
    "RoutedNet",
    "TrunkPiece",
    "astar_connect",
    "connection_window",
    "materialize_trunks",
    "nodes_of_points",
]
