"""The detailed routing grid: occupancy, legality, stitch-aware costs.

Nodes are ``(x, y, layer)`` with preferred-direction routing: horizontal
layers move in x, vertical layers in y, and z moves hop one layer.  The
hard MEBL constraints of Section II-A are enforced structurally:

* vertical-layer nodes on a stitching-line track are unusable (vertical
  routing constraint) — wires can only cross a line in the x direction
  (Fig. 13);
* z moves (vias) at a stitching-line x are forbidden, except exactly at
  a fixed pin for which the via violation is permitted (and counted).

The soft costs of Eq. (10) live here too: ``beta`` for a z move inside
a stitch unfriendly region and ``gamma`` for occupying a vertical-layer
grid in the escape region (Section III-D1).
"""

from __future__ import annotations

from collections.abc import Iterable

from typing import TYPE_CHECKING, Optional

from ..config import RouterConfig
from ..geometry import GridPoint
from ..layout import Design

if TYPE_CHECKING:
    from .overlay import GridOverlay

Node = tuple[int, int, int]  # (x, y, layer)


class DetailedGrid:
    """Occupancy-tracked 3-D routing grid for one design."""

    #: Ownership-change journal (``None`` = off).  A class attribute on
    #: purpose: :class:`~repro.detailed.overlay.GridOverlay` skips
    #: ``__init__`` when borrowing a live grid, and overlays must never
    #: journal — their writes are buffered, not committed.
    _journal: Optional[list[tuple[Node, Optional[str]]]] = None

    def __init__(self, design: Design, stitch_aware: bool = True) -> None:
        self.design = design
        self.config: RouterConfig = design.config
        self.tech = design.technology
        self.stitches = design.stitches
        assert self.stitches is not None
        self.stitch_aware = stitch_aware
        #: node -> owning net name
        self._owner: dict[Node, str] = {}
        #: fixed pin nodes (inviolable even during negotiated rip-up)
        self._pins: set[Node] = set()
        # Precomputed per-x flags (columns are few; lookups are hot).
        self._on_line = [self.stitches.is_on_line(x) for x in range(design.width)]
        self._unfriendly = [
            self.stitches.in_unfriendly_region(x) for x in range(design.width)
        ]
        self._escape = [
            self.stitches.in_escape_region(x) for x in range(design.width)
        ]
        # Per-layer caches (index 0 unused; layers are 1-based).
        self._vertical = [False] + [
            self.tech.is_vertical(m) for m in self.tech.layers
        ]
        self._num_layers = self.tech.num_layers
        self._width = design.width
        self._height = design.height
        #: Eq. (10) step costs computed so far (one per legal successor
        #: returned by :meth:`neighbors`); read by the detailed router's
        #: tracer flush.
        self.cost_evaluations = 0

    # ------------------------------------------------------------------
    # Geometry / legality
    # ------------------------------------------------------------------
    def in_bounds(self, node: Node) -> bool:
        """Whether the node lies inside the die and layer stack."""
        x, y, layer = node
        return (
            0 <= x < self.design.width
            and 0 <= y < self.design.height
            and 1 <= layer <= self.tech.num_layers
        )

    def is_blocked(self, node: Node) -> bool:
        """Structurally unusable node (vertical layer on a line track)."""
        x, _y, layer = node
        return self._vertical[layer] and self._on_line[x]

    def on_stitch_line(self, x: int) -> bool:
        """Whether column ``x`` is a stitching line."""
        return self._on_line[x]

    def in_unfriendly(self, x: int) -> bool:
        """Whether column ``x`` is in a stitch unfriendly region."""
        return self._unfriendly[x]

    def in_escape(self, x: int) -> bool:
        """Whether column ``x`` is in an escape region."""
        return self._escape[x]

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    def owner(self, node: Node) -> Optional[str]:
        """Net owning ``node``, if any."""
        return self._owner.get(node)

    def mark_pin(self, node: Node) -> None:
        """Register a fixed pin node (never rippable by other nets)."""
        self._pins.add(node)

    def is_pin(self, node: Node) -> bool:
        """Whether ``node`` is a fixed pin."""
        return node in self._pins

    def occupy(self, node: Node, net: str) -> None:
        """Claim ``node`` for ``net`` (idempotent for the same net)."""
        current = self._owner.get(node)
        if current is not None and current != net:
            raise ValueError(
                f"node {node} already owned by {current!r}, not {net!r}"
            )
        self._owner[node] = net
        if self._journal is not None and current != net:
            self._journal.append((node, net))

    def force_occupy(self, node: Node, net: str) -> Optional[str]:
        """Claim ``node`` for ``net``, evicting any previous owner.

        Returns the evicted net's name (None if the node was free or
        already owned by ``net``).  Used by negotiated rip-up.
        """
        if node in self._pins and self._owner.get(node) != net:
            raise ValueError(f"pin node {node} cannot change owner")
        previous = self._owner.get(node)
        self._owner[node] = net
        if self._journal is not None and previous != net:
            self._journal.append((node, net))
        return previous if previous not in (None, net) else None

    def release(self, node: Node, net: str) -> None:
        """Release ``node`` previously claimed by ``net``.

        Pin nodes are never released: a transiently free pin could be
        claimed by another net's search, making its net unroutable.
        """
        if node in self._pins:
            return
        if self._owner.get(node) == net:
            del self._owner[node]
            if self._journal is not None:
                self._journal.append((node, None))

    # ------------------------------------------------------------------
    # Ownership journal (process-pool state sync)
    # ------------------------------------------------------------------
    def start_journal(self) -> None:
        """Begin recording committed ownership changes.

        Each entry is an absolute assignment ``(node, owner-or-None)``
        — replaying any already-applied prefix in order is idempotent,
        which is what lets late-forked pool workers catch up from a
        mid-stage snapshot (see ``docs/parallelism.md``).
        """
        self._journal = []

    def drain_journal(self) -> list[tuple[Node, Optional[str]]]:
        """Return and clear the entries recorded since the last drain."""
        entries = self._journal if self._journal is not None else []
        if self._journal is not None:
            self._journal = []
        return entries

    def stop_journal(self) -> None:
        """Stop recording ownership changes (drops pending entries)."""
        self._journal = None

    def is_free_for(self, node: Node, net: str) -> bool:
        """Usable by ``net``: in bounds, not blocked, not foreign-owned."""
        if not self.in_bounds(node) or self.is_blocked(node):
            return False
        current = self._owner.get(node)
        return current is None or current == net

    def occupied_by(self, net: str) -> set[Node]:
        """All nodes currently owned by ``net`` (linear scan; tests only)."""
        return {n for n, owner in self._owner.items() if owner == net}

    # ------------------------------------------------------------------
    # Moves and costs (Eq. 10)
    # ------------------------------------------------------------------
    def neighbors(
        self,
        node: Node,
        net: str,
        foreign_penalty: Optional[float] = None,
    ) -> list[tuple[Node, float]]:
        """Legal successor nodes with their Eq. (10) step costs.

        Routed vias are never allowed on a stitching line (via
        constraint).  The via violations Problem 1 permits on fixed
        pins are the implicit cell contacts *below* layer 1, which the
        evaluator counts per routed on-line pin — they involve no grid
        move here.

        When ``foreign_penalty`` is given, nodes owned by other nets
        become passable at that extra cost — negotiated rip-up: the
        router later rips the victims the chosen path runs through.
        Foreign *pin* nodes stay hard obstacles.
        """
        x, y, layer = node
        out: list[tuple[Node, float]] = []
        config = self.config
        planar = (
            ((x, y - 1, layer), (x, y + 1, layer))
            if self._vertical[layer]
            else ((x - 1, y, layer), (x + 1, y, layer))
        )
        for succ in planar:
            passable, extra = self._passable(succ, net, foreign_penalty)
            if passable:
                out.append(
                    (
                        succ,
                        config.alpha  # repro: allow-PAR003 array core bakes alpha in
                        + self._node_cost(succ)
                        + extra,
                    )
                )
        for succ in ((x, y, layer - 1), (x, y, layer + 1)):
            passable, extra = self._passable(succ, net, foreign_penalty)
            if not passable:
                continue
            if self._on_line[x]:
                continue  # via constraint (hard)
            cost = config.alpha + self._node_cost(succ) + extra
            if self.stitch_aware and self._unfriendly[x]:
                # via in stitch unfriendly region
                cost += config.beta  # repro: allow-PAR003 array core bakes beta into its cost tables
            out.append((succ, cost))
        self.cost_evaluations += len(out)
        return out

    def _passable(
        self, node: Node, net: str, foreign_penalty: Optional[float]
    ) -> tuple[bool, float]:
        x, y, layer = node
        if not (0 <= x < self._width and 0 <= y < self._height):
            return False, 0.0
        if not 1 <= layer <= self._num_layers:
            return False, 0.0
        if self._vertical[layer] and self._on_line[x]:
            return False, 0.0
        owner = self._owner.get(node)
        if owner is None or owner == net:
            return True, 0.0
        if foreign_penalty is not None and node not in self._pins:
            return True, foreign_penalty
        return False, 0.0

    def speculative_overlay(self) -> "GridOverlay":
        """Fresh buffered-write overlay of this grid.

        Factory hook for the engine seam: :class:`ArrayDetailedGrid`
        overrides it to hand out array-core overlays, so the parallel
        router never needs to know which engine built the grid.
        """
        from .overlay import GridOverlay  # local: overlay imports grid

        return GridOverlay(self)

    def _node_cost(self, node: Node) -> float:
        """Escape-region cost of entering ``node`` (gamma term)."""
        if not self.stitch_aware:
            return 0.0
        x, _y, layer = node
        if self._vertical[layer] and self._escape[x]:
            return self.config.gamma  # repro: allow-PAR003 array core bakes gamma into its cost tables
        return 0.0


def nodes_of_points(points: Iterable[GridPoint]) -> set[Node]:
    """Convert :class:`GridPoint` objects to plain node tuples."""
    return {(p.x, p.y, p.layer) for p in points}
