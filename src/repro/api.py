"""Stable public facade of the reproduction.

Everything a downstream user needs lives here under one import path::

    from repro.api import RouterConfig, StitchAwareRouter, route

    result = route(design, RouterConfig(engine="array"))
    print(result.report.stitch_line_histogram())

The facade is the *compatibility contract*: names exported here keep
working across refactors, while the deep module layout
(``repro.core.flow``, ``repro.detailed`` and friends) remains free to
move.  Importing flow classes through intermediate packages such as
``repro.core`` is deprecated (a :class:`DeprecationWarning` points
here); the deep modules themselves stay importable for subclassing and
instrumentation, without a stability promise.

Heavier analysis entry points (:func:`~repro.analysis.audit_solution`,
:func:`~repro.analysis.lint_paths`) are re-exported lazily so that
``import repro.api`` stays light.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from .config import (
    DEFAULT_CONFIG,
    ColoringMethod,
    Engine,
    RouterConfig,
    TrackMethod,
    benchmark_scale,
    resolve_engine,
)
from .core.flow import BaselineRouter, FlowResult, StitchAwareRouter
from .eval import RoutingReport
from .layout import Design
from .observe import RunTrace, Tracer

if TYPE_CHECKING:  # lazy re-exports, resolved by __getattr__ at runtime
    from .analysis import AuditReport, audit_solution, lint_paths

__all__ = [
    "AuditReport",
    "BaselineRouter",
    "ColoringMethod",
    "DEFAULT_CONFIG",
    "Design",
    "Engine",
    "FlowResult",
    "RouterConfig",
    "RoutingReport",
    "RunTrace",
    "StitchAwareRouter",
    "TrackMethod",
    "Tracer",
    "audit_solution",
    "benchmark_scale",
    "lint_paths",
    "resolve_engine",
    "route",
]

#: Names served lazily from :mod:`repro.analysis`.
_LAZY_ANALYSIS = frozenset({"AuditReport", "audit_solution", "lint_paths"})


def __getattr__(name: str) -> Any:
    if name in _LAZY_ANALYSIS:
        from . import analysis

        return getattr(analysis, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def route(
    design: Design,
    config: Optional[RouterConfig] = None,
    *,
    tracer: Optional[Tracer] = None,
) -> FlowResult:
    """Route ``design`` with the stitch-aware flow in one call.

    Convenience wrapper over
    ``StitchAwareRouter(config=config).route(design)`` — the flow all
    of the paper's result tables use.  ``config`` defaults to
    :data:`DEFAULT_CONFIG`; pass ``RouterConfig(engine=...)`` to pick
    the routing engine explicitly.
    """
    return StitchAwareRouter(config=config).route(design, tracer=tracer)
