"""The full stitch-aware routing flow and its baseline (Table III).

``StitchAwareRouter`` wires the stage implementations into the two-pass
bottom-up multilevel framework of Fig. 6: stitch-aware global routing,
stitch-aware layer assignment (flow-based coloring), short-polygon-
avoiding track assignment (graph heuristic or ILP), and stitch-aware
detailed routing.

``BaselineRouter`` is the comparison router of Section IV-A: global
routing without the line-end term (NTUgr-style), conventional layer
assignment (maximum-spanning-tree coloring, segment density only),
conventional track assignment (segments landing on stitching-line
tracks are ripped up and routed directly in detailed routing), and
detailed routing without the stitch costs — but with the same hard
legality (wires only cross stitching lines in the x direction), so it
also produces zero vertical routing violations.
"""

from __future__ import annotations

import dataclasses
import time

from ..assign import (
    ColoringMethod,
    DesignTrackAssignment,
    LayerAssignment,
    TrackMethod,
    assign_layers,
    assign_tracks,
    extract_panels,
)
from ..detailed import DetailedResult, DetailedRouter
from ..eval import RoutingReport, evaluate
from ..globalroute import GlobalRouter, GlobalRoutingResult
from ..layout import Design
from ..multilevel import MultilevelScheme, TwoPassFramework


@dataclasses.dataclass
class FlowResult:
    """Everything produced by one full routing flow."""

    design: Design
    global_result: GlobalRoutingResult
    layer_assignment: LayerAssignment
    track_assignment: DesignTrackAssignment
    detailed_result: DetailedResult
    report: RoutingReport
    cpu_seconds: float


class StitchAwareRouter:
    """The proposed stitch-aware routing framework.

    Args:
        track_method: which short-polygon-avoiding track assignment to
            run (GRAPH by default; ILP reproduces the Table VII column
            at the documented runtime cost).
        coloring: layer-assignment coloring heuristic (FLOW = ours).
        stitch_aware_global / stitch_aware_detail: ablation switches
            for Tables IV and VIII.
    """

    def __init__(
        self,
        track_method: TrackMethod = TrackMethod.GRAPH,
        coloring: ColoringMethod = ColoringMethod.FLOW,
        stitch_aware_global: bool = True,
        stitch_aware_detail: bool = True,
    ) -> None:
        self.track_method = track_method
        self.coloring = coloring
        self.stitch_aware_global = stitch_aware_global
        self.stitch_aware_detail = stitch_aware_detail

    def route(self, design: Design) -> FlowResult:
        """Run the full two-pass flow (Fig. 6) on ``design``."""
        start = time.perf_counter()

        def global_stage(d: Design, ordered) -> GlobalRoutingResult:
            # Pass 1: bottom-up global routing of local nets first; the
            # router re-derives the same bottom-up order internally.
            return GlobalRouter(stitch_aware=self.stitch_aware_global).route(d)

        def assign_stage(d: Design, global_result: GlobalRoutingResult):
            columns, rows = extract_panels(global_result)
            layers = assign_layers(
                columns, rows, d.technology, method=self.coloring
            )
            tracks = assign_tracks(
                d, global_result.graph, layers, method=self.track_method
            )
            return layers, tracks

        def detail_stage(d: Design, global_result, assigned, ordered):
            _layers, tracks = assigned
            return DetailedRouter(
                stitch_aware=self.stitch_aware_detail
            ).route(d, global_result.graph, tracks, order_hint=ordered)

        # The multilevel scheme needs the tile grid dimensions, which
        # the global graph defines; probe them without routing.
        from ..globalroute import GlobalGraph

        probe = GlobalGraph(design)
        scheme = MultilevelScheme(design, probe.nx, probe.ny)
        framework = TwoPassFramework(global_stage, assign_stage, detail_stage)
        outcome = framework.run(design, scheme)

        layers, tracks = outcome.assign_result
        report = evaluate(outcome.detail_result)
        elapsed = time.perf_counter() - start
        report.cpu_seconds = elapsed
        return FlowResult(
            design=design,
            global_result=outcome.global_result,
            layer_assignment=layers,
            track_assignment=tracks,
            detailed_result=outcome.detail_result,
            report=report,
            cpu_seconds=elapsed,
        )


class BaselineRouter(StitchAwareRouter):
    """The conventional router compared against in Table III."""

    def __init__(self) -> None:
        super().__init__(
            track_method=TrackMethod.BASELINE,
            coloring=ColoringMethod.MST,
            stitch_aware_global=False,
            stitch_aware_detail=False,
        )
