"""The full stitch-aware routing flow and its baseline (Table III).

``StitchAwareRouter`` wires the stage implementations into the two-pass
bottom-up multilevel framework of Fig. 6: stitch-aware global routing,
stitch-aware layer assignment (flow-based coloring), short-polygon-
avoiding track assignment (graph heuristic or ILP), and stitch-aware
detailed routing.

``BaselineRouter`` is the comparison router of Section IV-A: global
routing without the line-end term (NTUgr-style), conventional layer
assignment (maximum-spanning-tree coloring, segment density only),
conventional track assignment (segments landing on stitching-line
tracks are ripped up and routed directly in detailed routing), and
detailed routing without the stitch costs — but with the same hard
legality (wires only cross stitching lines in the x direction), so it
also produces zero vertical routing violations.

Both routers take a single :class:`~repro.config.RouterConfig` and an
optional :class:`~repro.observe.Tracer`; every run produces a
:class:`~repro.observe.RunTrace` with per-stage spans and counters,
attached to both the :class:`FlowResult` and its report.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import TYPE_CHECKING, Optional

from ..assign import (
    DesignTrackAssignment,
    LayerAssignment,
    assign_layers,
    assign_tracks,
    extract_panels,
)
from ..config import (
    ColoringMethod,
    RouterConfig,
    TrackMethod,
    resolve_engine,
    resolve_executor,
)
from ..detailed import DetailedResult, DetailedRouter
from ..eval import RoutingReport, evaluate
from ..globalroute import GlobalGraph, GlobalRouter, GlobalRoutingResult
from ..layout import Design
from ..multilevel import MultilevelScheme, TwoPassFramework
from ..observe import RunTrace, Tracer, ensure

if TYPE_CHECKING:  # runtime import stays lazy (analysis is optional here)
    from ..analysis import AuditReport

#: Positional-argument order of the pre-``RouterConfig`` constructor,
#: kept for the deprecated compatibility path.
_LEGACY_FLAGS = (
    "track_method",
    "coloring",
    "stitch_aware_global",
    "stitch_aware_detail",
)


@dataclasses.dataclass
class FlowResult:
    """Everything produced by one full routing flow."""

    design: Design
    global_result: GlobalRoutingResult
    layer_assignment: LayerAssignment
    track_assignment: DesignTrackAssignment
    detailed_result: DetailedResult
    report: RoutingReport
    cpu_seconds: float
    #: Per-stage observability trace of this run.
    trace: Optional[RunTrace] = None
    #: Independent solution audit (:mod:`repro.analysis.audit`);
    #: attached only when the flow ran with ``config.audit=True``.
    audit: Optional["AuditReport"] = None


class StitchAwareRouter:
    """The proposed stitch-aware routing framework.

    Args:
        config: the flow's knob set.  The routing-policy fields are
            ``track_method`` (GRAPH by default; ILP reproduces the
            Table VII column at the documented runtime cost),
            ``coloring`` (FLOW = ours), and the ablation switches
            ``stitch_aware_global`` / ``stitch_aware_detail`` for
            Tables IV and VIII.

    Passing those four flags directly to the constructor (positionally
    or by keyword) is deprecated; they are folded into ``config`` with
    a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        *legacy_args,
        config: Optional[RouterConfig] = None,
        **legacy_kwargs,
    ) -> None:
        overrides = self._legacy_overrides(legacy_args, legacy_kwargs)
        base = config if config is not None else RouterConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self.config = base

    @staticmethod
    def _legacy_overrides(args: tuple, kwargs: dict) -> dict:
        """Map pre-``RouterConfig`` constructor flags onto config fields."""
        if not args and not kwargs:
            return {}
        if len(args) > len(_LEGACY_FLAGS):
            raise TypeError(
                f"expected at most {len(_LEGACY_FLAGS)} positional "
                f"arguments, got {len(args)}"
            )
        overrides = dict(zip(_LEGACY_FLAGS, args))
        for name, value in kwargs.items():
            if name not in _LEGACY_FLAGS:
                raise TypeError(f"unexpected keyword argument {name!r}")
            if name in overrides:
                raise TypeError(f"got multiple values for {name!r}")
            overrides[name] = value
        warnings.warn(
            "passing routing flags directly to the router is deprecated; "
            "pass config=RouterConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return overrides

    # -- config aliases (read-only views used throughout tests/docs) ---
    @property
    def track_method(self) -> TrackMethod:
        """Track-assignment policy (from :attr:`config`)."""
        return self.config.track_method

    @property
    def coloring(self) -> ColoringMethod:
        """Layer-assignment coloring policy (from :attr:`config`)."""
        return self.config.coloring

    @property
    def stitch_aware_global(self) -> bool:
        """Global-routing ablation switch (from :attr:`config`)."""
        return self.config.stitch_aware_global

    @property
    def stitch_aware_detail(self) -> bool:
        """Detailed-routing ablation switch (from :attr:`config`)."""
        return self.config.stitch_aware_detail

    def route(
        self, design: Design, *, tracer: Optional[Tracer] = None
    ) -> FlowResult:
        """Run the full two-pass flow (Fig. 6) on ``design``.

        Args:
            design: the routing instance.
            tracer: observability sink; a fresh one is created when
                omitted.  The finished :class:`RunTrace` is attached to
                the result and its report either way.
        """
        tracer = ensure(tracer)
        start = time.perf_counter()
        config = self.config
        # Resolve "auto" once so both stages run the same engine and
        # the trace meta records the concrete choice.
        engine = resolve_engine(config.engine).value
        executor = resolve_executor(config.executor).value

        def global_stage(d: Design, ordered) -> GlobalRoutingResult:
            # Pass 1: bottom-up global routing of local nets first; the
            # router re-derives the same bottom-up order internally.
            return GlobalRouter(
                stitch_aware=config.stitch_aware_global,
                workers=config.workers,
                sanitize=config.sanitize,
                engine=engine,
                profile=config.profile,
                executor=executor,
            ).route(d, tracer=tracer)

        def assign_stage(d: Design, global_result: GlobalRoutingResult):
            columns, rows = extract_panels(global_result)
            layers = assign_layers(
                columns,
                rows,
                d.technology,
                method=config.coloring,
                tracer=tracer,
            )
            tracks = assign_tracks(
                d,
                global_result.graph,
                layers,
                method=config.track_method,
                tracer=tracer,
            )
            return layers, tracks

        def detail_stage(d: Design, global_result, assigned, ordered):
            _layers, tracks = assigned
            return DetailedRouter(
                stitch_aware=config.stitch_aware_detail,
                workers=config.workers,
                sanitize=config.sanitize,
                engine=engine,
                profile=config.profile,
                executor=executor,
            ).route(
                d,
                global_result.graph,
                tracks,
                order_hint=ordered,
                tracer=tracer,
            )

        # The multilevel scheme needs the tile grid dimensions, which
        # the global graph defines.
        nx, ny = GlobalGraph.grid_shape(design)
        scheme = MultilevelScheme(design, nx, ny)
        framework = TwoPassFramework(
            global_stage, assign_stage, detail_stage, workers=config.workers
        )
        outcome = framework.run(design, scheme, tracer=tracer)

        layers, tracks = outcome.assign_result
        report = evaluate(outcome.detail_result)
        audit_report: Optional[AuditReport] = None
        if config.audit:
            # Lazy import: the analysis package is a consumer of the
            # routing packages, so core must not import it eagerly.
            from ..analysis import audit_solution

            with tracer.span("audit") as span:
                audit_report = audit_solution(
                    outcome.detail_result, report, outcome.global_result
                )
                span.count("audit_nets_checked", audit_report.nets_checked)
                span.count("audit_findings", len(audit_report.findings))
                span.count("audit_drift", len(audit_report.drift))
        elapsed = time.perf_counter() - start
        report.cpu_seconds = elapsed
        meta = {
            "track_method": config.track_method.value,
            "coloring": config.coloring.value,
            "stitch_aware_global": config.stitch_aware_global,
            "stitch_aware_detail": config.stitch_aware_detail,
            "workers": config.workers,
            "sanitize": config.sanitize,
            "engine": engine,
        }
        if config.workers > 1:
            # Pool-kind stamp for parallel runs only: serial traces
            # build no pool, and stamping them would break
            # byte-compatibility with the committed baselines.
            meta["executor"] = executor
        if config.audit:
            # Only stamped when enabled so default-config traces stay
            # byte-compatible with the committed baselines.
            meta["audit"] = True
        if config.profile != "off":
            # Same compatibility rule as the audit stamp.
            meta["profile"] = config.profile
        trace = tracer.finish(
            router=type(self).__name__,
            design=design.name,
            meta=meta,
        )
        report.trace = trace
        return FlowResult(
            design=design,
            global_result=outcome.global_result,
            layer_assignment=layers,
            track_assignment=tracks,
            detailed_result=outcome.detail_result,
            report=report,
            cpu_seconds=elapsed,
            trace=trace,
            audit=audit_report,
        )


class BaselineRouter(StitchAwareRouter):
    """The conventional router compared against in Table III.

    Accepts a ``config`` like :class:`StitchAwareRouter` but pins the
    four policy flags to the baseline settings of Section IV-A.
    """

    def __init__(self, *, config: Optional[RouterConfig] = None) -> None:
        base = config if config is not None else RouterConfig()
        super().__init__(
            config=dataclasses.replace(
                base,
                track_method=TrackMethod.BASELINE,
                coloring=ColoringMethod.MST,
                stitch_aware_global=False,
                stitch_aware_detail=False,
            )
        )
