"""Full routing flows: the stitch-aware framework and its baseline."""

from .flow import BaselineRouter, FlowResult, StitchAwareRouter

__all__ = ["BaselineRouter", "FlowResult", "StitchAwareRouter"]
