"""Full routing flows: the stitch-aware framework and its baseline.

Importing the flow classes from this package is deprecated — the
stable import path is :mod:`repro.api` (the implementation lives in
:mod:`repro.core.flow`).  The lazy shim below keeps old imports
working through one deprecation cycle while pointing at the facade.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # static view of the shimmed names
    from .flow import BaselineRouter, FlowResult, StitchAwareRouter

__all__ = ["BaselineRouter", "FlowResult", "StitchAwareRouter"]

_SHIMMED = frozenset(__all__)


def __getattr__(name: str) -> Any:
    if name in _SHIMMED:
        warnings.warn(
            f"importing {name} from repro.core is deprecated; "
            "import it from repro.api instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import flow

        return getattr(flow, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
