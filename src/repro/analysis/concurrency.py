"""Static concurrency-effect analyzer (the CONC rule catalog).

The parallel engine's serial-equivalence guarantee rests on a
discipline the runtime sanitizer can only check for workloads that
happen to exercise it: speculative code must route every shared-state
access through snapshots and overlays, process workers must declare
the structures they touch, and the merge loop must consume results in
submission order.  PR 8's 10x-scale differential found two bugs
(batch-backfill ordering, dropped trim-release tombstones) that every
dynamic check missed.  This module is the static twin: an
interprocedural, AST-based effect analyzer that proves the discipline
over the code itself, before any workload runs.

How it works:

1. every function in the analyzed files goes into a table, keyed by
   module and qualified name, with its direct shared-state *effects*
   (reads/writes over the :data:`~repro.analysis.context.
   SHARED_STRUCTURES` vocabulary, rooted either at a parameter or at a
   concrete receiver classification) and its outgoing calls;
2. ``@repro.analysis.context(...)`` markers seed execution contexts
   (canonical / speculative / worker-process); pool boundaries —
   ``pool.run(lambda ...)`` and ``configure(task=...)`` — seed them
   implicitly;
3. from each speculative / worker-process seed, effects are resolved
   through the call graph: parameter-rooted effects substitute the
   argument's classification at each call site, marked callees act as
   contract boundaries contributing their *declared* footprint, and
   overlay-classified receivers are sanctioned and dropped;
4. the CONC rules judge what remains (see
   :data:`~repro.analysis.rules.CONC_RULES`).

Findings mirror the determinism linter's: ``# repro: allow-CONCnnn``
suppressions, a committed fingerprint baseline
(``races-baseline.json``), and ``repro races`` as the CLI front end.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from collections.abc import Iterable, Sequence
from typing import Optional, Union

from .context import SHARED_STRUCTURES
from .findings import (
    DeadSuppression,
    Finding,
    dead_suppression_lines,
    finding_lines,
    suppression_map,
)
from .findings import resolve_rule_filter as _resolve_rule_filter
from .lint import iter_python_files
from .rules import CONC_RULES

#: Packages (inside a ``repro`` tree) whose files the CONC rules judge.
#: Standalone files (fixtures, scripts) are always in scope.
CONCURRENCY_PACKAGES = frozenset(
    {"parallel", "engine", "globalroute", "detailed"}
)

#: A function parameter index, or a concrete receiver classification.
Root = Union[int, str]

_BASE = "base"
_OVERLAY = "overlay"
_CHANNEL = "channel"
_PROCPOOL = "procpool"
_UNKNOWN = "unknown"

#: Classes owning live shared state.
BASE_CLASS_NAMES = frozenset(
    {"GlobalGraph", "ArrayGlobalGraph", "DetailedGrid", "ArrayDetailedGrid"}
)

#: Classes implementing the sanctioned speculation surface.
OVERLAY_CLASS_NAMES = frozenset(
    {
        "GraphSnapshot",
        "ArrayGraphSnapshot",
        "SanitizedGraphSnapshot",
        "GridOverlay",
        "ArrayGridOverlay",
        "SanitizedGridOverlay",
        "OverlayDelta",
        "_OwnerOverlay",
        "_IndexedOwnerOverlay",
    }
)

CHANNEL_CLASS_NAMES = frozenset({"SharedStateChannel"})
PROCESS_POOL_CLASS_NAMES = frozenset({"ProcessBatchExecutor"})

#: Factory/attach methods whose *result* is sanctioned speculation
#: state; calling them is never an effect.
OVERLAY_FACTORY_METHODS = frozenset(
    {"snapshot", "speculative_overlay", "from_overlay", "from_payload"}
)

#: Shared-structure effects of the known vocabulary methods.  These
#: are intrinsics: the call records the effect against the receiver's
#: classification and no call edge is added into the method body.
_CALL_EFFECTS: dict[str, tuple[tuple[str, str], ...]] = {
    # global-routing graph
    "edge_demand": (("global.demand", "read"),),
    "edge_capacity": (("global.capacity", "read"),),
    "edge_overflow": (("global.demand", "read"),),
    "total_vertex_overflow": (("global.demand", "read"),),
    "max_vertex_overflow": (("global.demand", "read"),),
    "add_edge_demand": (("global.demand", "write"),),
    "add_vertex_demand": (("global.demand", "write"),),
    "refresh_cost_cache": (("engine.cache", "write"),),
    "import_shared_state": (
        ("global.demand", "write"),
        ("global.history", "write"),
        ("engine.cache", "write"),
    ),
    "shared_state_arrays": (
        ("global.demand", "read"),
        ("global.history", "read"),
    ),
    # detailed grid
    "owner": (("grid.owner", "read"),),
    "occupied_by": (("grid.owner", "read"),),
    "is_free_for": (("grid.owner", "read"),),
    "is_pin": (("grid.owner", "read"),),
    "occupy": (("grid.owner", "write"),),
    "force_occupy": (("grid.owner", "write"),),
    "release": (("grid.owner", "write"),),
    "mark_pin": (("grid.owner", "write"),),
    "start_journal": (("grid.journal", "write"),),
    "drain_journal": (("grid.journal", "write"),),
    "stop_journal": (("grid.journal", "write"),),
    # shared-memory channel
    "publish": (("channel", "write"),),
    "sync": (("channel", "read"),),
}

#: ``graph.<attr>`` loads/stores that touch shared arrays directly.
_ATTR_STRUCTURES: dict[str, str] = {
    "h_demand": "global.demand",
    "v_demand": "global.demand",
    "vertex_demand": "global.demand",
    "h_history": "global.history",
    "v_history": "global.history",
    "vertex_history": "global.history",
    "h_capacity": "global.capacity",
    "v_capacity": "global.capacity",
    "vertex_capacity": "global.capacity",
    "_owner": "grid.owner",
}

#: Name-hint token sets, checked in this order (overlay wins so
#: ``base_overlay`` classifies as sanctioned).
_OVERLAY_TOKENS = frozenset({"overlay", "snapshot", "snap", "delta", "deltas"})
_BASE_TOKENS = frozenset({"graph", "grid", "base"})
_CHANNEL_TOKENS = frozenset({"channel"})
_POOL_TOKENS = frozenset({"pool", "executor"})

#: Identifier tokens marking a value as unordered fan-in results for
#: the CONC005 heuristic.
_FANIN_TOKENS = frozenset(
    {
        "result",
        "results",
        "done",
        "future",
        "futures",
        "deltas",
        "outcomes",
        "outputs",
        "replies",
        "responses",
    }
)

_VIA_CAP = 4


def _tokens(name: str) -> frozenset[str]:
    return frozenset(name.lower().lstrip("_").split("_"))


def _hint(name: str) -> Optional[str]:
    """Name-based classification fallback for unannotated values."""
    tokens = _tokens(name)
    if tokens & _OVERLAY_TOKENS:
        return _OVERLAY
    if tokens & _BASE_TOKENS:
        return _BASE
    if tokens & _CHANNEL_TOKENS:
        return _CHANNEL
    return None


def _class_classification(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    if name in BASE_CLASS_NAMES:
        return _BASE
    if name in OVERLAY_CLASS_NAMES:
        return _OVERLAY
    if name in CHANNEL_CLASS_NAMES:
        return _CHANNEL
    if name in PROCESS_POOL_CLASS_NAMES:
        return _PROCPOOL
    return None


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """The head class name of an annotation expression, if simple."""
    if node is None:
        return None
    expr: ast.expr = node
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        head = expr.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1]
    return None


def concurrency_rules_apply(path: str) -> bool:
    """Whether ``path`` is in scope for the CONC rules.

    Inside a ``repro`` package tree only the parallel-engine packages
    are judged; standalone files (fixtures, scripts) always are, so
    test corpora exercise every rule.
    """
    parts = pathlib.PurePath(path).parts
    if "repro" in parts:
        return any(part in CONCURRENCY_PACKAGES for part in parts)
    return True


@dataclasses.dataclass(frozen=True)
class _Effect:
    """One shared-structure access, rooted at a parameter or concretely."""

    root: Root
    structure: str
    kind: str  # "read" | "write"
    line: int
    col: int
    text: str
    via: tuple[str, ...] = ()


@dataclasses.dataclass
class _Call:
    """One outgoing call edge recorded during the function scan."""

    name: str
    is_method: bool
    receiver_root: Root
    pos_roots: list[Root]
    kw_roots: dict[str, Root]
    line: int
    col: int
    text: str


@dataclasses.dataclass
class _LambdaScan:
    """Effects/calls of a lambda passed to a pool ``run()`` boundary."""

    effects: list[_Effect]
    calls: list[_Call]


@dataclasses.dataclass
class _Syntactic:
    """A rule breach detected purely locally (CONC003/5/6 candidates)."""

    rule: str
    detail: str
    line: int
    col: int
    text: str


@dataclasses.dataclass
class _FunctionInfo:
    """One table entry: a function plus everything the scan extracted."""

    path: str
    qualname: str
    name: str
    cls: Optional[str]
    params: list[str]
    annotations: dict[int, Optional[str]]
    context: Optional[str] = None
    declared_reads: Optional[tuple[str, ...]] = None
    declared_writes: Optional[tuple[str, ...]] = None
    implicit_context: Optional[str] = None
    effects: list[_Effect] = dataclasses.field(default_factory=list)
    calls: list[_Call] = dataclasses.field(default_factory=list)
    syntactic: list[_Syntactic] = dataclasses.field(default_factory=list)
    run_lambdas: list[_LambdaScan] = dataclasses.field(default_factory=list)
    configure_tasks: list[str] = dataclasses.field(default_factory=list)

    @property
    def effective_context(self) -> Optional[str]:
        return self.context if self.context is not None else (
            self.implicit_context
        )

    def seed_root(self, index: int) -> str:
        """Classify parameter ``index`` when this function is a seed."""
        if index >= len(self.params):
            return _UNKNOWN
        name = self.params[index]
        if index == 0 and self.cls is not None and name in ("self", "cls"):
            return _class_classification(self.cls) or _UNKNOWN
        by_annotation = _class_classification(self.annotations.get(index))
        if by_annotation in (_BASE, _OVERLAY, _CHANNEL):
            return by_annotation
        return _hint(name) or _UNKNOWN


def _parse_context_decorator(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Optional[tuple[str, Optional[tuple[str, ...]], Optional[tuple[str, ...]]]]:
    """Extract ``@context(kind, reads=..., writes=...)`` if present."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "context":
            continue
        if not decorator.args:
            continue
        kind_node = decorator.args[0]
        if not (
            isinstance(kind_node, ast.Constant)
            and isinstance(kind_node.value, str)
        ):
            continue
        footprints: dict[str, Optional[tuple[str, ...]]] = {
            "reads": None,
            "writes": None,
        }
        for keyword in decorator.keywords:
            if keyword.arg not in footprints:
                continue
            value = keyword.value
            if isinstance(value, (ast.Tuple, ast.List)):
                names = tuple(
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
                footprints[keyword.arg] = names
            elif isinstance(value, ast.Constant) and value.value is None:
                footprints[keyword.arg] = None
        return kind_node.value, footprints["reads"], footprints["writes"]
    return None


class _FunctionScanner(ast.NodeVisitor):
    """Single-function walk extracting effects, calls, and syntactics.

    Bindings map local names to roots: a parameter index, or a
    concrete classification learned from an annotation, constructor,
    or factory call.  Free names fall back to name hints — except
    names bound in an enclosing function (closures), which stay
    unknown: the closed-over value's identity belongs to the parent's
    scope, not to this function's signature.
    """

    def __init__(
        self,
        info: _FunctionInfo,
        lines: Sequence[str],
        outer_names: frozenset[str],
    ) -> None:
        self.info = info
        self.lines = lines
        self.outer_names = outer_names
        self.bindings: dict[str, Root] = {}
        #: Names with a statically exact class (for CONC003 gating).
        self.exact_class: dict[str, str] = {}
        #: Locally defined nested-function names (CONC003 captures).
        self.local_defs: set[str] = set()
        #: Local names bound to ``set(<fan-in results>)`` (CONC005).
        self.fanin_sets: set[str] = set()
        #: Attribute nodes already recorded by an enclosing handler.
        self._claimed: set[int] = set()
        #: Effect/call sinks — swapped while scanning a run-lambda.
        self._effects = info.effects
        self._calls = info.calls
        for index, name in enumerate(info.params):
            self.bindings[name] = index
            annotation = info.annotations.get(index)
            if annotation in PROCESS_POOL_CLASS_NAMES:
                self.exact_class[name] = annotation

    # -- plumbing ------------------------------------------------------
    def _site(self, node: ast.AST) -> tuple[int, int, str]:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1].strip()
        return line, col, text

    def _record(
        self, node: ast.AST, root: Root, structure: str, kind: str
    ) -> None:
        if root in (_OVERLAY, _UNKNOWN, _PROCPOOL):
            return
        line, col, text = self._site(node)
        self._effects.append(
            _Effect(
                root=root,
                structure=structure,
                kind=kind,
                line=line,
                col=col,
                text=text,
            )
        )

    def _syntactic(self, node: ast.AST, rule: str, detail: str) -> None:
        line, col, text = self._site(node)
        self.info.syntactic.append(
            _Syntactic(rule=rule, detail=detail, line=line, col=col, text=text)
        )

    # -- classification ------------------------------------------------
    def _classify(self, node: ast.expr) -> Root:
        if isinstance(node, ast.Name):
            if node.id in self.bindings:
                return self.bindings[node.id]
            if node.id in self.outer_names:
                return _UNKNOWN
            classified = _class_classification(node.id)
            if classified is not None:
                return classified
            return _hint(node.id) or _UNKNOWN
        if isinstance(node, ast.Attribute):
            return _hint(node.attr) or _UNKNOWN
        if isinstance(node, ast.Subscript):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, str
            ):
                return _hint(index.value) or _UNKNOWN
            return _UNKNOWN
        if isinstance(node, ast.Call):
            return self._classify_call(node)
        if isinstance(node, ast.IfExp):
            body = self._classify(node.body)
            orelse = self._classify(node.orelse)
            return body if body == orelse else _UNKNOWN
        return _UNKNOWN

    def _classify_call(self, node: ast.Call) -> Root:
        func = node.func
        if isinstance(func, ast.Name):
            return _class_classification(func.id) or _UNKNOWN
        if isinstance(func, ast.Attribute):
            if func.attr in OVERLAY_FACTORY_METHODS:
                return _OVERLAY
            if func.attr in ("create", "attach"):
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in CHANNEL_CLASS_NAMES
                ) or self._classify(receiver) == _CHANNEL:
                    return _CHANNEL
        return _UNKNOWN

    def _is_exact_procpool(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self.exact_class.get(node.id) in PROCESS_POOL_CLASS_NAMES
        return self._classify(node) == _PROCPOOL

    def _is_poolish(self, node: ast.expr) -> bool:
        if self._is_exact_procpool(node):
            return True
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        return name is not None and bool(_tokens(name) & _POOL_TOKENS)

    # -- statements ----------------------------------------------------
    def scan(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self.visit(statement)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs are separate table entries; only note the name
        # so CONC003 can spot them crossing a process-pool boundary.
        self.local_defs.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.local_defs.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # local classes: methods become their own table entries

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        root = self._classify(node.value)
        exact: Optional[str] = None
        if isinstance(node.value, ast.Call) and isinstance(
            node.value.func, ast.Name
        ):
            if node.value.func.id in PROCESS_POOL_CLASS_NAMES:
                exact = node.value.func.id
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.bindings[target.id] = root
                if exact is not None:
                    self.exact_class[target.id] = exact
                else:
                    self.exact_class.pop(target.id, None)
                self._track_fanin(target.id, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if not isinstance(node.target, ast.Name):
            return
        annotation = _annotation_name(node.annotation)
        classified = _class_classification(annotation)
        if classified is not None:
            self.bindings[node.target.id] = classified
        elif node.value is not None:
            self.bindings[node.target.id] = self._classify(node.value)
        if annotation in PROCESS_POOL_CLASS_NAMES:
            self.exact_class[node.target.id] = annotation
        if node.value is not None:
            self._track_fanin(node.target.id, node.value)

    def _track_fanin(self, name: str, value: ast.expr) -> None:
        if self._is_fanin_set_expr(value):
            self.fanin_sets.add(name)
        else:
            self.fanin_sets.discard(name)

    @staticmethod
    def _is_fanin_set_expr(value: ast.expr) -> bool:
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
            and value.args
        ):
            return False
        argument = value.args[0]
        name = None
        if isinstance(argument, ast.Name):
            name = argument.id
        elif isinstance(argument, ast.Attribute):
            name = argument.attr
        elif (
            isinstance(argument, ast.Call)
            and isinstance(argument.func, ast.Attribute)
            and argument.func.attr == "run"
        ):
            # ``set(pool.run(...))`` — the fan-in producer itself.
            return True
        return name is not None and bool(_tokens(name) & _FANIN_TOKENS)

    # -- CONC005: fan-in order -----------------------------------------
    def visit_For(self, node: ast.For) -> None:
        iterable = node.iter
        if (
            isinstance(iterable, ast.Name)
            and iterable.id in self.fanin_sets
        ) or self._is_fanin_set_expr(iterable):
            self._syntactic(
                iterable,
                "CONC005",
                "iterating fan-in results in set (hash) order",
            )
        self.generic_visit(node)

    # -- effects: attribute / subscript access -------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        structure = _ATTR_STRUCTURES.get(node.attr)
        if structure is not None and id(node) not in self._claimed:
            root = self._classify(node.value)
            if isinstance(node.ctx, ast.Load):
                self._record(node, root, structure, "read")
            else:
                self._record(node, root, structure, "write")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
            node.value, ast.Attribute
        ):
            structure = _ATTR_STRUCTURES.get(node.value.attr)
            if structure is not None:
                root = self._classify(node.value.value)
                self._record(node, root, structure, "write")
                self._claimed.add(id(node.value))
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "as_completed":
                self._syntactic(
                    node,
                    "CONC005",
                    "as_completed() yields results in completion order",
                )
            elif _class_classification(func.id) is None:
                self._add_call_edge(node, func.id, is_method=False)
        elif isinstance(func, ast.Attribute):
            self._visit_method_call(node, func)
        self.generic_visit(node)

    def _visit_method_call(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        if attr == "as_completed":
            self._syntactic(
                node,
                "CONC005",
                "as_completed() yields results in completion order",
            )
            return
        if (
            attr == "pop"
            and not node.args
            and isinstance(func.value, ast.Name)
            and func.value.id in self.fanin_sets
        ):
            self._syntactic(
                node,
                "CONC005",
                "set.pop() drains fan-in results in hash order",
            )
            return
        if attr in _CALL_EFFECTS:
            root = self._classify(func.value)
            for structure, kind in _CALL_EFFECTS[attr]:
                self._record(node, root, structure, kind)
            return
        if attr in OVERLAY_FACTORY_METHODS:
            return  # sanctioned: result classification happens on bind
        if attr == "run":
            self._visit_pool_run(node, func)
            return
        if attr == "configure":
            self._visit_pool_configure(node, func)
            return
        if attr in ("create", "attach") and self._classify_call(
            node
        ) == _CHANNEL:
            return  # channel factories are contract boundaries
        self._add_call_edge(
            node, attr, is_method=True, receiver=func.value
        )

    def _visit_pool_run(self, node: ast.Call, func: ast.Attribute) -> None:
        if not self._is_poolish(func.value):
            self._add_call_edge(
                node, "run", is_method=True, receiver=func.value
            )
            return
        for argument in node.args:
            if isinstance(argument, ast.Lambda):
                if self._is_exact_procpool(func.value):
                    self._syntactic(
                        argument,
                        "CONC003",
                        "lambda task cannot cross the process boundary",
                    )
                self._scan_run_lambda(argument)
                self._claimed.add(id(argument))

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if id(node) in self._claimed:
            return  # already scanned as a pool-run pseudo-seed
        self.generic_visit(node)

    def _visit_pool_configure(
        self, node: ast.Call, func: ast.Attribute
    ) -> None:
        if not self._is_poolish(func.value):
            return
        exact = self._is_exact_procpool(func.value)
        for keyword in node.keywords:
            if keyword.arg not in ("task", "initializer"):
                continue
            value = keyword.value
            if isinstance(value, ast.Lambda):
                if exact:
                    self._syntactic(
                        value,
                        "CONC003",
                        f"lambda {keyword.arg} cannot cross the process"
                        " boundary",
                    )
            elif isinstance(value, ast.Name):
                if value.id in self.local_defs:
                    if exact:
                        self._syntactic(
                            value,
                            "CONC003",
                            f"nested function {value.id!r} captures its"
                            " closure across the process boundary",
                        )
                else:
                    self.info.configure_tasks.append(value.id)
            elif isinstance(value, ast.Attribute) and exact:
                self._syntactic(
                    value,
                    "CONC003",
                    f"bound method {value.attr!r} pickles its whole"
                    " instance across the process boundary",
                )

    def _scan_run_lambda(self, node: ast.Lambda) -> None:
        """Scan a pool-run lambda as a speculative pseudo-seed."""
        scan = _LambdaScan(effects=[], calls=[])
        saved_effects, saved_calls = self._effects, self._calls
        saved_bindings = dict(self.bindings)
        self._effects, self._calls = scan.effects, scan.calls
        for argument in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        ):
            self.bindings[argument.arg] = _hint(argument.arg) or _UNKNOWN
        try:
            self.visit(node.body)
        finally:
            self._effects, self._calls = saved_effects, saved_calls
            self.bindings = saved_bindings
        self.info.run_lambdas.append(scan)

    def _add_call_edge(
        self,
        node: ast.Call,
        name: str,
        *,
        is_method: bool,
        receiver: Optional[ast.expr] = None,
    ) -> None:
        line, col, text = self._site(node)
        receiver_root: Root = _UNKNOWN
        if receiver is not None:
            receiver_root = self._classify(receiver)
        self._calls.append(
            _Call(
                name=name,
                is_method=is_method,
                receiver_root=receiver_root,
                pos_roots=[self._classify(arg) for arg in node.args],
                kw_roots={
                    keyword.arg: self._classify(keyword.value)
                    for keyword in node.keywords
                    if keyword.arg is not None
                },
                line=line,
                col=col,
                text=text,
            )
        )


def _is_alloc_call(node: ast.Call) -> bool:
    """Whether ``node`` allocates an owned shared-memory resource."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "_create_segment":
            return True
        if func.id == "SharedMemory":
            return any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
        return False
    if isinstance(func, ast.Attribute):
        if func.attr == "SharedMemory":
            return any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
        if func.attr == "create":
            return (
                isinstance(func.value, ast.Name)
                and func.value.id in CHANNEL_CLASS_NAMES
            )
    return False


class _AllocScanner(ast.NodeVisitor):
    """CONC006: shared-memory allocations without a cleanup path.

    An allocation is exempt when it is

    * inside a ``try`` whose handlers or ``finally`` call ``close()``
      or ``unlink()`` (cleanup on the failure path),
    * bound to a name whose ``close()``/``unlink()`` appears inside an
      ``except``/``finally`` block later in the same scope (failure-
      path cleanup of an allocation made before the ``try``),
    * returned from the function (ownership transfers to the caller),
    * or stored on ``self`` (ownership transfers to the instance,
      whose lifecycle methods own cleanup).
    """

    def __init__(
        self, info: _FunctionInfo, lines: Sequence[str]
    ) -> None:
        self.info = info
        self.lines = lines
        self._protected = 0
        self._returned_names: set[str] = set()
        self._cleanup_names: set[str] = set()

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            for walked in ast.walk(statement):
                if isinstance(walked, ast.Return) and walked.value is not None:
                    for name in ast.walk(walked.value):
                        if isinstance(name, ast.Name):
                            self._returned_names.add(name.id)
                if isinstance(walked, ast.Try):
                    cleanup: list[ast.stmt] = list(walked.finalbody)
                    for handler in walked.handlers:
                        cleanup.extend(handler.body)
                    self._cleanup_names |= self._cleaned_names(cleanup)
        for statement in body:
            self.visit(statement)

    @staticmethod
    def _cleaned_names(statements: Iterable[ast.stmt]) -> set[str]:
        names: set[str] = set()
        for statement in statements:
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                    and isinstance(node.func.value, ast.Name)
                ):
                    names.add(node.func.value.id)
        return names

    # -- structure -----------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are scanned as their own table entries

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    @staticmethod
    def _has_cleanup(statements: Iterable[ast.stmt]) -> bool:
        for statement in statements:
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                ):
                    return True
        return False

    def visit_Try(self, node: ast.Try) -> None:
        cleanup: list[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        protected = self._has_cleanup(cleanup)
        if protected:
            self._protected += 1
        for statement in node.body:
            self.visit(statement)
        if protected:
            self._protected -= 1
        for statement in node.orelse:
            self.visit(statement)
        for handler in node.handlers:
            for statement in handler.body:
                self.visit(statement)
        for statement in node.finalbody:
            self.visit(statement)

    # -- allocation sites ----------------------------------------------
    def _exempt_assignment(self, targets: Iterable[ast.expr]) -> bool:
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id in ("self", "cls"):
                    return True
            if isinstance(target, ast.Name) and (
                target.id in self._returned_names
                or target.id in self._cleanup_names
            ):
                return True
        return False

    def _check_value(
        self, value: Optional[ast.expr], exempt: bool
    ) -> None:
        if value is None:
            return
        for node in ast.walk(value):
            if not (isinstance(node, ast.Call) and _is_alloc_call(node)):
                continue
            if exempt or self._protected > 0:
                continue
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            text = ""
            if 1 <= line <= len(self.lines):
                text = self.lines[line - 1].strip()
            self.info.syntactic.append(
                _Syntactic(
                    rule="CONC006",
                    detail="shared-memory segment leaks if this scope"
                    " unwinds before cleanup",
                    line=line,
                    col=col,
                    text=text,
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_value(node.value, self._exempt_assignment(node.targets))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_value(
            node.value, self._exempt_assignment([node.target])
        )

    def visit_Return(self, node: ast.Return) -> None:
        pass  # returning the allocation transfers ownership

    def visit_Expr(self, node: ast.Expr) -> None:
        self._check_value(node.value, False)


def _assigned_names(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> frozenset[str]:
    """Parameters plus every name the function body binds."""
    names = {
        argument.arg
        for argument in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
    }
    if node.args.vararg is not None:
        names.add(node.args.vararg.arg)
    if node.args.kwarg is not None:
        names.add(node.args.kwarg.arg)
    for walked in ast.walk(node):
        if isinstance(walked, ast.Name) and isinstance(
            walked.ctx, (ast.Store, ast.Del)
        ):
            names.add(walked.id)
    return frozenset(names)


_IN_PROGRESS = "in-progress"


class _Analyzer:
    """The interprocedural pass over one set of files."""

    def __init__(self, files: Sequence[tuple[str, str]]) -> None:
        self.table: list[_FunctionInfo] = []
        self._by_name: dict[str, list[_FunctionInfo]] = {}
        self._memo: dict[
            tuple[str, str], Union[str, list[_Effect]]
        ] = {}
        for path, source in files:
            tree = ast.parse(source, filename=path)
            lines = source.splitlines()
            self._collect(
                tree.body,
                path=path,
                lines=lines,
                cls=None,
                prefix="",
                outer_names=frozenset(),
            )
        for info in self.table:
            self._by_name.setdefault(info.name, []).append(info)
        self._seed_implicit_contexts()

    # -- table construction --------------------------------------------
    def _collect(
        self,
        body: Sequence[ast.stmt],
        *,
        path: str,
        lines: Sequence[str],
        cls: Optional[str],
        prefix: str,
        outer_names: frozenset[str],
    ) -> None:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._collect_function(
                    statement,
                    path=path,
                    lines=lines,
                    cls=cls,
                    prefix=prefix,
                    outer_names=outer_names,
                )
            elif isinstance(statement, ast.ClassDef):
                self._collect(
                    statement.body,
                    path=path,
                    lines=lines,
                    cls=statement.name,
                    prefix=f"{prefix}{statement.name}.",
                    outer_names=outer_names,
                )

    def _collect_function(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        *,
        path: str,
        lines: Sequence[str],
        cls: Optional[str],
        prefix: str,
        outer_names: frozenset[str],
    ) -> None:
        params = [
            argument.arg
            for argument in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
        ]
        all_args = (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
        annotations = {
            index: _annotation_name(argument.annotation)
            for index, argument in enumerate(all_args)
        }
        info = _FunctionInfo(
            path=path,
            qualname=f"{prefix}{node.name}",
            name=node.name,
            cls=cls,
            params=params,
            annotations=annotations,
        )
        marker = _parse_context_decorator(node)
        if marker is not None:
            info.context, info.declared_reads, info.declared_writes = marker
        self.table.append(info)
        _FunctionScanner(info, lines, outer_names).scan(node.body)
        _AllocScanner(info, lines).scan(node.body)
        nested_outer = outer_names | _assigned_names(node)
        self._collect(
            node.body,
            path=path,
            lines=lines,
            cls=None,
            prefix=f"{prefix}{node.name}.",
            outer_names=nested_outer,
        )

    # -- implicit contexts ---------------------------------------------
    def _seed_implicit_contexts(self) -> None:
        for info in self.table:
            for task_name in info.configure_tasks:
                for callee in self._resolve_name(
                    task_name, info, is_method=False
                ):
                    if callee.context is None:
                        callee.implicit_context = "worker-process"

    # -- call resolution -----------------------------------------------
    def _resolve_name(
        self, name: str, caller: _FunctionInfo, *, is_method: bool
    ) -> list[_FunctionInfo]:
        candidates = [
            candidate
            for candidate in self._by_name.get(name, [])
            if (candidate.cls is not None) == is_method
        ]
        same_module = [
            candidate
            for candidate in candidates
            if candidate.path == caller.path
        ]
        picked = same_module or candidates
        if not picked or len(picked) > 4:
            return []
        return picked

    def _call_arg_root(
        self, call: _Call, callee: _FunctionInfo, index: int
    ) -> Root:
        if index >= len(callee.params):
            return _UNKNOWN
        position = index
        if call.is_method and callee.cls is not None:
            if index == 0:
                return call.receiver_root
            position = index - 1
        if position < len(call.pos_roots):
            return call.pos_roots[position]
        name = callee.params[index]
        if name in call.kw_roots:
            return call.kw_roots[name]
        return _UNKNOWN

    def _remap(
        self, effect: _Effect, call: _Call, callee: _FunctionInfo
    ) -> Optional[_Effect]:
        root = effect.root
        if isinstance(root, int):
            root = self._call_arg_root(call, callee, root)
        if not (isinstance(root, int) or root in (_BASE, _CHANNEL)):
            return None
        return _Effect(
            root=root,
            structure=effect.structure,
            kind=effect.kind,
            line=call.line,
            col=call.col,
            text=call.text,
            via=((callee.name,) + effect.via)[:_VIA_CAP],
        )

    def _call_contributions(
        self, call: _Call, caller: _FunctionInfo
    ) -> list[_Effect]:
        out: list[_Effect] = []
        for callee in self._resolve_name(
            call.name, caller, is_method=call.is_method
        ):
            if callee is caller:
                continue
            if callee.effective_context is not None:
                # Contract boundary: the declared footprint stands in
                # for the body, which is checked as its own seed.
                for kind, declared in (
                    ("read", callee.declared_reads),
                    ("write", callee.declared_writes),
                ):
                    for structure in declared or ():
                        out.append(
                            _Effect(
                                root=_CHANNEL
                                if structure == "channel"
                                else _BASE,
                                structure=structure,
                                kind=kind,
                                line=call.line,
                                col=call.col,
                                text=call.text,
                                via=(callee.name,),
                            )
                        )
                continue
            for effect in self._summary(callee):
                remapped = self._remap(effect, call, callee)
                if remapped is not None:
                    out.append(remapped)
        return out

    def _summary(self, info: _FunctionInfo) -> list[_Effect]:
        key = (info.path, info.qualname)
        memo = self._memo.get(key)
        if memo == _IN_PROGRESS:
            return []
        if isinstance(memo, list):
            return memo
        self._memo[key] = _IN_PROGRESS
        out = [
            effect
            for effect in info.effects
            if isinstance(effect.root, int)
            or effect.root in (_BASE, _CHANNEL)
        ]
        for call in info.calls:
            out.extend(self._call_contributions(call, info))
        self._memo[key] = out
        return out

    # -- rule checks ---------------------------------------------------
    def _resolved_seed_effects(
        self, info: _FunctionInfo, effects: Iterable[_Effect]
    ) -> list[_Effect]:
        """Map parameter roots via the seed's own signature; dedupe."""
        resolved: list[_Effect] = []
        seen: set[tuple[str, str, int, int]] = set()
        for effect in effects:
            root = effect.root
            if isinstance(root, int):
                root = info.seed_root(root)
            if root not in (_BASE, _CHANNEL):
                continue
            key = (effect.structure, effect.kind, effect.line, effect.col)
            if key in seen:
                continue
            seen.add(key)
            resolved.append(effect)
        return resolved

    @staticmethod
    def _via_suffix(effect: _Effect) -> str:
        if not effect.via:
            return ""
        return " (via " + " -> ".join(effect.via) + ")"

    def _finding(
        self,
        info: _FunctionInfo,
        rule: str,
        detail: str,
        line: int,
        col: int,
        text: str,
    ) -> Finding:
        return Finding(
            path=info.path,
            line=line,
            col=col,
            rule=rule,
            message=f"{CONC_RULES[rule].title}: {detail}",
            text=text,
        )

    def _check_seed(self, info: _FunctionInfo) -> list[Finding]:
        context = info.effective_context
        resolved = self._resolved_seed_effects(info, self._summary(info))
        findings: list[Finding] = []
        declared = (
            info.declared_reads is not None
            or info.declared_writes is not None
        )
        if declared:
            allowed = {
                "read": frozenset(info.declared_reads or ()),
                "write": frozenset(info.declared_writes or ()),
            }
            for effect in resolved:
                if effect.structure in allowed[effect.kind]:
                    continue
                findings.append(
                    self._finding(
                        info,
                        "CONC004",
                        f"{info.name} declares no {effect.kind} of "
                        f"{effect.structure} but statically reaches one"
                        f"{self._via_suffix(effect)}",
                        effect.line,
                        effect.col,
                        effect.text,
                    )
                )
            return findings
        for effect in resolved:
            rule = "CONC001" if effect.kind == "write" else "CONC002"
            findings.append(
                self._finding(
                    info,
                    rule,
                    f"{context} function {info.name} {effect.kind}s "
                    f"{effect.structure}{self._via_suffix(effect)}",
                    effect.line,
                    effect.col,
                    effect.text,
                )
            )
        return findings

    def _check_run_lambda(
        self, info: _FunctionInfo, scan: _LambdaScan
    ) -> list[Finding]:
        effects = list(scan.effects)
        for call in scan.calls:
            effects.extend(self._call_contributions(call, info))
        findings: list[Finding] = []
        for effect in self._resolved_seed_effects(info, effects):
            rule = "CONC001" if effect.kind == "write" else "CONC002"
            findings.append(
                self._finding(
                    info,
                    rule,
                    f"pool-run lambda in {info.name} {effect.kind}s "
                    f"{effect.structure}{self._via_suffix(effect)}",
                    effect.line,
                    effect.col,
                    effect.text,
                )
            )
        return findings

    def raw_findings(self) -> list[Finding]:
        """Every CONC finding over the in-scope files, pre-suppression."""
        findings: list[Finding] = []
        for info in self.table:
            if not concurrency_rules_apply(info.path):
                continue
            context = info.effective_context
            for candidate in info.syntactic:
                if candidate.rule == "CONC005" and context != "canonical":
                    continue
                findings.append(
                    self._finding(
                        info,
                        candidate.rule,
                        candidate.detail,
                        candidate.line,
                        candidate.col,
                        candidate.text,
                    )
                )
            if context in ("speculative", "worker-process"):
                findings.extend(self._check_seed(info))
            for scan in info.run_lambdas:
                findings.extend(self._check_run_lambda(info, scan))
        unique: dict[tuple[str, int, int, str, str], Finding] = {}
        for finding in findings:
            key = (
                finding.path,
                finding.line,
                finding.col,
                finding.rule,
                finding.message,
            )
            unique.setdefault(key, finding)
        return sorted(
            unique.values(),
            key=lambda f: (f.path, f.line, f.col, f.rule, f.message),
        )


@dataclasses.dataclass
class RaceReport:
    """Outcome of one concurrency-analysis run over a set of paths."""

    findings: list[Finding]
    grandfathered: list[Finding]
    suppressed: int
    files: int
    dead_suppressions: list[DeadSuppression] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no non-grandfathered findings)."""
        return not self.findings


def _apply_suppressions(
    raw: Iterable[Finding], sources: dict[str, str]
) -> tuple[list[Finding], int, list[DeadSuppression]]:
    """Honor ``# repro: allow-CONCnnn`` comments; spot dead ones."""
    kept: list[Finding] = []
    suppressed = 0
    allowed = {
        path: suppression_map(source, "CONC")
        for path, source in sources.items()
    }
    lines_by_path = {
        path: source.splitlines() for path, source in sources.items()
    }
    used: dict[tuple[str, int], set[str]] = {}
    for finding in raw:
        codes = allowed.get(finding.path, {}).get(
            finding.line, frozenset()
        )
        if finding.rule in codes:
            suppressed += 1
            used.setdefault((finding.path, finding.line), set()).add(
                finding.rule
            )
        else:
            kept.append(finding)
    dead: list[DeadSuppression] = []
    for path in sorted(allowed):
        lines = lines_by_path[path]
        for lineno, codes in sorted(allowed[path].items()):
            line = lines[lineno - 1] if lineno <= len(lines) else ""
            unused = sorted(codes - used.get((path, lineno), set()))
            if unused:
                dead.append(
                    DeadSuppression(
                        path=path,
                        line=lineno,
                        codes=tuple(unused),
                        text=line.strip(),
                    )
                )
    return kept, suppressed, dead


def resolve_races_rule_filter(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> frozenset[str]:
    """The active CONC rule codes after ``--select`` / ``--ignore``."""
    return _resolve_rule_filter(select, ignore, known=CONC_RULES)


def analyze_source(source: str, path: str) -> list[Finding]:
    """Analyze one file's source text; suppression comments honored."""
    analyzer = _Analyzer([(path, source)])
    kept, _, _ = _apply_suppressions(
        analyzer.raw_findings(), {path: source}
    )
    return kept


def analyze_paths(
    paths: Sequence[str],
    baseline_fingerprints: frozenset[tuple[str, str, str]] = frozenset(),
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> RaceReport:
    """Analyze every Python file under ``paths``.

    All files feed the function table (so cross-module calls resolve);
    the CONC rules judge only in-scope files (see
    :func:`concurrency_rules_apply`).  Baseline fingerprints
    grandfather findings exactly like the linter's; ``select`` /
    ``ignore`` restrict the active rules and raise
    :class:`ValueError` on unknown codes.
    """
    active = resolve_races_rule_filter(select, ignore)
    files: list[tuple[str, str]] = []
    sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        files.append((str(file_path), source))
        sources[str(file_path)] = source
    analyzer = _Analyzer(files)
    kept, suppressed, dead = _apply_suppressions(
        analyzer.raw_findings(), sources
    )
    findings: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in kept:
        if finding.rule not in active:
            continue
        if finding.fingerprint in baseline_fingerprints:
            grandfathered.append(finding)
        else:
            findings.append(finding)
    return RaceReport(
        findings=findings,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files=len(files),
        dead_suppressions=dead,
    )


def render_races(report: RaceReport) -> str:
    """Human-readable analyzer output, mirroring the linter's."""
    out = finding_lines(report.findings)
    out.extend(dead_suppression_lines(report.dead_suppressions))
    summary = (
        f"{len(report.findings)} finding(s) in {report.files} file(s)"
    )
    if report.grandfathered:
        summary += f", {len(report.grandfathered)} grandfathered"
    if report.dead_suppressions:
        summary += (
            f", {len(report.dead_suppressions)} dead suppression(s)"
        )
    out.append(summary)
    return "\n".join(out)


#: Referenced so the shared vocabulary is importable from one place in
#: docs and tests; the decorator validates against it at import time.
__all__ = [
    "CONCURRENCY_PACKAGES",
    "RaceReport",
    "SHARED_STRUCTURES",
    "analyze_paths",
    "analyze_source",
    "concurrency_rules_apply",
    "render_races",
    "resolve_races_rule_filter",
]
