"""Static concurrency-effect analyzer (the CONC rule catalog).

The parallel engine's serial-equivalence guarantee rests on a
discipline the runtime sanitizer can only check for workloads that
happen to exercise it: speculative code must route every shared-state
access through snapshots and overlays, process workers must declare
the structures they touch, and the merge loop must consume results in
submission order.  PR 8's 10x-scale differential found two bugs
(batch-backfill ordering, dropped trim-release tombstones) that every
dynamic check missed.  This module is the static twin: an
interprocedural, AST-based effect analyzer that proves the discipline
over the code itself, before any workload runs.

The table-building and call-resolution machinery is the shared
:class:`~repro.analysis.callgraph.CallGraph` (also the foundation of
the cross-backend parity analyzer): every function goes into a table
with its direct shared-state effects and outgoing calls,
``@repro.analysis.context(...)`` markers seed execution contexts
(canonical / speculative / worker-process), and effects resolve
through the call graph with marked callees acting as contract
boundaries.  This module contributes the CONC-specific judgment: from
each speculative / worker-process seed, the resolved effects are
checked against the seed's declared footprint (see
:data:`~repro.analysis.rules.CONC_RULES`).

Findings mirror the determinism linter's: ``# repro: allow-CONCnnn``
suppressions, a committed fingerprint baseline
(``races-baseline.json``), and ``repro races`` as the CLI front end.
"""

from __future__ import annotations

import dataclasses
import pathlib
from collections.abc import Iterable, Sequence
from typing import Optional

from .callgraph import (
    BASE,
    CHANNEL,
    CallGraph,
    Effect,
    FunctionInfo,
    LambdaScan,
)
from .context import SHARED_STRUCTURES
from .findings import (
    DeadSuppression,
    Finding,
    dead_suppression_lines,
    finding_lines,
    suppression_map,
)
from .findings import resolve_rule_filter as _resolve_rule_filter
from .lint import iter_python_files
from .rules import CONC_RULES

#: Packages (inside a ``repro`` tree) whose files the CONC rules judge.
#: Standalone files (fixtures, scripts) are always in scope.
CONCURRENCY_PACKAGES = frozenset(
    {"parallel", "engine", "globalroute", "detailed"}
)


def concurrency_rules_apply(path: str) -> bool:
    """Whether ``path`` is in scope for the CONC rules.

    Inside a ``repro`` package tree only the parallel-engine packages
    are judged; standalone files (fixtures, scripts) always are, so
    test corpora exercise every rule.
    """
    parts = pathlib.PurePath(path).parts
    if "repro" in parts:
        return any(part in CONCURRENCY_PACKAGES for part in parts)
    return True


class _Analyzer(CallGraph):
    """The CONC rule judgment over one shared call graph."""

    # -- rule checks ---------------------------------------------------
    def _resolved_seed_effects(
        self, info: FunctionInfo, effects: Iterable[Effect]
    ) -> list[Effect]:
        """Map parameter roots via the seed's own signature; dedupe."""
        resolved: list[Effect] = []
        seen: set[tuple[str, str, int, int]] = set()
        for effect in effects:
            root = effect.root
            if isinstance(root, int):
                root = info.seed_root(root)
            if root not in (BASE, CHANNEL):
                continue
            key = (effect.structure, effect.kind, effect.line, effect.col)
            if key in seen:
                continue
            seen.add(key)
            resolved.append(effect)
        return resolved

    @staticmethod
    def _via_suffix(effect: Effect) -> str:
        if not effect.via:
            return ""
        return " (via " + " -> ".join(effect.via) + ")"

    def _finding(
        self,
        info: FunctionInfo,
        rule: str,
        detail: str,
        line: int,
        col: int,
        text: str,
    ) -> Finding:
        return Finding(
            path=info.path,
            line=line,
            col=col,
            rule=rule,
            message=f"{CONC_RULES[rule].title}: {detail}",
            text=text,
        )

    def _check_seed(self, info: FunctionInfo) -> list[Finding]:
        context = info.effective_context
        resolved = self._resolved_seed_effects(info, self.summary(info))
        findings: list[Finding] = []
        declared = (
            info.declared_reads is not None
            or info.declared_writes is not None
        )
        if declared:
            allowed = {
                "read": frozenset(info.declared_reads or ()),
                "write": frozenset(info.declared_writes or ()),
            }
            for effect in resolved:
                if effect.structure in allowed[effect.kind]:
                    continue
                findings.append(
                    self._finding(
                        info,
                        "CONC004",
                        f"{info.name} declares no {effect.kind} of "
                        f"{effect.structure} but statically reaches one"
                        f"{self._via_suffix(effect)}",
                        effect.line,
                        effect.col,
                        effect.text,
                    )
                )
            return findings
        for effect in resolved:
            rule = "CONC001" if effect.kind == "write" else "CONC002"
            findings.append(
                self._finding(
                    info,
                    rule,
                    f"{context} function {info.name} {effect.kind}s "
                    f"{effect.structure}{self._via_suffix(effect)}",
                    effect.line,
                    effect.col,
                    effect.text,
                )
            )
        return findings

    def _check_run_lambda(
        self, info: FunctionInfo, scan: LambdaScan
    ) -> list[Finding]:
        effects = list(scan.effects)
        for call in scan.calls:
            effects.extend(self.call_contributions(call, info))
        findings: list[Finding] = []
        for effect in self._resolved_seed_effects(info, effects):
            rule = "CONC001" if effect.kind == "write" else "CONC002"
            findings.append(
                self._finding(
                    info,
                    rule,
                    f"pool-run lambda in {info.name} {effect.kind}s "
                    f"{effect.structure}{self._via_suffix(effect)}",
                    effect.line,
                    effect.col,
                    effect.text,
                )
            )
        return findings

    def raw_findings(self) -> list[Finding]:
        """Every CONC finding over the in-scope files, pre-suppression."""
        findings: list[Finding] = []
        for info in self.table:
            if not concurrency_rules_apply(info.path):
                continue
            context = info.effective_context
            for candidate in info.syntactic:
                if candidate.rule == "CONC005" and context != "canonical":
                    continue
                findings.append(
                    self._finding(
                        info,
                        candidate.rule,
                        candidate.detail,
                        candidate.line,
                        candidate.col,
                        candidate.text,
                    )
                )
            if context in ("speculative", "worker-process"):
                findings.extend(self._check_seed(info))
            for scan in info.run_lambdas:
                findings.extend(self._check_run_lambda(info, scan))
        unique: dict[tuple[str, int, int, str, str], Finding] = {}
        for finding in findings:
            key = (
                finding.path,
                finding.line,
                finding.col,
                finding.rule,
                finding.message,
            )
            unique.setdefault(key, finding)
        return sorted(
            unique.values(),
            key=lambda f: (f.path, f.line, f.col, f.rule, f.message),
        )


@dataclasses.dataclass
class RaceReport:
    """Outcome of one concurrency-analysis run over a set of paths."""

    findings: list[Finding]
    grandfathered: list[Finding]
    suppressed: int
    files: int
    dead_suppressions: list[DeadSuppression] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no non-grandfathered findings)."""
        return not self.findings


def _apply_suppressions(
    raw: Iterable[Finding], sources: dict[str, str]
) -> tuple[list[Finding], int, list[DeadSuppression]]:
    """Honor ``# repro: allow-CONCnnn`` comments; spot dead ones."""
    kept: list[Finding] = []
    suppressed = 0
    allowed = {
        path: suppression_map(source, "CONC")
        for path, source in sources.items()
    }
    lines_by_path = {
        path: source.splitlines() for path, source in sources.items()
    }
    used: dict[tuple[str, int], set[str]] = {}
    for finding in raw:
        codes = allowed.get(finding.path, {}).get(
            finding.line, frozenset()
        )
        if finding.rule in codes:
            suppressed += 1
            used.setdefault((finding.path, finding.line), set()).add(
                finding.rule
            )
        else:
            kept.append(finding)
    dead: list[DeadSuppression] = []
    for path in sorted(allowed):
        lines = lines_by_path[path]
        for lineno, codes in sorted(allowed[path].items()):
            line = lines[lineno - 1] if lineno <= len(lines) else ""
            unused = sorted(codes - used.get((path, lineno), set()))
            if unused:
                dead.append(
                    DeadSuppression(
                        path=path,
                        line=lineno,
                        codes=tuple(unused),
                        text=line.strip(),
                    )
                )
    return kept, suppressed, dead


def resolve_races_rule_filter(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> frozenset[str]:
    """The active CONC rule codes after ``--select`` / ``--ignore``."""
    return _resolve_rule_filter(select, ignore, known=CONC_RULES)


def analyze_source(source: str, path: str) -> list[Finding]:
    """Analyze one file's source text; suppression comments honored."""
    analyzer = _Analyzer([(path, source)])
    kept, _, _ = _apply_suppressions(
        analyzer.raw_findings(), {path: source}
    )
    return kept


def analyze_paths(
    paths: Sequence[str],
    baseline_fingerprints: frozenset[tuple[str, str, str]] = frozenset(),
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> RaceReport:
    """Analyze every Python file under ``paths``.

    All files feed the function table (so cross-module calls resolve);
    the CONC rules judge only in-scope files (see
    :func:`concurrency_rules_apply`).  Baseline fingerprints
    grandfather findings exactly like the linter's; ``select`` /
    ``ignore`` restrict the active rules and raise
    :class:`ValueError` on unknown codes.
    """
    active = resolve_races_rule_filter(select, ignore)
    files: list[tuple[str, str]] = []
    sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        files.append((str(file_path), source))
        sources[str(file_path)] = source
    analyzer = _Analyzer(files)
    kept, suppressed, dead = _apply_suppressions(
        analyzer.raw_findings(), sources
    )
    findings: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in kept:
        if finding.rule not in active:
            continue
        if finding.fingerprint in baseline_fingerprints:
            grandfathered.append(finding)
        else:
            findings.append(finding)
    return RaceReport(
        findings=findings,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files=len(files),
        dead_suppressions=dead,
    )


def render_races(report: RaceReport) -> str:
    """Human-readable analyzer output, mirroring the linter's."""
    out = finding_lines(report.findings)
    out.extend(dead_suppression_lines(report.dead_suppressions))
    summary = (
        f"{len(report.findings)} finding(s) in {report.files} file(s)"
    )
    if report.grandfathered:
        summary += f", {len(report.grandfathered)} grandfathered"
    if report.dead_suppressions:
        summary += (
            f", {len(report.dead_suppressions)} dead suppression(s)"
        )
    out.append(summary)
    return "\n".join(out)


#: Referenced so the shared vocabulary is importable from one place in
#: docs and tests; the decorator validates against it at import time.
__all__ = [
    "CONCURRENCY_PACKAGES",
    "RaceReport",
    "SHARED_STRUCTURES",
    "analyze_paths",
    "analyze_source",
    "concurrency_rules_apply",
    "render_races",
    "resolve_races_rule_filter",
]
