"""Execution-context markers for the concurrency-effect analyzer.

The parallel engine runs code in three execution contexts with very
different shared-state rules:

* ``"canonical"`` — the merge / fan-in thread that owns the live
  :class:`~repro.globalroute.graph.GlobalGraph` and
  :class:`~repro.detailed.grid.DetailedGrid`.  It may mutate base
  state freely but must consume speculation results in submission
  order (the serial-equivalence contract).
* ``"speculative"`` — thread-pool workers routing against snapshots
  and overlays.  Base state is off limits: reads go through
  ``graph.snapshot()`` / ``grid.speculative_overlay()``, writes stay
  buffered in the overlay until the merge loop applies them.
* ``"worker-process"`` — process-pool workers operating on their own
  fork of the world, fed through
  :class:`~repro.parallel.shared_state.SharedStateChannel`.  Mutating
  the (forked) base copies is sanctioned, but every touched structure
  must be declared so the analyzer can check the declared footprint
  against what the code statically reaches (rule CONC004).

:func:`context` is a decorator that stamps a function with its context
and, optionally, its declared read/write footprint over the
:data:`SHARED_STRUCTURES` vocabulary.  The markers are inert at run
time — they only attach attributes — and are the seeds from which
:mod:`~repro.analysis.concurrency` propagates contexts through the
call graph.

This module is a dependency leaf: the routers import it, so it must
import nothing from :mod:`repro` itself.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

#: The shared-structure vocabulary effect summaries are expressed in.
SHARED_STRUCTURES = frozenset(
    {
        "global.demand",
        "global.history",
        "global.capacity",
        "grid.owner",
        "grid.journal",
        "engine.cache",
        "channel",
    }
)

#: The recognized execution-context kinds.
CONTEXT_KINDS = frozenset({"canonical", "speculative", "worker-process"})

_F = TypeVar("_F", bound=Callable[..., object])


def context(
    kind: str,
    *,
    reads: Optional[Sequence[str]] = None,
    writes: Optional[Sequence[str]] = None,
) -> Callable[[_F], _F]:
    """Mark a function's execution context for the static analyzer.

    Args:
        kind: one of :data:`CONTEXT_KINDS`.
        reads: declared read footprint over :data:`SHARED_STRUCTURES`.
            Omitting it (for speculative / worker-process contexts)
            asserts the function touches *no* base shared state, which
            rules CONC001/CONC002 then enforce; declaring it switches
            the function to footprint checking (rule CONC004).
        writes: declared write footprint, same semantics.

    The decorator validates its arguments eagerly (at import time) and
    attaches ``__repro_context__`` / ``__repro_reads__`` /
    ``__repro_writes__`` to the function, changing nothing else.
    """
    if kind not in CONTEXT_KINDS:
        raise ValueError(
            f"unknown context kind {kind!r} "
            f"(expected one of {', '.join(sorted(CONTEXT_KINDS))})"
        )
    for label, names in (("reads", reads), ("writes", writes)):
        if names is None:
            continue
        unknown = sorted(set(names) - SHARED_STRUCTURES)
        if unknown:
            raise ValueError(
                f"unknown shared structure(s) in {label}: "
                f"{', '.join(unknown)} "
                f"(expected among {', '.join(sorted(SHARED_STRUCTURES))})"
            )

    def mark(func: _F) -> _F:
        func.__repro_context__ = kind  # type: ignore[attr-defined]
        func.__repro_reads__ = (  # type: ignore[attr-defined]
            None if reads is None else tuple(reads)
        )
        func.__repro_writes__ = (  # type: ignore[attr-defined]
            None if writes is None else tuple(writes)
        )
        return func

    return mark
