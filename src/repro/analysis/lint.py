"""AST-based determinism linter (the DET rule catalog).

The parallel engine's serial-equivalence guarantee assumes routing
decisions never observe hash order, wall clocks, RNGs, or object
identity.  This linter enforces those conventions statically over the
routing-decision packages (:data:`~repro.analysis.rules.ROUTING_PACKAGES`);
files outside a ``repro`` package tree (fixture snippets, scripts) are
checked against every rule.

Findings can be silenced in two ways:

* per line — append ``# repro: allow-DETnnn <reason>`` to the flagged
  line (several codes may be listed, comma separated);
* per finding — record it in a committed baseline file
  (:mod:`~repro.analysis.baseline`), which grandfathers existing debt
  without hiding new findings.

``repro lint [paths]`` is the CLI front end.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from .findings import (
    DeadSuppression,
    Finding,
    dead_suppression_lines,
    finding_lines,
    suppressed_rules,
    suppression_map,
)
from .findings import resolve_rule_filter as _resolve_rule_filter
from .rules import ROUTING_PACKAGES, RULES, Rule

__all__ = [
    "DeadSuppression",
    "Finding",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_findings",
    "resolve_rule_filter",
    "routing_rules_apply",
    "suppressed_rules",
]

#: Calls whose result cannot depend on the argument's iteration order —
#: feeding them a set (or a generator over one) is deterministic.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Materializers that freeze an iteration order into a sequence.
ORDER_FREEZING_CALLS = frozenset({"list", "tuple", "enumerate"})

#: ``time`` attributes that read the wall clock (``perf_counter`` and
#: friends are measurement timers, sanctioned for reported durations).
WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "ctime", "localtime", "gmtime", "asctime"}
)

#: Modules whose very import into a routing path is a DET002 finding.
BANNED_MODULES = frozenset({"random", "secrets"})

#: Identifier tokens that mark a value as a float cost/coordinate for
#: the DET003 heuristic.
_FLOATY_TOKENS = frozenset(
    {
        "cost",
        "costs",
        "price",
        "weight",
        "score",
        "seconds",
        "wall",
        "cpu",
        "penalty",
        "alpha",
        "beta",
        "gamma",
        "utilization",
        "ratio",
        "scale",
        "density",
    }
)

_SET_ANNOTATION_NAMES = frozenset({"set", "Set", "frozenset", "FrozenSet"})


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run over a set of paths."""

    findings: list[Finding]
    grandfathered: list[Finding]
    suppressed: int
    files: int
    dead_suppressions: list[DeadSuppression] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no non-grandfathered findings)."""
        return not self.findings


def routing_rules_apply(path: str) -> bool:
    """Whether the routing-scoped rules apply to ``path``.

    Inside a ``repro`` package tree only the routing-decision packages
    are in scope; standalone files (fixtures, scripts) are always in
    scope so test corpora exercise every rule.
    """
    parts = pathlib.PurePath(path).parts
    if "repro" in parts:
        return any(part in ROUTING_PACKAGES for part in parts)
    return True


class _Scope:
    """One lexical scope's set-typed-name table."""

    __slots__ = ("names",)

    def __init__(self) -> None:
        self.names: dict[str, bool] = {}


class _FileLinter(ast.NodeVisitor):
    """Single-file AST walk collecting raw findings (pre-suppression)."""

    def __init__(
        self, path: str, source_lines: Sequence[str], routing: bool
    ) -> None:
        self.path = path
        self.lines = source_lines
        self.routing = routing
        self.findings: list[Finding] = []
        self._scopes: list[_Scope] = [_Scope()]
        #: Comprehension nodes proven order-safe by their consumer.
        self._order_safe: set[int] = set()
        #: ``iter(...)`` nodes already reported through ``next(iter(..))``.
        self._claimed: set[int] = set()
        #: Names bound by ``from <module> import <name>`` to banned
        #: ambient-input callables.
        self._banned_names: set[str] = set()

    # -- plumbing ------------------------------------------------------
    def _emit(self, rule: Rule, node: ast.AST, detail: str = "") -> None:
        if rule.routing_only and not self.routing:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1].strip()
        message = rule.title if not detail else f"{rule.title}: {detail}"
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=col,
                rule=rule.code,
                message=message,
                text=text,
            )
        )

    # -- set-type tracking ---------------------------------------------
    def _lookup(self, name: str) -> bool:
        for scope in reversed(self._scopes):
            if name in scope.names:
                return scope.names[name]
        return False

    def _bind(self, name: str, is_set: bool) -> None:
        self._scopes[-1].names[name] = is_set

    def _is_set_annotation(self, annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        node: ast.expr = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr in _SET_ANNOTATION_NAMES
        if isinstance(node, ast.Name):
            return node.id in _SET_ANNOTATION_NAMES
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            head = node.value.split("[", 1)[0].strip()
            return head.rsplit(".", 1)[-1] in _SET_ANNOTATION_NAMES
        return False

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Conservative 'this expression is a set' judgement."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            ):
                return self._is_set_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) and self._is_set_expr(
                node.orelse
            )
        return False

    @staticmethod
    def _is_dict_keys_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        )

    def _is_unordered_iterable(self, node: ast.expr) -> bool:
        return self._is_set_expr(node) or self._is_dict_keys_call(node)

    # -- scopes --------------------------------------------------------
    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._check_mutable_defaults(node.args, node)
        self._scopes.append(_Scope())
        all_args = (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
        for arg in all_args:
            self._bind(arg.arg, self._is_set_annotation(arg.annotation))
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_mutable_defaults(node.args, node)
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()

    # -- assignments ---------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, is_set)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            is_set = self._is_set_annotation(node.annotation) or (
                node.value is not None and self._is_set_expr(node.value)
            )
            self._bind(node.target.id, is_set)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # |=, &=, -=, ^= keep set-ness; other ops on a set are errors
        # anyway, so the binding is simply left as is.
        self.generic_visit(node)

    # -- DET001: unordered iteration -----------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered_iterable(node.iter):
            self._emit(RULES["DET001"], node.iter)
        self.generic_visit(node)

    def _check_comprehension(
        self, node: ast.expr, generators: list[ast.comprehension]
    ) -> None:
        if id(node) in self._order_safe or isinstance(node, ast.SetComp):
            # A set built from a set leaks no order.
            return
        for gen in generators:
            if self._is_unordered_iterable(gen.iter):
                self._emit(RULES["DET001"], gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    # -- calls: DET001 materializers, DET002 ambient, DET005 ties ------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in ORDER_INSENSITIVE_CALLS:
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        self._order_safe.add(id(arg))
            elif name in ORDER_FREEZING_CALLS:
                if node.args and self._is_unordered_iterable(node.args[0]):
                    self._emit(
                        RULES["DET001"],
                        node,
                        f"{name}() freezes set iteration order",
                    )
            elif name == "next":
                if (
                    node.args
                    and isinstance(node.args[0], ast.Call)
                    and isinstance(node.args[0].func, ast.Name)
                    and node.args[0].func.id == "iter"
                    and node.args[0].args
                    and self._is_unordered_iterable(node.args[0].args[0])
                ):
                    self._claimed.add(id(node.args[0]))
                    self._emit(
                        RULES["DET005"],
                        node,
                        "next(iter(<set>)) picks a hash-order element",
                    )
            elif name == "iter":
                if (
                    id(node) not in self._claimed
                    and node.args
                    and self._is_unordered_iterable(node.args[0])
                ):
                    self._emit(RULES["DET001"], node)
            elif name == "id":
                self._emit(
                    RULES["DET005"], node, "id() is process-dependent"
                )
            elif name in self._banned_names:
                self._emit(RULES["DET002"], node, f"{name}()")
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        self.generic_visit(node)

    def _check_attribute_call(
        self, node: ast.Call, func: ast.Attribute
    ) -> None:
        value = func.value
        if isinstance(value, ast.Name):
            mod = value.id
            if mod == "time" and func.attr in WALL_CLOCK_TIME_ATTRS:
                self._emit(RULES["DET002"], node, f"time.{func.attr}()")
            elif mod == "os" and func.attr == "urandom":
                self._emit(RULES["DET002"], node, "os.urandom()")
            elif mod in BANNED_MODULES:
                self._emit(RULES["DET002"], node, f"{mod}.{func.attr}()")
            elif mod == "uuid" and func.attr.startswith("uuid"):
                self._emit(RULES["DET002"], node, f"uuid.{func.attr}()")
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy")
        ):
            self._emit(RULES["DET002"], node, f"numpy.random.{func.attr}()")
        if (
            func.attr == "pop"
            and not node.args
            and self._is_set_expr(value)
        ):
            self._emit(
                RULES["DET005"], node, "set.pop() removes a hash-order element"
            )

    # -- DET002: imports ------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root in BANNED_MODULES:
                self._emit(RULES["DET002"], node, f"import {alias.name}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = (node.module or "").split(".", 1)[0]
        for alias in node.names:
            bound = alias.asname or alias.name
            if module in BANNED_MODULES:
                self._emit(
                    RULES["DET002"],
                    node,
                    f"from {node.module} import {alias.name}",
                )
                self._banned_names.add(bound)
            elif module == "time" and alias.name in WALL_CLOCK_TIME_ATTRS:
                self._emit(
                    RULES["DET002"],
                    node,
                    f"from time import {alias.name}",
                )
                self._banned_names.add(bound)
            elif module == "os" and alias.name == "urandom":
                self._emit(RULES["DET002"], node, "from os import urandom")
                self._banned_names.add(bound)
        self.generic_visit(node)

    # -- DET003: float equality ----------------------------------------
    def _is_floaty(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            return (
                isinstance(node.func, ast.Name) and node.func.id == "float"
            )
        if isinstance(node, ast.BinOp):
            return self._is_floaty(node.left) or self._is_floaty(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_floaty(node.operand)
        identifier = None
        if isinstance(node, ast.Name):
            identifier = node.id
        elif isinstance(node, ast.Attribute):
            identifier = node.attr
        if identifier is not None:
            tokens = identifier.lower().split("_")
            return any(token in _FLOATY_TOKENS for token in tokens)
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                self._is_floaty(left) or self._is_floaty(right)
            ):
                self._emit(RULES["DET003"], node)
                break
        self.generic_visit(node)

    # -- DET004: mutable defaults --------------------------------------
    def _check_mutable_defaults(
        self, args: ast.arguments, owner: ast.AST
    ) -> None:
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id
                in ("list", "dict", "set", "defaultdict", "OrderedDict")
            ):
                self._emit(RULES["DET004"], default)


def _lint_source(
    source: str, path: str
) -> tuple[list[Finding], int, list[DeadSuppression]]:
    """Lint one file; returns (kept, suppressed count, dead suppressions)."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    linter = _FileLinter(path, lines, routing_rules_apply(path))
    linter.visit(tree)
    kept: list[Finding] = []
    suppressed = 0
    allowed = suppression_map(source, "DET")
    used_codes: dict[int, set[str]] = {}
    for finding in sorted(
        linter.findings, key=lambda f: (f.line, f.col, f.rule)
    ):
        if finding.rule in allowed.get(finding.line, frozenset()):
            suppressed += 1
            used_codes.setdefault(finding.line, set()).add(finding.rule)
        else:
            kept.append(finding)
    dead: list[DeadSuppression] = []
    for lineno, codes in sorted(allowed.items()):
        line = lines[lineno - 1] if lineno <= len(lines) else ""
        unused = sorted(codes - used_codes.get(lineno, set()))
        if unused:
            dead.append(
                DeadSuppression(
                    path=path,
                    line=lineno,
                    codes=tuple(unused),
                    text=line.strip(),
                )
            )
    return kept, suppressed, dead


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one file's source text; suppression comments are honored."""
    return _lint_source(source, path)[0]


def iter_python_files(paths: Iterable[str]) -> Iterator[pathlib.Path]:
    """Every ``.py`` file under ``paths`` in deterministic order."""
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def resolve_rule_filter(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> frozenset[str]:
    """The active DET rule codes after ``--select`` / ``--ignore``.

    ``select`` restricts the run to the listed codes (default: every
    rule); ``ignore`` then removes codes.  Unknown codes raise
    :class:`ValueError` naming the offenders.
    """
    return _resolve_rule_filter(select, ignore, known=RULES)


def lint_paths(
    paths: Sequence[str],
    baseline_fingerprints: frozenset[tuple[str, str, str]] = frozenset(),
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths``.

    Findings whose :attr:`~Finding.fingerprint` appears in
    ``baseline_fingerprints`` are grandfathered: reported separately and
    excluded from the failure condition.  ``select`` / ``ignore``
    restrict the active rule set (see :func:`resolve_rule_filter`);
    filtered-out findings are dropped entirely (not counted as
    suppressed or grandfathered).
    """
    active = resolve_rule_filter(select, ignore)
    findings: list[Finding] = []
    grandfathered: list[Finding] = []
    suppressed = 0
    files = 0
    dead_suppressions: list[DeadSuppression] = []
    for file_path in iter_python_files(paths):
        files += 1
        source = file_path.read_text(encoding="utf-8")
        kept, file_suppressed, file_dead = _lint_source(
            source, str(file_path)
        )
        suppressed += file_suppressed
        dead_suppressions.extend(file_dead)
        for finding in kept:
            if finding.rule not in active:
                continue
            if finding.fingerprint in baseline_fingerprints:
                grandfathered.append(finding)
            else:
                findings.append(finding)
    return LintReport(
        findings=findings,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files=files,
        dead_suppressions=dead_suppressions,
    )


def render_findings(report: LintReport) -> str:
    """Human-readable lint output (one line per finding plus a hint)."""
    out = finding_lines(report.findings)
    out.extend(dead_suppression_lines(report.dead_suppressions))
    summary = (
        f"{len(report.findings)} finding(s) in {report.files} file(s)"
    )
    if report.grandfathered:
        summary += f", {len(report.grandfathered)} grandfathered"
    if report.dead_suppressions:
        summary += (
            f", {len(report.dead_suppressions)} dead suppression(s)"
        )
    out.append(summary)
    return "\n".join(out)
