"""Committed finding baselines: grandfather existing findings, not new ones.

A baseline file records the fingerprints of known findings so an
analysis gate can be adopted on a codebase with existing debt:
grandfathered findings are reported but do not fail the run, while any
*new* finding does.  Fingerprints are ``(path, rule, stripped line
text)`` — stable across unrelated edits that only shift line numbers.

Three gates share this machinery, distinguished by the ``format``
field in the file header:

* the determinism linter — ``lint-baseline.json`` at the repo root,
  rewritten by ``repro lint --update-baseline``;
* the concurrency analyzer — ``races-baseline.json``, rewritten by
  ``repro races --update-baseline``;
* the cross-backend parity analyzer — ``parity-baseline.json``,
  rewritten by ``repro parity --update-baseline``.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable

from .findings import Finding

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

#: ``format`` header and default file name of the races baseline.
RACES_BASELINE_FORMAT = "repro-races-baseline"

#: ``format`` header of the cross-backend parity baseline.
PARITY_BASELINE_FORMAT = "repro-parity-baseline"

#: File name probed in the working directory when ``--baseline`` is
#: not given.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

#: Same, for ``repro races``.
DEFAULT_RACES_BASELINE_NAME = "races-baseline.json"

#: Same, for ``repro parity``.
DEFAULT_PARITY_BASELINE_NAME = "parity-baseline.json"


class Baseline:
    """An immutable set of grandfathered finding fingerprints."""

    def __init__(
        self, fingerprints: Iterable[tuple[str, str, str]] = ()
    ) -> None:
        self._fingerprints = frozenset(fingerprints)

    @property
    def fingerprints(self) -> frozenset[tuple[str, str, str]]:
        """The grandfathered ``(path, rule, text)`` triples."""
        return self._fingerprints

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, fingerprint: tuple[str, str, str]) -> bool:
        return fingerprint in self._fingerprints

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        *,
        format: str = BASELINE_FORMAT,
    ) -> Baseline:
        """Read a baseline file written by :func:`save_baseline`.

        ``format`` must match the file's header — loading a lint
        baseline as a races baseline (or vice versa) is an error.
        """
        data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        if data.get("format") != format:
            raise ValueError(f"{path}: not a {format} file")
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')}"
            )
        return cls(
            (entry["path"], entry["rule"], entry["text"])
            for entry in data.get("findings", [])
        )


def save_baseline(
    path: str | pathlib.Path,
    findings: Iterable[Finding],
    *,
    format: str = BASELINE_FORMAT,
) -> int:
    """Write the baseline file grandfathering ``findings``.

    Returns the number of entries written.  Entries are sorted so the
    committed file diffs cleanly.
    """
    entries = sorted(
        {finding.fingerprint for finding in findings}
    )
    document = {
        "format": format,
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule": rule, "text": text}
            for p, rule, text in entries
        ],
    }
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)
