"""Committed lint baselines: grandfather existing findings, not new ones.

A baseline file records the fingerprints of known findings so the lint
gate can be adopted on a codebase with existing debt: grandfathered
findings are reported but do not fail the run, while any *new* finding
does.  Fingerprints are ``(path, rule, stripped line text)`` — stable
across unrelated edits that only shift line numbers.

The default committed baseline lives at the repo root as
``lint-baseline.json``; ``repro lint --update-baseline`` rewrites it
from the current findings.
"""

from __future__ import annotations

import json
import pathlib
from collections.abc import Iterable

from .lint import Finding

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

#: File name probed in the working directory when ``--baseline`` is
#: not given.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class Baseline:
    """An immutable set of grandfathered finding fingerprints."""

    def __init__(
        self, fingerprints: Iterable[tuple[str, str, str]] = ()
    ) -> None:
        self._fingerprints = frozenset(fingerprints)

    @property
    def fingerprints(self) -> frozenset[tuple[str, str, str]]:
        """The grandfathered ``(path, rule, text)`` triples."""
        return self._fingerprints

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, fingerprint: tuple[str, str, str]) -> bool:
        return fingerprint in self._fingerprints

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | pathlib.Path) -> Baseline:
        """Read a baseline file written by :func:`save_baseline`."""
        data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        if data.get("format") != BASELINE_FORMAT:
            raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')}"
            )
        return cls(
            (entry["path"], entry["rule"], entry["text"])
            for entry in data.get("findings", [])
        )


def save_baseline(
    path: str | pathlib.Path, findings: Iterable[Finding]
) -> int:
    """Write the baseline file grandfathering ``findings``.

    Returns the number of entries written.  Entries are sorted so the
    committed file diffs cleanly.
    """
    entries = sorted(
        {finding.fingerprint for finding in findings}
    )
    document = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "rule": rule, "text": text}
            for p, rule, text in entries
        ],
    }
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)
