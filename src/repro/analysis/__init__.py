"""Static and dynamic analysis for the correctness contracts.

Six enforcement layers (see ``docs/static_analysis.md``):

* :mod:`~repro.analysis.lint` — an AST-based determinism linter
  (rules DET001–DET005, ``repro lint`` on the CLI) guarding the
  serial-equivalence guarantee of :mod:`repro.parallel`;
* :mod:`~repro.analysis.concurrency` — a static concurrency-effect
  analyzer (rules CONC001–CONC006, ``repro races`` on the CLI) that
  proves speculative and process-worker code touches shared state
  only through the declared channels, seeded by
  :func:`~repro.analysis.context.context` markers;
* :mod:`~repro.analysis.parity` — a static cross-backend parity
  analyzer (rules PAR001–PAR006, ``repro parity`` on the CLI) that
  diffs the effect signatures of callables declared equivalent with
  :func:`~repro.analysis.pairing.paired` markers and checks every
  emitted metric name against :mod:`repro.observe.schema`;
* :mod:`~repro.analysis.baseline` — committed grandfathering of
  pre-existing lint/races/parity findings;
* :mod:`~repro.analysis.sanitize` — a dynamic speculation-footprint
  sanitizer (``RouterConfig(sanitize=True)`` / ``--sanitize``);
* :mod:`~repro.analysis.audit` — an independent DRC-style solution
  auditor (rules AUD001–AUD007, ``repro audit`` on the CLI /
  ``RouterConfig(audit=True)``) that re-derives every stitching
  constraint from the raw geometry and cross-checks the evaluator's
  counters.

The sanitizer names are re-exported lazily (PEP 562): eager import
would pull the router/grid modules in, and the routing layers
themselves import :mod:`~repro.analysis.context` for their execution-
context markers — the lazy hop keeps that edge acyclic.
"""

from typing import TYPE_CHECKING, Any

from .audit import (
    AuditFinding,
    AuditReport,
    CounterDrift,
    audit_solution,
    render_audit,
)
from .baseline import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_PARITY_BASELINE_NAME,
    DEFAULT_RACES_BASELINE_NAME,
    Baseline,
    save_baseline,
)
from .concurrency import (
    RaceReport,
    analyze_paths,
    analyze_source,
    render_races,
    resolve_races_rule_filter,
)
from .context import SHARED_STRUCTURES, context
from .findings import DeadSuppression, fix_hint_for
from .lint import (
    Finding,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
    render_findings,
    resolve_rule_filter,
)
from .pairing import BACKEND_KINDS, paired
from .parity import (
    ParityReport,
    analyze_parity_paths,
    analyze_parity_source,
    render_parity,
    resolve_parity_rule_filter,
)
from .rules import (
    AUDIT_RULES,
    CONC_RULES,
    PAR_RULES,
    RULES,
    Rule,
    rule_catalog,
)

if TYPE_CHECKING:  # pragma: no cover - import-time types only
    from .sanitize import (
        SanitizedGraphSnapshot,
        SanitizedGridOverlay,
        SanitizerViolation,
    )

_LAZY_SANITIZE = frozenset(
    {"SanitizedGraphSnapshot", "SanitizedGridOverlay", "SanitizerViolation"}
)


def __getattr__(name: str) -> Any:
    if name in _LAZY_SANITIZE:
        from . import sanitize

        return getattr(sanitize, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "AUDIT_RULES",
    "AuditFinding",
    "AuditReport",
    "BACKEND_KINDS",
    "Baseline",
    "CONC_RULES",
    "CounterDrift",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_PARITY_BASELINE_NAME",
    "DEFAULT_RACES_BASELINE_NAME",
    "DeadSuppression",
    "Finding",
    "LintReport",
    "PAR_RULES",
    "ParityReport",
    "RULES",
    "RaceReport",
    "Rule",
    "SHARED_STRUCTURES",
    "SanitizedGraphSnapshot",
    "SanitizedGridOverlay",
    "SanitizerViolation",
    "analyze_parity_paths",
    "analyze_parity_source",
    "analyze_paths",
    "analyze_source",
    "audit_solution",
    "context",
    "fix_hint_for",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "paired",
    "render_audit",
    "render_findings",
    "render_parity",
    "render_races",
    "resolve_parity_rule_filter",
    "resolve_races_rule_filter",
    "resolve_rule_filter",
    "rule_catalog",
    "save_baseline",
]
