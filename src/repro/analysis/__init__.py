"""Static and dynamic analysis for the determinism contract.

Three enforcement layers for the serial-equivalence guarantee of
:mod:`repro.parallel` (see ``docs/static_analysis.md``):

* :mod:`~repro.analysis.lint` — an AST-based determinism linter
  (rules DET001–DET005, ``repro lint`` on the CLI);
* :mod:`~repro.analysis.baseline` — committed grandfathering of
  pre-existing findings;
* :mod:`~repro.analysis.sanitize` — a dynamic speculation-footprint
  sanitizer (``RouterConfig(sanitize=True)`` / ``--sanitize``).
"""

from .baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    save_baseline,
)
from .lint import (
    Finding,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
    render_findings,
)
from .rules import RULES, Rule
from .sanitize import (
    SanitizedGraphSnapshot,
    SanitizedGridOverlay,
    SanitizerViolation,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "SanitizedGraphSnapshot",
    "SanitizedGridOverlay",
    "SanitizerViolation",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_findings",
    "save_baseline",
]
