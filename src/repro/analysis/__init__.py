"""Static and dynamic analysis for the correctness contracts.

Four enforcement layers (see ``docs/static_analysis.md``):

* :mod:`~repro.analysis.lint` — an AST-based determinism linter
  (rules DET001–DET005, ``repro lint`` on the CLI) guarding the
  serial-equivalence guarantee of :mod:`repro.parallel`;
* :mod:`~repro.analysis.baseline` — committed grandfathering of
  pre-existing lint findings;
* :mod:`~repro.analysis.sanitize` — a dynamic speculation-footprint
  sanitizer (``RouterConfig(sanitize=True)`` / ``--sanitize``);
* :mod:`~repro.analysis.audit` — an independent DRC-style solution
  auditor (rules AUD001–AUD007, ``repro audit`` on the CLI /
  ``RouterConfig(audit=True)``) that re-derives every stitching
  constraint from the raw geometry and cross-checks the evaluator's
  counters.
"""

from .audit import (
    AuditFinding,
    AuditReport,
    CounterDrift,
    audit_solution,
    render_audit,
)
from .baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    save_baseline,
)
from .lint import (
    Finding,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
    render_findings,
    resolve_rule_filter,
)
from .rules import AUDIT_RULES, RULES, Rule
from .sanitize import (
    SanitizedGraphSnapshot,
    SanitizedGridOverlay,
    SanitizerViolation,
)

__all__ = [
    "AUDIT_RULES",
    "AuditFinding",
    "AuditReport",
    "Baseline",
    "CounterDrift",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "SanitizedGraphSnapshot",
    "SanitizedGridOverlay",
    "SanitizerViolation",
    "audit_solution",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_audit",
    "render_findings",
    "resolve_rule_filter",
    "save_baseline",
]
