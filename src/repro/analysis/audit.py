"""Independent solution auditor (the AUD rule catalog).

DRC-style verification of a finished routing solution.  The evaluator
in :mod:`repro.eval` is the same code path the router optimizes
against, so a bookkeeping bug there is invisible to the regression
gate — the router would be grading its own homework.  This module is
the independent second opinion: it takes the final
:class:`~repro.detailed.DetailedResult` (plus the design's
:class:`~repro.layout.StitchingLines`) and re-derives every stitching
constraint **from scratch, with its own geometry code** — trimming,
segment merging, via extraction, connectivity, and short-polygon
detection are all reimplemented here and deliberately import nothing
from the evaluator's counting internals (``repro.eval.geometry`` /
``repro.detailed.wiring``).  Only the *data models* (result/report
dataclasses, the stitching-line table) are shared.

Two kinds of failure are reported:

* **findings** — one :class:`AuditFinding` per AUD-rule breach, with
  net / stitching-line / x / y / layer attribution (mirroring the
  linter's :class:`~repro.analysis.lint.Finding` shape);
* **drift** — one :class:`CounterDrift` per disagreement between a
  recomputed quantity and the router's self-reported
  :class:`~repro.eval.RoutingReport` counters (totals, per-net counts,
  and the per-line ``stitch_line_histogram``).

``repro audit`` is the CLI front end; ``RouterConfig(audit=True)``
runs the auditor inside the flow and attaches the report (plus
``audit_*`` trace counters) to the :class:`~repro.core.FlowResult`.
See ``docs/static_analysis.md``.
"""

from __future__ import annotations

import bisect
import dataclasses
from collections import Counter
from typing import TYPE_CHECKING, Optional, Union

from .findings import fix_hint_for
from .rules import AUDIT_RULES

if TYPE_CHECKING:  # data models only — never their counting helpers
    from ..detailed import DetailedResult
    from ..detailed.router import RoutedNet
    from ..eval import NetReport, RoutingReport
    from ..globalroute import GlobalRoutingResult
    from ..layout import StitchingLines

#: Grid node / unit wire edge, redeclared locally so the auditor's
#: geometry layer shares no code with the router's.
Node = tuple[int, int, int]
Edge = tuple[Node, Node]

Number = Union[int, float]

#: Attribution key of one recomputed violation: (line, x, y, layer).
Attribution = tuple[int, int, int, int]


@dataclasses.dataclass(frozen=True)
class AuditFinding:
    """One AUD-rule breach at one solution location.

    Mirrors the linter's ``Finding`` shape: a rule code, a message,
    and a location — here a net / stitching line / grid coordinate
    instead of a file / line / column.
    """

    rule: str
    message: str
    net: Optional[str] = None
    line: Optional[int] = None
    x: Optional[int] = None
    y: Optional[int] = None
    layer: Optional[int] = None

    @property
    def fix_hint(self) -> str:
        """The rule's canonical fix, for display."""
        return fix_hint_for(self.rule)

    @property
    def location(self) -> str:
        """Compact ``net=.. line=.. x=.. y=.. layer=..`` attribution."""
        parts = []
        for label, value in (
            ("net", self.net),
            ("line", self.line),
            ("x", self.x),
            ("y", self.y),
            ("layer", self.layer),
        ):
            if value is not None:
                parts.append(f"{label}={value}")
        return " ".join(parts)

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for ``--format json`` output."""
        return {
            "rule": self.rule,
            "message": self.message,
            "net": self.net,
            "line": self.line,
            "x": self.x,
            "y": self.y,
            "layer": self.layer,
            "fix_hint": self.fix_hint,
        }


@dataclasses.dataclass(frozen=True)
class CounterDrift:
    """One disagreement between a reported and a recomputed counter."""

    counter: str
    reported: Number
    recomputed: Number

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for ``--format json`` output."""
        return {
            "counter": self.counter,
            "reported": self.reported,
            "recomputed": self.recomputed,
        }


@dataclasses.dataclass
class AuditReport:
    """Outcome of one independent solution audit."""

    design_name: str
    findings: list[AuditFinding]
    drift: list[CounterDrift]
    nets_checked: int
    rules_checked: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether the solution verified clean (no finding, no drift)."""
        return not self.findings and not self.drift

    def to_dict(self) -> dict[str, object]:
        """Plain-dict document (the ``--format json`` payload)."""
        return {
            "design": self.design_name,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "drift": [d.to_dict() for d in self.drift],
            "nets_checked": self.nets_checked,
            "rules_checked": list(self.rules_checked),
        }


def render_audit(report: AuditReport) -> str:
    """Human-readable audit output (linter-style, one finding per line)."""
    out: list[str] = []
    for finding in report.findings:
        out.append(f"{finding.rule} {finding.message} [{finding.location}]")
        out.append(f"    hint: {finding.fix_hint}")
    for drift in report.drift:
        out.append(
            f"DRIFT {drift.counter}: reported {drift.reported} != "
            f"recomputed {drift.recomputed}"
        )
    verdict = "clean" if report.ok else "FAILED"
    out.append(
        f"{report.design_name}: {len(report.findings)} finding(s), "
        f"{len(report.drift)} counter drift(s) over "
        f"{report.nets_checked} net(s) "
        f"[{', '.join(report.rules_checked)}] — {verdict}"
    )
    return "\n".join(out)


# ----------------------------------------------------------------------
# Independent geometry layer (no code shared with repro.eval /
# repro.detailed.wiring — reimplemented from the problem statement).
# ----------------------------------------------------------------------
def _line_index(xs: tuple[int, ...], x: int) -> Optional[int]:
    """Index of the stitching line at ``x`` (binary search; None if off)."""
    i = bisect.bisect_left(xs, x)
    if i < len(xs) and xs[i] == x:
        return i
    return None


def _audit_trim(
    edges: frozenset[Edge], anchors: frozenset[Node]
) -> frozenset[Edge]:
    """Remove edges hanging off non-anchor degree-1 nodes.

    Same contract as the router's trimming but implemented as repeated
    whole-graph passes to a fixpoint (the reduction is confluent, so
    the survivor set is identical whatever the peeling order).
    """
    alive = set(edges)
    while True:
        degree: Counter[Node] = Counter()
        for a, b in alive:
            degree[a] += 1
            degree[b] += 1
        doomed = {
            e
            for e in alive
            if any(degree[n] == 1 and n not in anchors for n in e)
        }
        if not doomed:
            return frozenset(alive)
        alive -= doomed


def _maximal_runs(values: list[int]) -> list[tuple[int, int]]:
    """Merge unit-step start coordinates into maximal [lo, hi] runs."""
    runs: list[tuple[int, int]] = []
    for v in sorted(set(values)):
        if runs and v == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], v)
        else:
            runs.append((v, v))
    return runs


@dataclasses.dataclass
class _NetGeometry:
    """Everything the auditor re-derives for one net."""

    name: str
    routed: bool
    pins: frozenset[Node]
    raw_edges: frozenset[Edge]
    edges: frozenset[Edge]
    #: x-axis maximal segments as (y, layer, x_lo, x_hi).
    horizontal: list[tuple[int, int, int, int]]
    #: y-axis maximal segments as (x, layer, y_lo, y_hi).
    vertical: list[tuple[int, int, int, int]]
    #: (x, y) -> lowest layer of the via stack there.
    via_stacks: dict[tuple[int, int], int]
    #: every node where a via (or a pin cell contact) lands.
    landings: frozenset[Node]
    wirelength: int
    vias: int
    #: recomputed attributed violations per kind (multisets).
    via_events: Counter[Attribution]
    vertical_events: Counter[Attribution]
    sp_events: Counter[Attribution]


def _derive_net_geometry(
    routed_net: "RoutedNet", stitches: "StitchingLines"
) -> _NetGeometry:
    """Re-derive one net's audited geometry from its raw edge set."""
    name = routed_net.net.name
    pins = frozenset(routed_net.pin_nodes)
    raw = frozenset(routed_net.edges)
    edges = _audit_trim(raw, pins)
    xs = stitches.xs
    epsilon = stitches.epsilon

    # Maximal planar runs, grouped by the two fixed coordinates.
    h_groups: dict[tuple[int, int], list[int]] = {}
    v_groups: dict[tuple[int, int], list[int]] = {}
    via_stacks: dict[tuple[int, int], int] = {}
    wirelength = 0
    vias = 0
    landing_nodes: set[Node] = set(pins)
    for a, b in sorted(edges):
        if a[2] != b[2]:
            vias += 1
            low = min(a[2], b[2])
            key = (a[0], a[1])
            via_stacks[key] = min(via_stacks.get(key, low), low)
            landing_nodes.add(a)
            landing_nodes.add(b)
        elif a[0] != b[0]:
            wirelength += 1
            h_groups.setdefault((a[1], a[2]), []).append(min(a[0], b[0]))
        else:
            wirelength += 1
            v_groups.setdefault((a[0], a[2]), []).append(min(a[1], b[1]))

    horizontal = [
        (y, layer, lo, hi + 1)
        for (y, layer), starts in sorted(h_groups.items())
        for lo, hi in _maximal_runs(starts)
    ]
    vertical = [
        (x, layer, lo, hi + 1)
        for (x, layer), starts in sorted(v_groups.items())
        for lo, hi in _maximal_runs(starts)
    ]

    # Recomputed attributed violations (the report's column semantics).
    via_events: Counter[Attribution] = Counter()
    for (x, y), layer in sorted(via_stacks.items()):
        line = _line_index(xs, x)
        if line is not None:
            via_events[(line, x, y, layer)] += 1
    if routed_net.routed:
        # Each routed pin is a cell contact below layer 1: a pin on a
        # line is an (unavoidable, Problem-1-sanctioned) via violation.
        for x, y, layer in sorted(pins):
            line = _line_index(xs, x)
            if line is not None:
                via_events[(line, x, y, layer)] += 1

    vertical_events: Counter[Attribution] = Counter()
    for x, layer, y_lo, _y_hi in vertical:
        line = _line_index(xs, x)
        if line is not None:
            vertical_events[(line, x, y_lo, layer)] += 1

    landings = frozenset(landing_nodes)
    sp_events: Counter[Attribution] = Counter()
    for y, layer, x_lo, x_hi in horizontal:
        # Lines strictly inside the wire's x extent cut it in two.
        lo = bisect.bisect_right(xs, x_lo)
        hi = bisect.bisect_left(xs, x_hi)
        for line_x in xs[lo:hi]:
            for end_x in (x_lo, x_hi):
                if 0 < abs(end_x - line_x) <= epsilon and (
                    (end_x, y, layer) in landings
                ):
                    line = _line_index(xs, line_x)
                    assert line is not None
                    sp_events[(line, line_x, y, layer)] += 1

    return _NetGeometry(
        name=name,
        routed=routed_net.routed,
        pins=pins,
        raw_edges=raw,
        edges=edges,
        horizontal=horizontal,
        vertical=vertical,
        via_stacks=via_stacks,
        landings=landings,
        wirelength=wirelength,
        vias=vias,
        via_events=via_events,
        vertical_events=vertical_events,
        sp_events=sp_events,
    )


def _reported_events(
    net_report: "NetReport", kind: str
) -> Counter[Attribution]:
    """The report's attributed violations of one kind, as a multiset."""
    out: Counter[Attribution] = Counter()
    for violation in net_report.violations:
        if violation.kind == kind:
            out[
                (violation.line, violation.x, violation.y, violation.layer)
            ] += 1
    return out


def _diff_events(
    findings: list[AuditFinding],
    rule: str,
    net: str,
    kind: str,
    recomputed: Counter[Attribution],
    reported: Counter[Attribution],
) -> None:
    """Emit findings for every recomputed/reported multiset mismatch."""
    for line, x, y, layer in sorted((recomputed - reported).elements()):
        findings.append(
            AuditFinding(
                rule=rule,
                message=f"{kind} violation in geometry but absent from "
                "the report",
                net=net,
                line=line,
                x=x,
                y=y,
                layer=layer,
            )
        )
    for line, x, y, layer in sorted((reported - recomputed).elements()):
        findings.append(
            AuditFinding(
                rule=rule,
                message=f"reported {kind} violation has no supporting "
                "geometry",
                net=net,
                line=line,
                x=x,
                y=y,
                layer=layer,
            )
        )


def _connected_pin_components(geo: _NetGeometry) -> list[set[Node]]:
    """Connected components (over trimmed edges) containing each pin."""
    parent: dict[Node, Node] = {}

    def find(node: Node) -> Node:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for a, b in sorted(geo.edges):
        parent[find(a)] = find(b)
    for pin in sorted(geo.pins):
        find(pin)
    components: dict[Node, set[Node]] = {}
    for node in parent:
        components.setdefault(find(node), set()).add(node)
    return [comp for comp in components.values() if comp & geo.pins]


def _check_net_rules(
    geo: _NetGeometry,
    net_report: Optional["NetReport"],
    stitches: "StitchingLines",
    die: tuple[int, int, int],
    horizontal_layer: list[bool],
    findings: list[AuditFinding],
) -> None:
    """AUD001/002/003/004/006 for one net."""
    xs = stitches.xs

    # AUD001a: a via stack on a line is legal only at a fixed pin.
    pin_xy = {(x, y) for x, y, _layer in geo.pins}
    for (x, y), layer in sorted(geo.via_stacks.items()):
        line = _line_index(xs, x)
        if line is not None and (x, y) not in pin_xy:
            findings.append(
                AuditFinding(
                    rule="AUD001",
                    message="routed via stack on a stitching line away "
                    "from any fixed pin",
                    net=geo.name,
                    line=line,
                    x=x,
                    y=y,
                    layer=layer,
                )
            )

    # AUD002: vertical wire along a line — hard constraint, always bad.
    for x, layer, y_lo, _y_hi in geo.vertical:
        line = _line_index(xs, x)
        if line is not None:
            findings.append(
                AuditFinding(
                    rule="AUD002",
                    message="vertical wire runs along a stitching line",
                    net=geo.name,
                    line=line,
                    x=x,
                    y=y_lo,
                    layer=layer,
                )
            )

    # AUD001b/AUD002b/AUD003: the report's attributed violations must
    # match the recomputed events exactly, item by item.
    if net_report is not None:
        _diff_events(
            findings,
            "AUD001",
            geo.name,
            "via",
            geo.via_events,
            _reported_events(net_report, "via"),
        )
        reported_vertical = _reported_events(net_report, "vertical")
        for line, x, y, layer in sorted(
            (reported_vertical - geo.vertical_events).elements()
        ):
            findings.append(
                AuditFinding(
                    rule="AUD002",
                    message="reported vertical violation has no "
                    "supporting geometry",
                    net=geo.name,
                    line=line,
                    x=x,
                    y=y,
                    layer=layer,
                )
            )
        _diff_events(
            findings,
            "AUD003",
            geo.name,
            "short-polygon",
            geo.sp_events,
            _reported_events(net_report, "short-polygon"),
        )

    # AUD004: a routed net must connect all pins in one component.
    if geo.routed and geo.pins:
        components = _connected_pin_components(geo)
        if len(components) > 1:
            anchor = min(min(comp) for comp in components)
            for comp in sorted(components, key=min):
                pin = min(comp & geo.pins)
                if pin == anchor or anchor in comp:
                    continue
                findings.append(
                    AuditFinding(
                        rule="AUD004",
                        message=f"net marked routed but pin {pin} is "
                        f"disconnected from pin {anchor}",
                        net=geo.name,
                        x=pin[0],
                        y=pin[1],
                        layer=pin[2],
                    )
                )

    # AUD006: grid legality of every unit edge.
    width, height, num_layers = die
    for a, b in sorted(geo.raw_edges):
        dx, dy, dz = abs(a[0] - b[0]), abs(a[1] - b[1]), abs(a[2] - b[2])
        if dx + dy + dz != 1:
            findings.append(
                AuditFinding(
                    rule="AUD006",
                    message=f"edge {a} -> {b} is not a unit grid move",
                    net=geo.name,
                    x=a[0],
                    y=a[1],
                    layer=a[2],
                )
            )
            continue
        off_die = any(
            not (
                0 <= n[0] < width
                and 0 <= n[1] < height
                and 1 <= n[2] <= num_layers
            )
            for n in (a, b)
        )
        if off_die:
            findings.append(
                AuditFinding(
                    rule="AUD006",
                    message=f"edge {a} -> {b} leaves the die or the "
                    "layer stack",
                    net=geo.name,
                    x=a[0],
                    y=a[1],
                    layer=a[2],
                )
            )
            continue
        if dx == 1 and not horizontal_layer[a[2]]:
            findings.append(
                AuditFinding(
                    rule="AUD006",
                    message="x-direction wire on a vertical layer",
                    net=geo.name,
                    x=min(a[0], b[0]),
                    y=a[1],
                    layer=a[2],
                )
            )
        elif dy == 1 and horizontal_layer[a[2]]:
            findings.append(
                AuditFinding(
                    rule="AUD006",
                    message="y-direction wire on a horizontal layer",
                    net=geo.name,
                    x=a[0],
                    y=min(a[1], b[1]),
                    layer=a[2],
                )
            )


def _check_shorts(
    geometries: list[_NetGeometry], findings: list[AuditFinding]
) -> None:
    """AUD005: no grid node may carry the metal of two nets."""
    owner: dict[Node, str] = {}
    reported: set[tuple[Node, str, str]] = set()
    for geo in geometries:
        nodes = {n for e in geo.raw_edges for n in e}
        if geo.routed:
            nodes |= geo.pins
        for node in sorted(nodes):
            previous = owner.get(node)
            if previous is None:
                owner[node] = geo.name
            elif previous != geo.name:
                key = (node, previous, geo.name)
                if key not in reported:
                    reported.add(key)
                    findings.append(
                        AuditFinding(
                            rule="AUD005",
                            message=f"nets {previous!r} and {geo.name!r} "
                            f"both occupy grid node {node}",
                            net=geo.name,
                            x=node[0],
                            y=node[1],
                            layer=node[2],
                        )
                    )


def _check_global_accounting(
    global_result: "GlobalRoutingResult", findings: list[AuditFinding]
) -> None:
    """AUD007: demand arrays must equal the recompute from final routes."""
    graph = global_result.graph
    h: Counter[tuple[int, int]] = Counter()
    v: Counter[tuple[int, int]] = Counter()
    vertex: Counter[tuple[int, int]] = Counter()
    for name in sorted(global_result.routes):
        route = global_result.routes[name]
        for path in route.paths:
            for a, b in zip(path, path[1:]):
                if a[1] == b[1]:
                    h[(min(a[0], b[0]), a[1])] += 1
                else:
                    v[(a[0], min(a[1], b[1]))] += 1
            # Maximal vertical runs: both end tiles hold a line end.
            run_start: Optional[int] = None
            for idx in range(len(path) - 1):
                is_vertical = path[idx][0] == path[idx + 1][0]
                if is_vertical and run_start is None:
                    run_start = idx
                if not is_vertical and run_start is not None:
                    vertex[path[run_start]] += 1
                    vertex[path[idx]] += 1
                    run_start = None
            if run_start is not None:
                vertex[path[run_start]] += 1
                vertex[path[-1]] += 1

    checks = (
        ("h-edge", graph.h_demand, h),
        ("v-edge", graph.v_demand, v),
        ("vertex", graph.vertex_demand, vertex),
    )
    for label, stored, fresh in checks:
        ni, nj = stored.shape
        for i in range(ni):
            for j in range(nj):
                expected = fresh.get((i, j), 0)
                actual = int(stored[i, j])
                if actual != expected:
                    findings.append(
                        AuditFinding(
                            rule="AUD007",
                            message=f"{label} ({i}, {j}) demand {actual} "
                            f"!= {expected} recomputed from the final "
                            "routes",
                            x=i,
                            y=j,
                        )
                    )


def _cross_check(
    report: "RoutingReport",
    geometries: list[_NetGeometry],
    drift: list[CounterDrift],
) -> None:
    """Diff every report counter against its recomputed value."""

    def check(counter: str, reported: Number, recomputed: Number) -> None:
        if reported != recomputed:
            drift.append(CounterDrift(counter, reported, recomputed))

    by_name = {geo.name: geo for geo in geometries}

    # Per-net counters and their attribution lists.
    for name in sorted(report.nets):
        net_report = report.nets[name]
        geo = by_name.get(name)
        if geo is None:
            drift.append(CounterDrift(f"net[{name}].present", 1, 0))
            continue
        check(f"net[{name}].routed", int(net_report.routed), int(geo.routed))
        check(
            f"net[{name}].via_violations",
            net_report.via_violations,
            sum(geo.via_events.values()),
        )
        check(
            f"net[{name}].vertical_violations",
            net_report.vertical_violations,
            sum(geo.vertical_events.values()),
        )
        check(
            f"net[{name}].short_polygons",
            net_report.short_polygons,
            sum(geo.sp_events.values()),
        )
        check(
            f"net[{name}].wirelength", net_report.wirelength, geo.wirelength
        )
        check(f"net[{name}].vias", net_report.vias, geo.vias)
        # Internal consistency: scalar counts vs attribution lists.
        kinds = Counter(v.kind for v in net_report.violations)
        check(
            f"net[{name}].violations.via",
            net_report.via_violations,
            kinds.get("via", 0),
        )
        check(
            f"net[{name}].violations.vertical",
            net_report.vertical_violations,
            kinds.get("vertical", 0),
        )
        check(
            f"net[{name}].violations.short-polygon",
            net_report.short_polygons,
            kinds.get("short-polygon", 0),
        )
    for geo in geometries:
        if geo.name not in report.nets:
            drift.append(CounterDrift(f"net[{geo.name}].present", 0, 1))

    # Aggregate columns (the #SP column counts routed nets only).
    check("total_nets", report.total_nets, len(geometries))
    check(
        "routed_nets",
        report.routed_nets,
        sum(1 for geo in geometries if geo.routed),
    )
    check(
        "via_violations",
        report.via_violations,
        sum(sum(geo.via_events.values()) for geo in geometries),
    )
    check(
        "vertical_violations",
        report.vertical_violations,
        sum(sum(geo.vertical_events.values()) for geo in geometries),
    )
    check(
        "short_polygons",
        report.short_polygons,
        sum(
            sum(geo.sp_events.values()) for geo in geometries if geo.routed
        ),
    )
    check(
        "wirelength",
        report.wirelength,
        sum(geo.wirelength for geo in geometries),
    )
    check("vias", report.vias, sum(geo.vias for geo in geometries))

    # Per-line histogram: recompute with the same column semantics
    # (short polygons of unrouted nets are excluded).
    recomputed: dict[int, dict[str, int]] = {}

    def bump(line: int, kind: str, count: int) -> None:
        per_line = recomputed.setdefault(
            line, {"via": 0, "vertical": 0, "short-polygon": 0}
        )
        per_line[kind] += count

    for geo in geometries:
        for (line, _x, _y, _layer), count in sorted(geo.via_events.items()):
            bump(line, "via", count)
        for (line, _x, _y, _layer), count in sorted(
            geo.vertical_events.items()
        ):
            bump(line, "vertical", count)
        if geo.routed:
            for (line, _x, _y, _layer), count in sorted(
                geo.sp_events.items()
            ):
                bump(line, "short-polygon", count)

    histogram = report.stitch_line_histogram()
    for line in sorted(set(histogram) | set(recomputed)):
        reported_kinds = histogram.get(line, {})
        recomputed_kinds = recomputed.get(line, {})
        for kind in ("via", "vertical", "short-polygon"):
            check(
                f"line[{line}].{kind}",
                reported_kinds.get(kind, 0),
                recomputed_kinds.get(kind, 0),
            )


def audit_solution(
    result: "DetailedResult",
    report: "RoutingReport",
    global_result: Optional["GlobalRoutingResult"] = None,
) -> AuditReport:
    """Independently verify a routing solution against its report.

    Args:
        result: the final detailed-routing geometry.
        report: the router's self-reported violation/metric report
            (the object whose numbers are being cross-checked).
        global_result: when given, the global-routing outcome is also
            audited (AUD007 capacity accounting).

    Returns:
        An :class:`AuditReport`; :attr:`AuditReport.ok` is ``True``
        only when no rule fired and no counter drifted.
    """
    design = result.design
    stitches = design.stitches
    if stitches is None:
        raise ValueError("design has no stitching lines to audit against")
    tech = design.technology
    horizontal_layer = [False] + [
        tech.is_horizontal(m) for m in tech.layers
    ]

    findings: list[AuditFinding] = []
    drift: list[CounterDrift] = []
    geometries: list[_NetGeometry] = []
    for name in sorted(result.nets):
        geo = _derive_net_geometry(result.nets[name], stitches)
        geometries.append(geo)
        _check_net_rules(
            geo,
            report.nets.get(name),
            stitches,
            (design.width, design.height, tech.num_layers),
            horizontal_layer,
            findings,
        )
    _check_shorts(geometries, findings)
    rules = ["AUD001", "AUD002", "AUD003", "AUD004", "AUD005", "AUD006"]
    if global_result is not None:
        _check_global_accounting(global_result, findings)
        rules.append("AUD007")
    _cross_check(report, geometries, drift)

    order = {code: idx for idx, code in enumerate(AUDIT_RULES)}
    findings.sort(
        key=lambda f: (
            order[f.rule],
            f.net or "",
            f.line if f.line is not None else -1,
            f.x if f.x is not None else -1,
            f.y if f.y is not None else -1,
            f.layer if f.layer is not None else -1,
            f.message,
        )
    )
    return AuditReport(
        design_name=design.name,
        findings=findings,
        drift=drift,
        nets_checked=len(geometries),
        rules_checked=tuple(rules),
    )
