"""Shared finding/fix-hint/rule-filter plumbing for the analysis tools.

The determinism linter (:mod:`~repro.analysis.lint`), the solution
auditor (:mod:`~repro.analysis.audit`), and the concurrency-effect
analyzer (:mod:`~repro.analysis.concurrency`) all report rule breaches
the same way: a stable rule code, a message, a location, a canonical
fix hint, ``# repro: allow-<CODE>`` suppression comments, and
``--select`` / ``--ignore`` rule filtering.  This module is the one
implementation all three share:

* :class:`Finding` — a source-location finding (used by the linter and
  the concurrency analyzer; the auditor's :class:`~repro.analysis.
  audit.AuditFinding` shares the hint/serialization surface);
* :func:`fix_hint_for` — rule-code -> canonical fix lookup over the
  merged catalogs;
* :func:`resolve_rule_filter` — ``--select`` / ``--ignore`` resolution
  against an explicit known-code set, raising on unknown codes (the
  CLI's exit-2 condition);
* :func:`suppressed_rules` / :func:`suppression_map` — ``# repro:
  allow-XXXnnn`` comment parsing for any rule family (the map form is
  tokenizer-backed, so quoting the syntax in a string is inert);
* :class:`DeadSuppression` — an ``allow-`` comment that no longer
  silences anything (reported so suppressions cannot accumulate).
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from collections.abc import Iterable
from typing import Optional

from .rules import rule_catalog


def fix_hint_for(code: str) -> str:
    """The canonical fix hint of ``code`` from the merged rule catalogs."""
    return rule_catalog()[code].fix_hint


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Shared by the linter (DET rules) and the concurrency analyzer
    (CONC rules); the rule code picks the catalog implicitly.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    text: str

    @property
    def fix_hint(self) -> str:
        """The rule's canonical fix, for display."""
        return fix_hint_for(self.rule)

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-independent identity used by the baseline."""
        return (self.path.replace("\\", "/"), self.rule, self.text)

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for ``--format json`` output."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "text": self.text,
            "fix_hint": self.fix_hint,
        }


@dataclasses.dataclass(frozen=True)
class DeadSuppression:
    """An ``allow-`` comment whose codes silenced no finding on its line.

    Dead suppressions are reported as warnings (they never fail a run)
    so stale ``# repro: allow-XXXnnn`` comments surface instead of
    accumulating silently after the underlying finding is fixed.
    """

    path: str
    line: int
    codes: tuple[str, ...]
    text: str

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for ``--format json`` output."""
        return {
            "path": self.path,
            "line": self.line,
            "codes": list(self.codes),
            "text": self.text,
        }


def suppression_pattern(family: str) -> re.Pattern[str]:
    """Compiled ``# repro: allow-<FAMILY>nnn`` matcher for one family."""
    return re.compile(
        rf"#\s*repro:\s*allow-({family}\d{{3}}"
        rf"(?:\s*,\s*(?:allow-)?{family}\d{{3}})*)"
    )


def suppressed_rules(line: str, family: str = "DET") -> frozenset[str]:
    """Rule codes silenced by a ``# repro: allow-...`` comment.

    ``family`` is the rule-code prefix (``DET``, ``CONC``); several
    codes may be listed comma separated, with or without repeating the
    ``allow-`` prefix.
    """
    match = suppression_pattern(family).search(line)
    if match is None:
        return frozenset()
    codes = re.findall(rf"{family}\d{{3}}", match.group(1))
    return frozenset(codes)


def suppression_map(source: str, family: str) -> dict[int, frozenset[str]]:
    """Per-line suppression codes from *real* comments in ``source``.

    Tokenizes the file so an ``allow-`` pattern inside a string literal
    (documentation quoting the comment syntax) neither suppresses nor
    counts as a dead suppression.  Falls back to a plain per-line regex
    scan when the source cannot be tokenized.
    """
    pattern = suppression_pattern(family)
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            codes = suppressed_rules(line, family)
            if codes:
                out[lineno] = codes
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = pattern.search(token.string)
        if match is None:
            continue
        codes = frozenset(re.findall(rf"{family}\d{{3}}", match.group(1)))
        lineno = token.start[0]
        out[lineno] = out.get(lineno, frozenset()) | codes
    return out


def resolve_rule_filter(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    *,
    known: Iterable[str],
) -> frozenset[str]:
    """The active rule codes after ``--select`` / ``--ignore``.

    ``select`` restricts the run to the listed codes (default: every
    code in ``known``); ``ignore`` then removes codes.  Unknown codes
    raise :class:`ValueError` naming the offenders — the CLI maps that
    to exit code 2.
    """
    known_set = frozenset(known)
    requested = frozenset(select) if select is not None else known_set
    ignored = frozenset(ignore) if ignore is not None else frozenset()
    unknown = sorted((requested | ignored) - known_set)
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known_set))})"
        )
    return requested - ignored


def finding_lines(findings: Iterable[Finding]) -> list[str]:
    """Human-readable lines for ``findings`` (one line plus its hint)."""
    out: list[str] = []
    for finding in findings:
        out.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule} {finding.message}"
        )
        out.append(f"    hint: {finding.fix_hint}")
    return out


def dead_suppression_lines(dead: Iterable[DeadSuppression]) -> list[str]:
    """Warning lines for stale ``allow-`` comments."""
    out: list[str] = []
    for entry in dead:
        codes = ", ".join(entry.codes)
        out.append(
            f"{entry.path}:{entry.line}: warning: dead suppression "
            f"({codes} silences no finding on this line)"
        )
    return out
