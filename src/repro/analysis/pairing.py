"""Backend-pair markers for the cross-backend parity analyzer.

Every performance arc in this codebase — the array engine behind
``RouterConfig(engine=...)``, the thread pool, the shared-memory
process pool — is only safe because each fast path is *provably
equivalent* to the reference implementation it shadows.  The dynamic
half of that proof is the differential suites; the static half is
:mod:`~repro.analysis.parity`, which needs to know which callables
claim to be two implementations of the same contract.

:func:`paired` declares that claim.  Stamping

.. code-block:: python

    @paired("detailed-astar", backend="object")
    def astar_connect(...): ...

    @paired("detailed-astar", backend="array")
    def indexed_search(...): ...

puts both callables into the ``"detailed-astar"`` pair; ``repro
parity`` then extracts each member's effect signature (counters
bumped, spans/gauges emitted, config fields read, exceptions raised)
and flags any divergence under the PAR rules.  The decorator is inert
at run time — it only attaches attributes — and the analyzer reads it
syntactically, so it works on methods, free functions, and functions
the interpreter never imports.

Backend tags name the axis the pair varies over: ``object`` / ``array``
for the engine axis, ``serial`` / ``thread`` / ``process`` for the
executor axis.  A pair may have more than two members (e.g. one
reference and two accelerated forms), but tags within a pair must be
unique — two members claiming the same tag is a declaration bug and
the analyzer rejects it.

This module is a dependency leaf: the routers import it, so it must
import nothing from :mod:`repro` itself.
"""

from __future__ import annotations

from typing import Callable, TypeVar

#: The recognized backend tags, spanning both pairing axes.
BACKEND_KINDS = frozenset(
    {"object", "array", "serial", "thread", "process"}
)

_F = TypeVar("_F", bound=Callable[..., object])


def paired(pair: str, *, backend: str) -> Callable[[_F], _F]:
    """Mark a callable as one backend of a declared equivalence pair.

    Args:
        pair: the pair's name, shared by every member (e.g.
            ``"detailed-astar"``).  Kebab-case by convention.
        backend: which backend this member implements — one of
            :data:`BACKEND_KINDS`, unique within the pair.

    The decorator validates its arguments eagerly (at import time) and
    attaches ``__repro_pair__`` / ``__repro_pair_backend__`` to the
    function, changing nothing else.
    """
    if not pair or not isinstance(pair, str):
        raise ValueError(f"pair name must be a non-empty string: {pair!r}")
    if backend not in BACKEND_KINDS:
        raise ValueError(
            f"unknown backend {backend!r} "
            f"(expected one of {', '.join(sorted(BACKEND_KINDS))})"
        )

    def mark(func: _F) -> _F:
        func.__repro_pair__ = pair  # type: ignore[attr-defined]
        func.__repro_pair_backend__ = backend  # type: ignore[attr-defined]
        return func

    return mark
