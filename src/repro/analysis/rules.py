"""The determinism rule catalog (DET001–DET005).

Each rule states one convention the serial-equivalence contract of the
parallel engine rests on (see ``docs/parallelism.md``): the routing
result must be a pure function of the design and the config, byte-for-
byte reproducible across processes, machines, and worker counts.  The
linter in :mod:`~repro.analysis.lint` enforces the catalog statically;
``docs/static_analysis.md`` discusses every rule with examples.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Rule:
    """One determinism rule.

    Attributes:
        code: stable identifier (``DET001`` ...), used in output and in
            ``# repro: allow-DETnnn`` suppression comments.
        title: one-line description shown next to every finding.
        rationale: why violating the rule can break serial equivalence.
        fix_hint: the canonical way to fix (or legitimately suppress) a
            finding; printed with every finding.
        routing_only: whether the rule applies only inside the
            routing-decision packages (``ROUTING_PACKAGES``); rules
            that are unconditionally bad apply everywhere.
    """

    code: str
    title: str
    rationale: str
    fix_hint: str
    routing_only: bool = True


#: Packages whose code feeds routing decisions.  Iteration order,
#: tie-breaking, and ambient inputs inside these packages directly
#: shape the routing result, so the routing-scoped rules apply here.
ROUTING_PACKAGES = frozenset(
    {"globalroute", "detailed", "assign", "parallel", "multilevel"}
)

DET001 = Rule(
    code="DET001",
    title="unordered iteration over a set or dict.keys()",
    rationale=(
        "Iterating a set (or materializing one into a sequence) exposes "
        "hash order; any routing decision derived from that order can "
        "differ between processes and break byte-identical replay."
    ),
    fix_hint=(
        "iterate sorted(...) or a canonically ordered container; if the "
        "consumer is provably order-independent, append "
        "'# repro: allow-DET001 <why>'"
    ),
)

DET002 = Rule(
    code="DET002",
    title="wall-clock or RNG input in a routing path",
    rationale=(
        "time.time()/random/os.urandom make the routing result depend "
        "on when and where it runs; only the observe layer may read "
        "ambient state (timing measurement is sanctioned there and via "
        "time.perf_counter for reported durations)."
    ),
    fix_hint=(
        "derive the value from the design or the RouterConfig, or move "
        "the measurement into repro.observe; timers for reported "
        "durations should use time.perf_counter"
    ),
)

DET003 = Rule(
    code="DET003",
    title="float equality comparison on coordinates or costs",
    rationale=(
        "== / != on accumulated float costs flips with association "
        "order, so two schedules of the same arithmetic can take "
        "different branches."
    ),
    fix_hint=(
        "compare with an explicit tolerance (math.isclose or an "
        "epsilon), or restructure so the branch keys on integers"
    ),
)

DET004 = Rule(
    code="DET004",
    title="mutable default argument",
    rationale=(
        "A shared mutable default leaks state between calls — results "
        "then depend on call history, not on the inputs."
    ),
    fix_hint="default to None and create the container inside the body",
    routing_only=False,
)

DET005 = Rule(
    code="DET005",
    title="id()/hash-order reliance for tie-breaking",
    rationale=(
        "id() values and hash-bucket order (next(iter(s)), set.pop()) "
        "vary between processes; a tie broken by either is a "
        "nondeterministic routing decision."
    ),
    fix_hint=(
        "break ties on stable domain keys (net name, coordinates); "
        "pick set elements with min()/max()/sorted()"
    ),
)

#: All rules, keyed by code, in catalog order.
RULES: dict[str, Rule] = {
    r.code: r for r in (DET001, DET002, DET003, DET004, DET005)
}
