"""The analysis rule catalogs (DET, AUD, CONC, PAR).

Four catalogs share the :class:`Rule` record:

* the **DET** rules state the code-level conventions the serial-
  equivalence contract of the parallel engine rests on (see
  ``docs/parallelism.md``): the routing result must be a pure function
  of the design and the config, byte-for-byte reproducible across
  processes, machines, and worker counts.  The linter in
  :mod:`~repro.analysis.lint` enforces them statically.
* the **AUD** rules state the solution-level constraints a finished
  routing must satisfy (the paper's Problem 1 plus basic routing
  legality).  The independent auditor in
  :mod:`~repro.analysis.audit` re-derives each one from the raw
  geometry — DRC-style, sharing no counting code with the evaluator —
  and cross-checks the router's self-reported numbers.
* the **CONC** rules state the shared-state discipline of the
  parallel engine: speculative code may only touch shared routing
  state through the declared overlay / snapshot / shared-memory
  channels.  The static concurrency-effect analyzer in
  :mod:`~repro.analysis.concurrency` enforces them over the call
  graph, seeded by ``@repro.analysis.context(...)`` markers.
* the **PAR** rules state the cross-backend equivalence discipline:
  implementations declared as backend pairs
  (``@repro.analysis.paired(...)``) must agree on every externally
  observable effect — counters, trace events, config consumption,
  exceptions, and call signatures — and every observability name must
  be declared in the :mod:`~repro.observe.schema` registry.  The
  parity analyzer in :mod:`~repro.analysis.parity` enforces them.

``docs/static_analysis.md`` discusses every rule with examples.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Rule:
    """One determinism rule.

    Attributes:
        code: stable identifier (``DET001`` ...), used in output and in
            ``# repro: allow-DETnnn`` suppression comments.
        title: one-line description shown next to every finding.
        rationale: why violating the rule can break serial equivalence.
        fix_hint: the canonical way to fix (or legitimately suppress) a
            finding; printed with every finding.
        routing_only: whether the rule applies only inside the
            routing-decision packages (``ROUTING_PACKAGES``); rules
            that are unconditionally bad apply everywhere.
    """

    code: str
    title: str
    rationale: str
    fix_hint: str
    routing_only: bool = True


#: Packages whose code feeds routing decisions.  Iteration order,
#: tie-breaking, and ambient inputs inside these packages directly
#: shape the routing result, so the routing-scoped rules apply here.
ROUTING_PACKAGES = frozenset(
    {"globalroute", "detailed", "assign", "parallel", "multilevel"}
)

DET001 = Rule(
    code="DET001",
    title="unordered iteration over a set or dict.keys()",
    rationale=(
        "Iterating a set (or materializing one into a sequence) exposes "
        "hash order; any routing decision derived from that order can "
        "differ between processes and break byte-identical replay."
    ),
    fix_hint=(
        "iterate sorted(...) or a canonically ordered container; if the "
        "consumer is provably order-independent, append "
        "'# repro: allow-DET001 <why>'"
    ),
)

DET002 = Rule(
    code="DET002",
    title="wall-clock or RNG input in a routing path",
    rationale=(
        "time.time()/random/os.urandom make the routing result depend "
        "on when and where it runs; only the observe layer may read "
        "ambient state (timing measurement is sanctioned there and via "
        "time.perf_counter for reported durations)."
    ),
    fix_hint=(
        "derive the value from the design or the RouterConfig, or move "
        "the measurement into repro.observe; timers for reported "
        "durations should use time.perf_counter"
    ),
)

DET003 = Rule(
    code="DET003",
    title="float equality comparison on coordinates or costs",
    rationale=(
        "== / != on accumulated float costs flips with association "
        "order, so two schedules of the same arithmetic can take "
        "different branches."
    ),
    fix_hint=(
        "compare with an explicit tolerance (math.isclose or an "
        "epsilon), or restructure so the branch keys on integers"
    ),
)

DET004 = Rule(
    code="DET004",
    title="mutable default argument",
    rationale=(
        "A shared mutable default leaks state between calls — results "
        "then depend on call history, not on the inputs."
    ),
    fix_hint="default to None and create the container inside the body",
    routing_only=False,
)

DET005 = Rule(
    code="DET005",
    title="id()/hash-order reliance for tie-breaking",
    rationale=(
        "id() values and hash-bucket order (next(iter(s)), set.pop()) "
        "vary between processes; a tie broken by either is a "
        "nondeterministic routing decision."
    ),
    fix_hint=(
        "break ties on stable domain keys (net name, coordinates); "
        "pick set elements with min()/max()/sorted()"
    ),
)

#: All determinism rules, keyed by code, in catalog order.
RULES: dict[str, Rule] = {
    r.code: r for r in (DET001, DET002, DET003, DET004, DET005)
}


AUD001 = Rule(
    code="AUD001",
    title="via on a stitching line",
    rationale=(
        "Problem 1 permits via violations only at fixed pins: a routed "
        "via stack cut by a stitching line anywhere else is illegal, "
        "and every via-on-line event must appear in the report's "
        "attributed #VV count."
    ),
    fix_hint=(
        "vias may sit on a line only at a fixed pin; check the grid's "
        "hard via constraint and the evaluator's #VV accounting"
    ),
    routing_only=False,
)

AUD002 = Rule(
    code="AUD002",
    title="vertical wire running along a stitching line",
    rationale=(
        "The vertical routing constraint is hard for both routers: a "
        "wire on a vertical layer may never occupy a stitching-line "
        "track, so any such segment is a legality breach — the "
        "vertical-violation column must be zero."
    ),
    fix_hint=(
        "the detailed grid must block vertical-layer nodes on line "
        "tracks structurally; check DetailedGrid.is_blocked"
    ),
    routing_only=False,
)

AUD003 = Rule(
    code="AUD003",
    title="short polygon site mismatch in the stitch unfriendly region",
    rationale=(
        "A horizontal wire cut by a line whose end lies within epsilon "
        "of it with a landing via is a short polygon (Fig. 5c); the "
        "report's attributed #SP entries must match the recomputed "
        "sites exactly — an unreported or phantom site means the "
        "evaluator and the geometry disagree."
    ),
    fix_hint=(
        "compare the net's trimmed geometry against its reported "
        "short-polygon attributions; check the epsilon window and the "
        "landing-via condition"
    ),
    routing_only=False,
)

AUD004 = Rule(
    code="AUD004",
    title="routed net is not electrically connected",
    rationale=(
        "A net marked routed must connect all of its pins through one "
        "component of wire edges; a stranded pin means the routability "
        "column overstates the solution."
    ),
    fix_hint=(
        "check the router's connectivity bookkeeping and the trimming "
        "pass (trimming must never cut a pin from the tree)"
    ),
    routing_only=False,
)

AUD005 = Rule(
    code="AUD005",
    title="inter-net short (two nets share a grid node)",
    rationale=(
        "Each grid node may carry the metal of at most one net; a "
        "shared node is an electrical short that no report column "
        "counts, so only an independent check can catch it."
    ),
    fix_hint=(
        "check the occupancy grid's owner bookkeeping, especially "
        "rip-up releases and speculative overlay merges"
    ),
    routing_only=False,
)

AUD006 = Rule(
    code="AUD006",
    title="wire against the layer's preferred direction",
    rationale=(
        "Horizontal layers route in x and vertical layers in y "
        "(Section II); a wrong-way unit edge, a via spanning "
        "non-adjacent layers, or an off-die node means the solution "
        "left the legal grid."
    ),
    fix_hint=(
        "check DetailedGrid.neighbors (planar moves must follow the "
        "preferred direction) and the trunk materialization"
    ),
    routing_only=False,
)

AUD007 = Rule(
    code="AUD007",
    title="global-routing capacity accounting drift",
    rationale=(
        "The global graph's edge and vertex (line-end) demand arrays "
        "drive every congestion decision; if they differ from the "
        "demand recomputed from the final routes, place/unplace "
        "bookkeeping has leaked and negotiation was steered by stale "
        "numbers."
    ),
    fix_hint=(
        "check that every _place_path has a matching _unplace_path "
        "(rip-up, failed subnets, speculative merges)"
    ),
    routing_only=False,
)

#: All solution-audit rules, keyed by code, in catalog order.
AUDIT_RULES: dict[str, Rule] = {
    r.code: r
    for r in (AUD001, AUD002, AUD003, AUD004, AUD005, AUD006, AUD007)
}


CONC001 = Rule(
    code="CONC001",
    title="base-state write from a speculative context bypasses the "
    "overlay/delta APIs",
    rationale=(
        "A worker routing a speculative net must buffer every shared-"
        "state write in its overlay (GridOverlay / GraphSnapshot / "
        "OverlayDelta) so the merge loop can replay it in canonical "
        "order; a direct write to the live graph or grid is visible to "
        "batch-mates mid-flight and breaks the serial-equivalence "
        "proof — the exact shape of the PR-8 tombstone bug."
    ),
    fix_hint=(
        "route the write through the overlay (occupy/release on the "
        "speculative view, not the base), or declare the channel in the "
        "@context(..., writes=(...)) marker if the write is a sanctioned "
        "sync step (journal replay, shared-state import)"
    ),
    routing_only=False,
)

CONC002 = Rule(
    code="CONC002",
    title="base-state read bypasses the snapshot in a speculative context",
    rationale=(
        "A speculative search must read demand/ownership through its "
        "snapshot or overlay — the declared read footprint the merge "
        "loop validates.  A read that reaches around to the live "
        "structure observes batch-mate writes the serial router never "
        "saw; the runtime sanitizer catches this dynamically, this "
        "rule catches it before any workload runs."
    ),
    fix_hint=(
        "read through the worker's snapshot/overlay view; if the read "
        "is a sanctioned sync step, declare it in the "
        "@context(..., reads=(...)) marker"
    ),
    routing_only=False,
)

CONC003 = Rule(
    code="CONC003",
    title="closure or non-module-level callable crosses the process-pool "
    "boundary",
    rationale=(
        "ProcessBatchExecutor ships tasks to worker processes by "
        "pickling references: a lambda, a nested function, or a bound "
        "method capturing live routing state either fails to pickle or "
        "silently ships a stale copy of the state it closed over — the "
        "worker then routes against a frozen world."
    ),
    fix_hint=(
        "register a module-level task function via configure(task=...) "
        "and ship picklable payloads (net names); state flows through "
        "the SharedStateChannel, never through captures"
    ),
    routing_only=False,
)

CONC004 = Rule(
    code="CONC004",
    title="declared read/write footprint narrower than the statically "
    "reachable effects",
    rationale=(
        "A @context marker with an explicit reads=/writes= footprint is "
        "a contract the merge loop and the sanitizer trust; if the "
        "function (or anything it calls) can statically reach a shared "
        "structure outside that footprint, the contract under-reports "
        "and every downstream equivalence argument is unsound."
    ),
    fix_hint=(
        "widen the marker's reads=/writes= tuples to cover the "
        "reachable shared structures, or restructure the callee so the "
        "undeclared access goes through an overlay"
    ),
    routing_only=False,
)

CONC005 = Rule(
    code="CONC005",
    title="merge/fan-in code consumes speculative results in "
    "non-submission order",
    rationale=(
        "Serial equivalence is proven net by net in canonical "
        "(submission) order; fan-in that iterates a set of results, "
        "pops whichever future completes first (as_completed), or "
        "otherwise commits by availability re-orders the merge — the "
        "exact shape of the PR-8 batch-backfill bug."
    ),
    fix_hint=(
        "iterate results in submission order (zip(batch, pool.run(...)) "
        "or an explicit index sort); never as_completed() or set "
        "iteration in a merge loop"
    ),
    routing_only=False,
)

CONC006 = Rule(
    code="CONC006",
    title="shared_memory segment created without close/unlink on all paths",
    rationale=(
        "A shared-memory segment created and then orphaned by an "
        "exception path outlives the process and leaks kernel "
        "resources on every crashed run; creation must be paired with "
        "close/unlink on success and failure paths alike (the "
        "active_segments() ledger asserts this dynamically, this rule "
        "statically)."
    ),
    fix_hint=(
        "wrap the create in try/except (or try/finally) that calls "
        "close()/unlink(), return the segment to a caller that does, "
        "or store it on self for an owner whose teardown unlinks"
    ),
    routing_only=False,
)

#: All concurrency-effect rules, keyed by code, in catalog order.
CONC_RULES: dict[str, Rule] = {
    r.code: r
    for r in (CONC001, CONC002, CONC003, CONC004, CONC005, CONC006)
}

PAR001 = Rule(
    code="PAR001",
    title="counter bumped in one backend of a pair only",
    rationale=(
        "Paired backends must reproduce the committed trace baselines "
        "byte for byte — the counters ARE the quality metrics (#VV, "
        "stitch evaluations, expansion totals) the paper reports.  A "
        "counter one member bumps and the other never mentions "
        "guarantees a diff on the first workload that reaches it, "
        "found at lint time instead of by the differential suite."
    ),
    fix_hint=(
        "bump the counter in both backends (or hoist it into the "
        "shared caller so neither backend owns it); if the divergence "
        "is genuinely backend-local bookkeeping, give it a strippable "
        "prefix (perf_/parallel_) or suppress with "
        "# repro: allow-PAR001 <why>"
    ),
    routing_only=False,
)

PAR002 = Rule(
    code="PAR002",
    title="trace span/gauge/progress event emitted in one backend only",
    rationale=(
        "Spans, gauges, and progress events form the observable shape "
        "of a run; trace diffing, the watch monitor, and the committed "
        "BENCH baselines all assume that shape is backend-invariant. "
        "A span or gauge only one pair member emits makes traces "
        "structurally incomparable across backends."
    ),
    fix_hint=(
        "emit the event in both backends or move it to the shared "
        "orchestration layer above the pair; suppress with "
        "# repro: allow-PAR002 <why> if the event is intentionally "
        "backend-specific"
    ),
    routing_only=False,
)

PAR003 = Rule(
    code="PAR003",
    title="RouterConfig field consumed by one backend of a pair only",
    rationale=(
        "A config knob only one backend reads is a semantic fork: the "
        "same RouterConfig routes differently depending on which "
        "member runs, and no differential circuit that leaves the "
        "knob at its default will ever notice.  Every field a pair "
        "member consults must be consulted (or provably irrelevant) "
        "in its twin."
    ),
    fix_hint=(
        "thread the config field through both implementations, or "
        "resolve it in the shared caller and pass the resolved value "
        "down; suppress with # repro: allow-PAR003 <why> when the "
        "field selects between the backends themselves"
    ),
    routing_only=False,
)

PAR004 = Rule(
    code="PAR004",
    title="divergent exception or shared-state op surface between "
    "paired backends",
    rationale=(
        "Callers of a paired contract handle the reference "
        "implementation's failure modes and rely on both members "
        "driving the same overlay/journal/channel vocabulary; an "
        "exception type or shared-state operation only one member "
        "uses turns an equivalent-but-faster path into one with new "
        "crash modes or a different mutation footprint."
    ),
    fix_hint=(
        "raise the same exception types and apply the same "
        "overlay/delta operations from both members (wrap "
        "backend-internal errors at the boundary); suppress with "
        "# repro: allow-PAR004 <why> for genuinely "
        "backend-impossible conditions"
    ),
    routing_only=False,
)

PAR005 = Rule(
    code="PAR005",
    title="counter/gauge name missing from the observe schema registry",
    rationale=(
        "repro.observe.schema is the single source of truth for every "
        "observability name — the regression gate's strip lists, the "
        "perf-history columns, and backend-coverage checks all derive "
        "from it.  An unregistered name is invisible to all of them: "
        "it cannot be stripped, tracked, or parity-checked."
    ),
    fix_hint=(
        "register the name in repro/observe/schema.py with its owner "
        "stage, backend coverage, and category (or fix the typo — "
        "unregistered names are usually misspellings of registered "
        "ones)"
    ),
    routing_only=False,
)

PAR006 = Rule(
    code="PAR006",
    title="paired callables with drifting signatures or defaults",
    rationale=(
        "Backend pairs are dispatched by a shared caller that builds "
        "one argument list; members whose parameter names, order, or "
        "defaults drift can only be called through backend-specific "
        "glue, and a default that differs between members silently "
        "changes behavior when the caller omits the argument."
    ),
    fix_hint=(
        "align parameter names, order, and default values across the "
        "pair (the self/receiver parameter is exempt); suppress with "
        "# repro: allow-PAR006 <why> where the extra parameter is the "
        "backend's own state handle"
    ),
    routing_only=False,
)

#: All cross-backend parity rules, keyed by code, in catalog order.
PAR_RULES: dict[str, Rule] = {
    r.code: r
    for r in (PAR001, PAR002, PAR003, PAR004, PAR005, PAR006)
}


def rule_catalog() -> dict[str, Rule]:
    """Every known rule across all catalogs, keyed by code.

    The merged lookup table behind
    :func:`~repro.analysis.findings.fix_hint_for` — rule codes are
    globally unique across the DET/AUD/CONC/PAR families.
    """
    return {**RULES, **AUDIT_RULES, **CONC_RULES, **PAR_RULES}
