"""Speculation-footprint sanitizer (dynamic overlay-protocol checks).

The merge loops of the parallel engine prove serial equivalence from
two declared footprints: a speculative global-route net declares the
A* windows it searched (all demand reads are bounded by them), and a
speculative detailed-route net declares the exact ownership node sets
it read and wrote (captured by its overlay).  Nothing at runtime
normally verifies those declarations — a future search that peeks
outside its window, or a code path that reaches around the overlay to
the live grid, would silently invalidate the equivalence proof.

This module is the TSan-style backstop: drop-in instrumented variants
of :class:`~repro.globalroute.overlay.GraphSnapshot` and
:class:`~repro.detailed.overlay.GridOverlay` that audit every actual
shared-state access during speculative execution and **fail loudly**
(:class:`SanitizerViolation`) on any access outside the declared
footprint.  Enabled with ``RouterConfig(sanitize=True)`` or the CLI
``--sanitize`` flag; clean runs surface ``sanitize_*`` trace counters
so the observability layer reports the coverage.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Optional

import numpy as np

from ..detailed.grid import DetailedGrid, Node
from ..detailed.overlay import GridOverlay, _OwnerOverlay
from ..globalroute.graph import GlobalGraph
from ..globalroute.overlay import GraphSnapshot, Rect


class SanitizerViolation(RuntimeError):
    """An undeclared shared-state access during speculative routing.

    Raised at the exact offending access (writes to frozen shared
    state, reads bypassing the overlay) or at post-run verification
    (reads outside the declared windows), with enough context to find
    the offending code path.
    """


# ======================================================================
# Global routing: audited demand arrays + window verification
# ======================================================================
class _AuditedArray:
    """Element-access proxy around one snapshot numpy array.

    Cell reads and writes are recorded as ``(kind, i, j)`` triples;
    writes to *shared* arrays (capacities, histories — frozen while a
    batch is in flight) raise immediately.  Only scalar ``[i, j]``
    access is audited because it is the only pattern the routing paths
    use on a snapshot; anything else fails loudly rather than slipping
    through unchecked.
    """

    __slots__ = ("_array", "_kind", "_log", "_shared")

    def __init__(
        self,
        array: np.ndarray,
        kind: str,
        log: set[tuple[str, int, int]],
        shared: bool,
    ) -> None:
        self._array = array
        self._kind = kind
        self._log = log
        self._shared = shared

    def _record(self, index: object) -> tuple[int, int]:
        if (
            isinstance(index, tuple)
            and len(index) == 2
            and all(isinstance(part, (int, np.integer)) for part in index)
        ):
            i, j = int(index[0]), int(index[1])
            self._log.add((self._kind, i, j))
            return i, j
        raise SanitizerViolation(
            f"unauditable access pattern {index!r} on snapshot array "
            f"{self._kind!r}: speculative code must use scalar [i, j] "
            "indexing"
        )

    def __getitem__(self, index: object) -> np.generic:
        i, j = self._record(index)
        return self._array[i, j]

    def __setitem__(self, index: object, value: object) -> None:
        i, j = self._record(index)
        if self._shared:
            raise SanitizerViolation(
                f"write to shared {self._kind!r} array at ({i}, {j}) "
                "during speculation: capacities and histories are frozen "
                "while a batch is in flight"
            )
        self._array[i, j] = value

    # Shape/dtype introspection passes through to the real array.
    def __getattr__(self, name: str) -> object:
        return getattr(self._array, name)


class SanitizedGraphSnapshot(GraphSnapshot):
    """A :class:`GraphSnapshot` that audits every cell access.

    Demand arrays (the state the windows declaration is about) log
    reads and writes; capacity and history arrays (shared, frozen
    between batches) log reads and reject writes.  After the net is
    routed, :meth:`verify` checks every demand access fell inside the
    declared A* windows.
    """

    def __init__(self, base: GlobalGraph) -> None:
        super().__init__(base)
        self.demand_accesses: set[tuple[str, int, int]] = set()
        self.shared_accesses: set[tuple[str, int, int]] = set()
        self.h_demand = _AuditedArray(
            self.h_demand, "h", self.demand_accesses, shared=False
        )
        self.v_demand = _AuditedArray(
            self.v_demand, "v", self.demand_accesses, shared=False
        )
        self.vertex_demand = _AuditedArray(
            self.vertex_demand, "vertex", self.demand_accesses, shared=False
        )
        self.h_capacity = _AuditedArray(
            self.h_capacity, "h", self.shared_accesses, shared=True
        )
        self.v_capacity = _AuditedArray(
            self.v_capacity, "v", self.shared_accesses, shared=True
        )
        self.vertex_capacity = _AuditedArray(
            self.vertex_capacity, "vertex", self.shared_accesses, shared=True
        )
        self.h_history = _AuditedArray(
            self.h_history, "h", self.shared_accesses, shared=True
        )
        self.v_history = _AuditedArray(
            self.v_history, "v", self.shared_accesses, shared=True
        )
        self.vertex_history = _AuditedArray(
            self.vertex_history, "vertex", self.shared_accesses, shared=True
        )

    @staticmethod
    def _tiles_of(access: tuple[str, int, int]) -> Iterator[tuple[int, int]]:
        """Tiles whose state one audited cell access observes."""
        kind, i, j = access
        yield (i, j)
        if kind == "h":
            yield (i + 1, j)
        elif kind == "v":
            yield (i, j + 1)

    def verify(
        self,
        windows: Iterable[Rect],
        stats: Optional[dict[str, float]] = None,
    ) -> None:
        """Check every demand access lies inside a declared window.

        Args:
            windows: the net's declared read footprint (the A* windows
                the router recorded *before* each search).
            stats: counter sink; ``sanitize_cells_checked`` and
                ``sanitize_nets_checked`` are accumulated into it.

        Raises:
            SanitizerViolation: a demand cell outside every declared
                window was read or written.
        """
        rects = list(windows)

        def covered(tile: tuple[int, int]) -> bool:
            return any(
                lo_x <= tile[0] <= hi_x and lo_y <= tile[1] <= hi_y
                for lo_x, lo_y, hi_x, hi_y in rects
            )

        for access in sorted(self.demand_accesses):
            for tile in self._tiles_of(access):
                if not covered(tile):
                    kind, i, j = access
                    raise SanitizerViolation(
                        f"undeclared demand access: {kind!r} cell "
                        f"({i}, {j}) touches tile {tile} outside all "
                        f"{len(rects)} declared A* window(s) — the "
                        "merge loop's conflict check would not see "
                        "this read"
                    )
        if stats is not None:
            stats["sanitize_cells_checked"] = stats.get(
                "sanitize_cells_checked", 0
            ) + len(self.demand_accesses)
            stats["sanitize_nets_checked"] = (
                stats.get("sanitize_nets_checked", 0) + 1
            )


# ======================================================================
# Detailed routing: guarded base ownership + frozen pin set
# ======================================================================
class _GuardedBaseDict:
    """The overlay's view of the live ownership dict, read-audited.

    Legitimate reads arrive through :meth:`_OwnerOverlay.get`, which
    records the node in the declared read set *before* consulting the
    base — so any base read of an undeclared node is, by construction,
    a code path bypassing the overlay.  All mutation is rejected: the
    live grid is frozen while a batch is in flight.
    """

    __slots__ = ("_base", "_declared_reads", "reads_checked")

    def __init__(
        self, base: dict[Node, str], declared_reads: set[Node]
    ) -> None:
        self._base = base
        self._declared_reads = declared_reads
        self.reads_checked = 0

    def _check(self, node: Node) -> None:
        if node not in self._declared_reads:
            raise SanitizerViolation(
                f"base ownership read of {node} bypassed the overlay: "
                "the node is missing from the declared read footprint"
            )
        self.reads_checked += 1

    def get(
        self, node: Node, default: Optional[str] = None
    ) -> Optional[str]:
        self._check(node)
        return self._base.get(node, default)

    def __getitem__(self, node: Node) -> str:
        self._check(node)
        return self._base[node]

    def __contains__(self, node: Node) -> bool:
        self._check(node)
        return node in self._base

    def _reject_write(self, *_args: object) -> None:
        raise SanitizerViolation(
            "write to the live ownership dict during speculation: all "
            "writes must go through the overlay delta"
        )

    __setitem__ = _reject_write
    __delitem__ = _reject_write
    pop = _reject_write
    popitem = _reject_write
    clear = _reject_write
    update = _reject_write
    setdefault = _reject_write


class _FrozenPins:
    """The shared pin set, readable but immutable during speculation."""

    __slots__ = ("_pins", "reads_checked")

    def __init__(self, pins: set[Node]) -> None:
        self._pins = pins
        self.reads_checked = 0

    def __contains__(self, node: Node) -> bool:
        self.reads_checked += 1
        return node in self._pins

    def __iter__(self) -> Iterator[Node]:
        return iter(self._pins)

    def __len__(self) -> int:
        return len(self._pins)

    def _reject_write(self, *_args: object) -> None:
        raise SanitizerViolation(
            "pin-set mutation during speculation: pins are registered "
            "at grid build time and frozen while batches are in flight"
        )

    add = _reject_write
    discard = _reject_write
    remove = _reject_write
    clear = _reject_write
    update = _reject_write


class _SanitizedOwnerOverlay(_OwnerOverlay):
    """An :class:`_OwnerOverlay` whose base pointer is guarded."""

    __slots__ = ("guard",)

    def __init__(self, base: dict[Node, str]) -> None:
        super().__init__(base)
        self.guard = _GuardedBaseDict(base, self.reads)
        self._base = self.guard


class SanitizedGridOverlay(GridOverlay):
    """A :class:`GridOverlay` that audits shared-state access.

    Base-ownership reads must be preceded by footprint recording (the
    overlay records first, so bypass reads fail), the live ownership
    dict and the shared pin set reject writes, and :meth:`verify`
    re-checks the buffered delta against the declared write set.
    """

    def __init__(self, base: DetailedGrid) -> None:
        super().__init__(base)
        self._owner = _SanitizedOwnerOverlay(base._owner)
        self._pins = _FrozenPins(base._pins)

    def verify(self, stats: Optional[dict[str, float]] = None) -> None:
        """Check the buffered delta matches the declared footprint.

        Args:
            stats: counter sink; ``sanitize_nodes_checked`` and
                ``sanitize_nets_checked`` are accumulated into it.

        Raises:
            SanitizerViolation: a buffered write is missing from the
                declared write set.
        """
        owner = self._owner
        undeclared = set(owner.local) - owner.writes
        if undeclared:
            node = sorted(undeclared)[0]
            raise SanitizerViolation(
                f"buffered ownership write to {node} is missing from "
                f"the declared write footprint ({len(undeclared)} "
                "undeclared node(s) total)"
            )
        if stats is not None:
            checked = (
                owner.guard.reads_checked
                + self._pins.reads_checked
                + len(owner.writes)
            )
            stats["sanitize_nodes_checked"] = (
                stats.get("sanitize_nodes_checked", 0) + checked
            )
            stats["sanitize_nets_checked"] = (
                stats.get("sanitize_nets_checked", 0) + 1
            )
