"""Static cross-backend parity analyzer (the PAR rule catalog).

Every fast path in this codebase shadows a reference implementation:
the array engine shadows the object engine per stage, the process
executor shadows the thread executor, the sanitized wrappers shadow
the plain ones.  Their equivalence is proven dynamically by the
differential suites — but only over the circuits those suites route.
This module is the static complement: it extracts a per-function
*effect signature* — counters incremented, trace spans / gauges /
progress events emitted, :class:`~repro.config.RouterConfig` fields
read, overlay/delta operations applied, exceptions raised — from each
member of a declared backend pair and diffs the signatures, so drift
on a code path no gate circuit exercises still fails at lint time.

Pairs are declared with the inert
``@repro.analysis.paired("name", backend="...")`` marker
(:mod:`~repro.analysis.pairing`); the analyzer reads the decorator
syntactically, so unimported code is covered too.  Signatures are
*transitive*: effects of (unpaired) callees fold into the caller's
signature through the shared :class:`~repro.analysis.callgraph`
machinery, with paired callees acting as contract boundaries — the
shared-preamble pattern, where one member delegates bookkeeping to a
helper the other inlines, diffs clean.

The PAR005 rule is pair-independent: every counter/gauge/span/progress
name emitted anywhere in the analyzed files must be declared in the
:mod:`repro.observe.schema` registry, the single source of truth the
regression gate and analytics derive their name lists from.

Findings mirror the determinism linter's: ``# repro: allow-PARnnn``
suppressions, a committed fingerprint baseline
(``parity-baseline.json``), and ``repro parity`` as the CLI front end.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Iterable, Sequence
from typing import Optional, Union

from ..config import RouterConfig
from ..observe import schema
from .callgraph import (
    CALL_EFFECTS,
    OVERLAY_FACTORY_METHODS,
    CallGraph,
    FunctionInfo,
    tokens,
)
from .findings import (
    DeadSuppression,
    Finding,
    dead_suppression_lines,
    finding_lines,
    suppression_map,
)
from .findings import resolve_rule_filter as _resolve_rule_filter
from .lint import iter_python_files
from .rules import PAR_RULES

#: Receiver-name tokens marking a call as a trace emission
#: (``tracer.count(...)``, ``span.gauge(...)``, ``stage.count(...)``).
_EMIT_RECEIVER_TOKENS = frozenset({"tracer", "span", "stage"})

#: Receiver-name tokens marking a subscript store as a counter bump
#: (``stats["x"] += 1``, ``self.counters["x"] = n``).
_COUNTER_STORE_TOKENS = frozenset({"stats", "counters"})

#: Receiver-name tokens marking an attribute load as a config read.
_CONFIG_RECEIVER_TOKENS = frozenset({"config", "cfg"})

#: The RouterConfig field vocabulary PAR003 is judged over.
CONFIG_FIELDS = frozenset(
    field.name for field in dataclasses.fields(RouterConfig)
)

#: Shared-state operation vocabulary (PAR004's op surface).
_OP_METHODS = frozenset(CALL_EFFECTS) | OVERLAY_FACTORY_METHODS


@dataclasses.dataclass(frozen=True)
class Site:
    """Where an effect was observed (for findings and suppressions).

    Carries its own ``path``: transitive signature resolution folds
    callee effects into the caller, so a pair member's finding can
    anchor to a line in a *different* file — the shared helper that
    actually emits.  Suppression comments go at the emit site.
    """

    path: str
    line: int
    col: int
    text: str


@dataclasses.dataclass
class EffectSignature:
    """The externally observable surface of one function.

    Each mapping goes from an effect's identity to the *first* site
    that produced it — the location a divergence finding lands on.
    ``events`` keys are ``(kind, name)`` with kind one of ``span`` /
    ``gauge`` / ``progress``.
    """

    counters: dict[str, Site] = dataclasses.field(default_factory=dict)
    #: Counter names observed only as ``stats["x"] = ...`` stores.  A
    #: store into a scratch dict does not reveal the name's eventual
    #: trace kind (assign accumulates ``conflict_weight`` this way and
    #: later emits it as a gauge), so PAR005 accepts either kind for
    #: these.
    store_counters: set[str] = dataclasses.field(default_factory=set)
    events: dict[tuple[str, str], Site] = dataclasses.field(
        default_factory=dict
    )
    config_reads: dict[str, Site] = dataclasses.field(
        default_factory=dict
    )
    raises: dict[str, Site] = dataclasses.field(default_factory=dict)
    ops: dict[str, Site] = dataclasses.field(default_factory=dict)

    def merge(self, other: "EffectSignature") -> None:
        """Fold ``other`` in, keeping existing (earlier) sites."""
        for mine, theirs in (
            (self.counters, other.counters),
            (self.events, other.events),
            (self.config_reads, other.config_reads),
            (self.raises, other.raises),
            (self.ops, other.ops),
        ):
            for key, site in theirs.items():
                mine.setdefault(key, site)  # type: ignore[arg-type]
        self.store_counters |= other.store_counters


@dataclasses.dataclass
class FunctionSurface:
    """Parity-specific scan of one function definition."""

    signature: EffectSignature
    #: ``(param, default-or-"")`` pairs, receiver excluded.
    params: tuple[tuple[str, str], ...]
    def_site: Site


def _receiver_name(node: ast.expr) -> Optional[str]:
    """The trailing identifier of a receiver expression, if simple."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _literal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _SurfaceScanner(ast.NodeVisitor):
    """Extract one function's direct :class:`EffectSignature`."""

    def __init__(self, path: str, lines: Sequence[str]) -> None:
        self.path = path
        self.lines = lines
        self.sig = EffectSignature()

    def _site(self, node: ast.AST) -> Site:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1].strip()
        return Site(path=self.path, line=line, col=col, text=text)

    def scan(self, body: Sequence[ast.stmt]) -> EffectSignature:
        for statement in body:
            self.visit(statement)
        return self.sig

    # Nested defs / classes are their own table entries.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    # -- trace emissions ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _receiver_name(func.value)
            emitting = receiver is not None and bool(
                tokens(receiver) & _EMIT_RECEIVER_TOKENS
            )
            name = _literal(node.args[0]) if node.args else None
            if emitting and name is not None:
                if func.attr == "count":
                    self.sig.counters.setdefault(name, self._site(node))
                elif func.attr == "gauge":
                    self.sig.events.setdefault(
                        ("gauge", name), self._site(node)
                    )
                elif func.attr == "progress":
                    self.sig.events.setdefault(
                        ("progress", name), self._site(node)
                    )
                elif func.attr == "span":
                    self.sig.events.setdefault(
                        ("span", name), self._site(node)
                    )
                    # Span keyword arguments become gauges on the span.
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            self.sig.events.setdefault(
                                ("gauge", keyword.arg), self._site(node)
                            )
            if func.attr in _OP_METHODS:
                self.sig.ops.setdefault(func.attr, self._site(node))
        self.generic_visit(node)

    # -- counter stores (``stats["x"] = ...``) ------------------------
    def _check_counter_store(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Subscript):
            return
        receiver = _receiver_name(target.value)
        if receiver is None or not (
            tokens(receiver) & _COUNTER_STORE_TOKENS
        ):
            return
        name = _literal(target.slice)
        if name is not None:
            self.sig.counters.setdefault(name, self._site(target))
            self.sig.store_counters.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_counter_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_counter_store(node.target)
        self.generic_visit(node)

    # -- config reads --------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and node.attr in CONFIG_FIELDS:
            receiver = _receiver_name(node.value)
            if receiver is not None and (
                tokens(receiver) & _CONFIG_RECEIVER_TOKENS
            ):
                self.sig.config_reads.setdefault(
                    node.attr, self._site(node)
                )
        self.generic_visit(node)

    # -- raises --------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name: Optional[str] = None
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is not None:
            self.sig.raises.setdefault(name, self._site(node))
        self.generic_visit(node)


def _param_signature(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    *,
    in_class: bool,
) -> tuple[tuple[str, str], ...]:
    """``(name, default)`` pairs, aligned right-to-left; receiver cut."""
    args = list(node.args.posonlyargs) + list(node.args.args)
    defaults: list[str] = [""] * (len(args) - len(node.args.defaults))
    defaults += [ast.unparse(d) for d in node.args.defaults]
    pairs = list(zip((a.arg for a in args), defaults))
    for argument, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
        pairs.append(
            (
                "*" + argument.arg,
                "" if default is None else ast.unparse(default),
            )
        )
    if in_class and pairs and pairs[0][0] in ("self", "cls"):
        pairs = pairs[1:]
    return tuple(pairs)


class _ParityAnalyzer(CallGraph):
    """The PAR rule judgment over one shared call graph.

    On top of the inherited function table this walks each file a
    second time with :class:`_SurfaceScanner`, keyed by the same
    ``(path, qualname)`` as the table, then resolves signatures
    transitively along the table's call edges.
    """

    _IN_PROGRESS = object()

    def __init__(self, files: Sequence[tuple[str, str]]) -> None:
        super().__init__(files)
        self.surfaces: dict[tuple[str, str], FunctionSurface] = {}
        self._sig_memo: dict[tuple[str, str], object] = {}
        for path, source in files:
            tree = ast.parse(source, filename=path)
            self._scan_surfaces(
                tree.body,
                path=path,
                lines=source.splitlines(),
                prefix="",
                in_class=False,
            )

    def _scan_surfaces(
        self,
        body: Sequence[ast.stmt],
        *,
        path: str,
        lines: Sequence[str],
        prefix: str,
        in_class: bool,
    ) -> None:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qualname = f"{prefix}{statement.name}"
                scanner = _SurfaceScanner(path, lines)
                line = statement.lineno
                text = ""
                if 1 <= line <= len(lines):
                    text = lines[line - 1].strip()
                self.surfaces[(path, qualname)] = FunctionSurface(
                    signature=scanner.scan(statement.body),
                    params=_param_signature(statement, in_class=in_class),
                    def_site=Site(
                        path=path,
                        line=line,
                        col=statement.col_offset,
                        text=text,
                    ),
                )
                self._scan_surfaces(
                    statement.body,
                    path=path,
                    lines=lines,
                    prefix=f"{qualname}.",
                    in_class=False,
                )
            elif isinstance(statement, ast.ClassDef):
                self._scan_surfaces(
                    statement.body,
                    path=path,
                    lines=lines,
                    prefix=f"{prefix}{statement.name}.",
                    in_class=True,
                )

    # -- transitive signatures ----------------------------------------
    def resolved_signature(self, info: FunctionInfo) -> EffectSignature:
        """Memoized transitive effect signature of one function."""
        key = (info.path, info.qualname)
        memo = self._sig_memo.get(key)
        if memo is self._IN_PROGRESS:
            return EffectSignature()
        if isinstance(memo, EffectSignature):
            return memo
        self._sig_memo[key] = self._IN_PROGRESS
        out = EffectSignature()
        surface = self.surfaces.get(key)
        if surface is not None:
            out.merge(surface.signature)
        for call in info.calls:
            for callee in self.resolve_name(
                call.name, info, is_method=call.is_method
            ):
                if callee is info or callee.pair is not None:
                    # A paired callee is a contract boundary: its own
                    # surface is judged against its twin, not folded
                    # into the caller.
                    continue
                out.merge(self.resolved_signature(callee))
        self._sig_memo[key] = out
        return out

    # -- findings ------------------------------------------------------
    def _finding(self, rule: str, detail: str, site: Site) -> Finding:
        return Finding(
            path=site.path,
            line=site.line,
            col=site.col,
            rule=rule,
            message=f"{PAR_RULES[rule].title}: {detail}",
            text=site.text,
        )

    @staticmethod
    def _tag(info: FunctionInfo) -> str:
        return info.pair_backend or "?"

    def _pair_members(self) -> dict[str, list[FunctionInfo]]:
        pairs: dict[str, list[FunctionInfo]] = {}
        for info in self.table:
            if info.pair is not None:
                pairs.setdefault(info.pair, []).append(info)
        for members in pairs.values():
            members.sort(key=lambda m: (m.path, m.qualname))
        return pairs

    def _diff_dimension(
        self,
        pair: str,
        members: list[FunctionInfo],
        signatures: dict[int, EffectSignature],
        rule: str,
        dimension: str,
        describe: str,
    ) -> list[Finding]:
        findings: list[Finding] = []
        keys: set = set()
        for sig in signatures.values():
            keys |= set(getattr(sig, dimension))
        for key in sorted(keys, key=repr):
            have = [
                member
                for member in members
                if key in getattr(signatures[id(member)], dimension)
            ]
            if len(have) == len(members):
                continue
            missing = sorted(
                self._tag(member)
                for member in members
                if member not in have
            )
            if isinstance(key, str):
                label = repr(key)
            else:
                label = f"{key[0]} {key[1]!r}"
            for member in have:
                site = getattr(signatures[id(member)], dimension)[key]
                findings.append(
                    self._finding(
                        rule,
                        f"pair {pair!r}: {member.qualname} "
                        f"({self._tag(member)}) {describe} {label} "
                        f"but the {', '.join(missing)} backend(s) "
                        f"never do",
                        site,
                    )
                )
        return findings

    def _check_pair(
        self, pair: str, members: list[FunctionInfo]
    ) -> list[Finding]:
        findings: list[Finding] = []
        seen_tags: dict[str, FunctionInfo] = {}
        for member in members:
            tag = self._tag(member)
            if tag in seen_tags:
                surface = self.surfaces.get((member.path, member.qualname))
                if surface is not None:
                    findings.append(
                        self._finding(
                            "PAR006",
                            f"pair {pair!r}: backend tag {tag!r} claimed "
                            f"by both {seen_tags[tag].qualname} and "
                            f"{member.qualname}",
                            surface.def_site,
                        )
                    )
            else:
                seen_tags[tag] = member
        if len(members) < 2:
            return findings
        signatures = {
            id(member): self.resolved_signature(member)
            for member in members
        }
        findings.extend(
            self._diff_dimension(
                pair, members, signatures,
                "PAR001", "counters", "bumps counter",
            )
        )
        findings.extend(
            self._diff_dimension(
                pair, members, signatures,
                "PAR002", "events", "emits",
            )
        )
        findings.extend(
            self._diff_dimension(
                pair, members, signatures,
                "PAR003", "config_reads", "reads config field",
            )
        )
        findings.extend(
            self._diff_dimension(
                pair, members, signatures,
                "PAR004", "raises", "raises",
            )
        )
        findings.extend(
            self._diff_dimension(
                pair, members, signatures,
                "PAR004", "ops", "applies shared-state op",
            )
        )
        findings.extend(self._check_signatures(pair, members))
        return findings

    def _check_signatures(
        self, pair: str, members: list[FunctionInfo]
    ) -> list[Finding]:
        surfaces = {
            id(member): self.surfaces.get((member.path, member.qualname))
            for member in members
        }
        known = [m for m in members if surfaces[id(m)] is not None]
        if len(known) < 2:
            return []
        reference = known[0]
        for preferred in ("object", "serial"):
            for member in known:
                if self._tag(member) == preferred:
                    reference = member
                    break
            else:
                continue
            break

        def fmt(params: tuple[tuple[str, str], ...]) -> str:
            return "(" + ", ".join(
                f"{name}={default}" if default else name
                for name, default in params
            ) + ")"

        findings: list[Finding] = []
        ref_surface = surfaces[id(reference)]
        assert ref_surface is not None
        for member in known:
            if member is reference:
                continue
            surface = surfaces[id(member)]
            assert surface is not None
            if surface.params != ref_surface.params:
                findings.append(
                    self._finding(
                        "PAR006",
                        f"pair {pair!r}: {member.qualname} "
                        f"({self._tag(member)}) has signature "
                        f"{fmt(surface.params)} but "
                        f"{reference.qualname} "
                        f"({self._tag(reference)}) has "
                        f"{fmt(ref_surface.params)}",
                        surface.def_site,
                    )
                )
        return findings

    def _check_registry(self) -> list[Finding]:
        """PAR005: every emitted name must be in the schema registry."""
        findings: list[Finding] = []
        for (_path, qualname), surface in self.surfaces.items():
            sig = surface.signature
            checks: list[tuple[str, str, Site]] = [
                ("counter", name, site)
                for name, site in sig.counters.items()
            ]
            checks.extend(
                (kind, name, site)
                for (kind, name), site in sig.events.items()
            )
            for kind, name, site in checks:
                if schema.is_registered(kind, name):
                    continue
                if (
                    kind == "counter"
                    and name in sig.store_counters
                    and schema.is_registered("gauge", name)
                ):
                    continue
                findings.append(
                    self._finding(
                        "PAR005",
                        f"{qualname} emits {kind} {name!r}, which "
                        f"repro.observe.schema does not declare",
                        site,
                    )
                )
        return findings

    def raw_findings(self) -> list[Finding]:
        """Every PAR finding over the analyzed files, pre-suppression."""
        findings: list[Finding] = list(self._check_registry())
        for pair, members in sorted(self._pair_members().items()):
            findings.extend(self._check_pair(pair, members))
        unique: dict[tuple[str, int, int, str, str], Finding] = {}
        for finding in findings:
            key = (
                finding.path,
                finding.line,
                finding.col,
                finding.rule,
                finding.message,
            )
            unique.setdefault(key, finding)
        return sorted(
            unique.values(),
            key=lambda f: (f.path, f.line, f.col, f.rule, f.message),
        )


@dataclasses.dataclass
class ParityReport:
    """Outcome of one parity-analysis run over a set of paths."""

    findings: list[Finding]
    grandfathered: list[Finding]
    suppressed: int
    files: int
    pairs: int
    dead_suppressions: list[DeadSuppression] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no non-grandfathered findings)."""
        return not self.findings


def _apply_suppressions(
    raw: Iterable[Finding], sources: dict[str, str]
) -> tuple[list[Finding], int, list[DeadSuppression]]:
    """Honor ``# repro: allow-PARnnn`` comments; spot dead ones."""
    kept: list[Finding] = []
    suppressed = 0
    allowed = {
        path: suppression_map(source, "PAR")
        for path, source in sources.items()
    }
    lines_by_path = {
        path: source.splitlines() for path, source in sources.items()
    }
    used: dict[tuple[str, int], set[str]] = {}
    for finding in raw:
        codes = allowed.get(finding.path, {}).get(
            finding.line, frozenset()
        )
        if finding.rule in codes:
            suppressed += 1
            used.setdefault((finding.path, finding.line), set()).add(
                finding.rule
            )
        else:
            kept.append(finding)
    dead: list[DeadSuppression] = []
    for path in sorted(allowed):
        lines = lines_by_path[path]
        for lineno, codes in sorted(allowed[path].items()):
            line = lines[lineno - 1] if lineno <= len(lines) else ""
            unused = sorted(codes - used.get((path, lineno), set()))
            if unused:
                dead.append(
                    DeadSuppression(
                        path=path,
                        line=lineno,
                        codes=tuple(unused),
                        text=line.strip(),
                    )
                )
    return kept, suppressed, dead


def resolve_parity_rule_filter(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> frozenset[str]:
    """The active PAR rule codes after ``--select`` / ``--ignore``."""
    return _resolve_rule_filter(select, ignore, known=PAR_RULES)


def analyze_parity_source(source: str, path: str) -> list[Finding]:
    """Analyze one file's source text; suppression comments honored."""
    analyzer = _ParityAnalyzer([(path, source)])
    kept, _, _ = _apply_suppressions(
        analyzer.raw_findings(), {path: source}
    )
    return kept


def analyze_parity_paths(
    paths: Sequence[str],
    baseline_fingerprints: frozenset[tuple[str, str, str]] = frozenset(),
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> ParityReport:
    """Analyze every Python file under ``paths``.

    All files feed one call graph, so a pair whose members live in
    different modules (the common case: ``detailed/search.py`` vs
    ``engine/detailed.py``) diffs correctly.  Baseline fingerprints
    grandfather findings exactly like the linter's; ``select`` /
    ``ignore`` restrict the active rules and raise
    :class:`ValueError` on unknown codes.
    """
    active = resolve_parity_rule_filter(select, ignore)
    files: list[tuple[str, str]] = []
    sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        files.append((str(file_path), source))
        sources[str(file_path)] = source
    analyzer = _ParityAnalyzer(files)
    kept, suppressed, dead = _apply_suppressions(
        analyzer.raw_findings(), sources
    )
    findings: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in kept:
        if finding.rule not in active:
            continue
        if finding.fingerprint in baseline_fingerprints:
            grandfathered.append(finding)
        else:
            findings.append(finding)
    return ParityReport(
        findings=findings,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files=len(files),
        pairs=len(analyzer._pair_members()),
        dead_suppressions=dead,
    )


def render_parity(report: ParityReport) -> str:
    """Human-readable analyzer output, mirroring the linter's."""
    out = finding_lines(report.findings)
    out.extend(dead_suppression_lines(report.dead_suppressions))
    summary = (
        f"{len(report.findings)} finding(s) across {report.pairs} "
        f"pair(s) in {report.files} file(s)"
    )
    if report.grandfathered:
        summary += f", {len(report.grandfathered)} grandfathered"
    if report.dead_suppressions:
        summary += (
            f", {len(report.dead_suppressions)} dead suppression(s)"
        )
    out.append(summary)
    return "\n".join(out)


__all__ = [
    "CONFIG_FIELDS",
    "EffectSignature",
    "FunctionSurface",
    "ParityReport",
    "Site",
    "analyze_parity_paths",
    "analyze_parity_source",
    "render_parity",
    "resolve_parity_rule_filter",
]
