"""Shared interprocedural call-graph and effect-summary machinery.

The static analyzers that reason *across* functions — the
concurrency-effect analyzer (:mod:`~repro.analysis.concurrency`, CONC
rules) and the cross-backend parity analyzer
(:mod:`~repro.analysis.parity`, PAR rules) — share one foundation:

1. every function in the analyzed files goes into a table
   (:class:`FunctionInfo`), keyed by module path and qualified name,
   with its direct shared-state *effects* (reads/writes over the
   :data:`~repro.analysis.context.SHARED_STRUCTURES` vocabulary,
   rooted either at a parameter index or at a concrete receiver
   classification) and its outgoing call edges;
2. ``@repro.analysis.context(...)`` markers seed execution contexts
   and ``@repro.analysis.paired(...)`` markers tag backend-pair
   members; pool boundaries (``pool.run(lambda ...)`` and
   ``configure(task=...)``) seed contexts implicitly;
3. :class:`CallGraph` resolves effects through the call edges:
   parameter-rooted effects substitute the argument's classification
   at each call site, marked callees act as contract boundaries
   contributing their *declared* footprint, and overlay-classified
   receivers are sanctioned and dropped.

The rule catalogs themselves live with their analyzers; this module
only builds the table and answers reachability questions.  It was
extracted verbatim from the concurrency analyzer so both rule families
resolve calls identically — a finding's ``via`` chain means the same
thing in ``repro races`` and ``repro parity`` output.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Iterable, Sequence
from typing import Optional, Union

#: A function parameter index, or a concrete receiver classification.
Root = Union[int, str]

BASE = "base"
OVERLAY = "overlay"
CHANNEL = "channel"
PROCPOOL = "procpool"
UNKNOWN = "unknown"

#: Classes owning live shared state.
BASE_CLASS_NAMES = frozenset(
    {"GlobalGraph", "ArrayGlobalGraph", "DetailedGrid", "ArrayDetailedGrid"}
)

#: Classes implementing the sanctioned speculation surface.
OVERLAY_CLASS_NAMES = frozenset(
    {
        "GraphSnapshot",
        "ArrayGraphSnapshot",
        "SanitizedGraphSnapshot",
        "GridOverlay",
        "ArrayGridOverlay",
        "SanitizedGridOverlay",
        "OverlayDelta",
        "_OwnerOverlay",
        "_IndexedOwnerOverlay",
    }
)

CHANNEL_CLASS_NAMES = frozenset({"SharedStateChannel"})
PROCESS_POOL_CLASS_NAMES = frozenset({"ProcessBatchExecutor"})

#: Factory/attach methods whose *result* is sanctioned speculation
#: state; calling them is never an effect.
OVERLAY_FACTORY_METHODS = frozenset(
    {"snapshot", "speculative_overlay", "from_overlay", "from_payload"}
)

#: Shared-structure effects of the known vocabulary methods.  These
#: are intrinsics: the call records the effect against the receiver's
#: classification and no call edge is added into the method body.
CALL_EFFECTS: dict[str, tuple[tuple[str, str], ...]] = {
    # global-routing graph
    "edge_demand": (("global.demand", "read"),),
    "edge_capacity": (("global.capacity", "read"),),
    "edge_overflow": (("global.demand", "read"),),
    "total_vertex_overflow": (("global.demand", "read"),),
    "max_vertex_overflow": (("global.demand", "read"),),
    "add_edge_demand": (("global.demand", "write"),),
    "add_vertex_demand": (("global.demand", "write"),),
    "refresh_cost_cache": (("engine.cache", "write"),),
    "import_shared_state": (
        ("global.demand", "write"),
        ("global.history", "write"),
        ("engine.cache", "write"),
    ),
    "shared_state_arrays": (
        ("global.demand", "read"),
        ("global.history", "read"),
    ),
    # detailed grid
    "owner": (("grid.owner", "read"),),
    "occupied_by": (("grid.owner", "read"),),
    "is_free_for": (("grid.owner", "read"),),
    "is_pin": (("grid.owner", "read"),),
    "occupy": (("grid.owner", "write"),),
    "force_occupy": (("grid.owner", "write"),),
    "release": (("grid.owner", "write"),),
    "mark_pin": (("grid.owner", "write"),),
    "start_journal": (("grid.journal", "write"),),
    "drain_journal": (("grid.journal", "write"),),
    "stop_journal": (("grid.journal", "write"),),
    # shared-memory channel
    "publish": (("channel", "write"),),
    "sync": (("channel", "read"),),
}

#: ``graph.<attr>`` loads/stores that touch shared arrays directly.
ATTR_STRUCTURES: dict[str, str] = {
    "h_demand": "global.demand",
    "v_demand": "global.demand",
    "vertex_demand": "global.demand",
    "h_history": "global.history",
    "v_history": "global.history",
    "vertex_history": "global.history",
    "h_capacity": "global.capacity",
    "v_capacity": "global.capacity",
    "vertex_capacity": "global.capacity",
    "_owner": "grid.owner",
}

#: Name-hint token sets, checked in this order (overlay wins so
#: ``base_overlay`` classifies as sanctioned).
_OVERLAY_TOKENS = frozenset({"overlay", "snapshot", "snap", "delta", "deltas"})
_BASE_TOKENS = frozenset({"graph", "grid", "base"})
_CHANNEL_TOKENS = frozenset({"channel"})
_POOL_TOKENS = frozenset({"pool", "executor"})

#: Identifier tokens marking a value as unordered fan-in results for
#: the CONC005 heuristic.
_FANIN_TOKENS = frozenset(
    {
        "result",
        "results",
        "done",
        "future",
        "futures",
        "deltas",
        "outcomes",
        "outputs",
        "replies",
        "responses",
    }
)

#: Call-chain attribution depth kept on remapped effects.
VIA_CAP = 4


def tokens(name: str) -> frozenset[str]:
    """Lower-case underscore tokens of an identifier."""
    return frozenset(name.lower().lstrip("_").split("_"))


def hint(name: str) -> Optional[str]:
    """Name-based classification fallback for unannotated values."""
    name_tokens = tokens(name)
    if name_tokens & _OVERLAY_TOKENS:
        return OVERLAY
    if name_tokens & _BASE_TOKENS:
        return BASE
    if name_tokens & _CHANNEL_TOKENS:
        return CHANNEL
    return None


def class_classification(name: Optional[str]) -> Optional[str]:
    """Classification of a known class name, if any."""
    if name is None:
        return None
    if name in BASE_CLASS_NAMES:
        return BASE
    if name in OVERLAY_CLASS_NAMES:
        return OVERLAY
    if name in CHANNEL_CLASS_NAMES:
        return CHANNEL
    if name in PROCESS_POOL_CLASS_NAMES:
        return PROCPOOL
    return None


def annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """The head class name of an annotation expression, if simple."""
    if node is None:
        return None
    expr: ast.expr = node
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        head = expr.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1]
    return None


@dataclasses.dataclass(frozen=True)
class Effect:
    """One shared-structure access, rooted at a parameter or concretely."""

    root: Root
    structure: str
    kind: str  # "read" | "write"
    line: int
    col: int
    text: str
    via: tuple[str, ...] = ()


@dataclasses.dataclass
class CallEdge:
    """One outgoing call edge recorded during the function scan."""

    name: str
    is_method: bool
    receiver_root: Root
    pos_roots: list[Root]
    kw_roots: dict[str, Root]
    line: int
    col: int
    text: str


@dataclasses.dataclass
class LambdaScan:
    """Effects/calls of a lambda passed to a pool ``run()`` boundary."""

    effects: list[Effect]
    calls: list[CallEdge]


@dataclasses.dataclass
class Syntactic:
    """A rule breach detected purely locally (CONC003/5/6 candidates)."""

    rule: str
    detail: str
    line: int
    col: int
    text: str


@dataclasses.dataclass
class FunctionInfo:
    """One table entry: a function plus everything the scan extracted."""

    path: str
    qualname: str
    name: str
    cls: Optional[str]
    params: list[str]
    annotations: dict[int, Optional[str]]
    context: Optional[str] = None
    declared_reads: Optional[tuple[str, ...]] = None
    declared_writes: Optional[tuple[str, ...]] = None
    implicit_context: Optional[str] = None
    pair: Optional[str] = None
    pair_backend: Optional[str] = None
    effects: list[Effect] = dataclasses.field(default_factory=list)
    calls: list[CallEdge] = dataclasses.field(default_factory=list)
    syntactic: list[Syntactic] = dataclasses.field(default_factory=list)
    run_lambdas: list[LambdaScan] = dataclasses.field(default_factory=list)
    configure_tasks: list[str] = dataclasses.field(default_factory=list)

    @property
    def effective_context(self) -> Optional[str]:
        return self.context if self.context is not None else (
            self.implicit_context
        )

    def seed_root(self, index: int) -> str:
        """Classify parameter ``index`` when this function is a seed."""
        if index >= len(self.params):
            return UNKNOWN
        name = self.params[index]
        if index == 0 and self.cls is not None and name in ("self", "cls"):
            return class_classification(self.cls) or UNKNOWN
        by_annotation = class_classification(self.annotations.get(index))
        if by_annotation in (BASE, OVERLAY, CHANNEL):
            return by_annotation
        return hint(name) or UNKNOWN


def parse_context_decorator(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Optional[tuple[str, Optional[tuple[str, ...]], Optional[tuple[str, ...]]]]:
    """Extract ``@context(kind, reads=..., writes=...)`` if present."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "context":
            continue
        if not decorator.args:
            continue
        kind_node = decorator.args[0]
        if not (
            isinstance(kind_node, ast.Constant)
            and isinstance(kind_node.value, str)
        ):
            continue
        footprints: dict[str, Optional[tuple[str, ...]]] = {
            "reads": None,
            "writes": None,
        }
        for keyword in decorator.keywords:
            if keyword.arg not in footprints:
                continue
            value = keyword.value
            if isinstance(value, (ast.Tuple, ast.List)):
                names = tuple(
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
                footprints[keyword.arg] = names
            elif isinstance(value, ast.Constant) and value.value is None:
                footprints[keyword.arg] = None
        return kind_node.value, footprints["reads"], footprints["writes"]
    return None


def parse_paired_decorator(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Optional[tuple[str, str]]:
    """Extract ``@paired(pair, backend=...)`` if present."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "paired":
            continue
        if not decorator.args:
            continue
        pair_node = decorator.args[0]
        if not (
            isinstance(pair_node, ast.Constant)
            and isinstance(pair_node.value, str)
        ):
            continue
        for keyword in decorator.keywords:
            if keyword.arg != "backend":
                continue
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return pair_node.value, value.value
    return None


class FunctionScanner(ast.NodeVisitor):
    """Single-function walk extracting effects, calls, and syntactics.

    Bindings map local names to roots: a parameter index, or a
    concrete classification learned from an annotation, constructor,
    or factory call.  Free names fall back to name hints — except
    names bound in an enclosing function (closures), which stay
    unknown: the closed-over value's identity belongs to the parent's
    scope, not to this function's signature.
    """

    def __init__(
        self,
        info: FunctionInfo,
        lines: Sequence[str],
        outer_names: frozenset[str],
    ) -> None:
        self.info = info
        self.lines = lines
        self.outer_names = outer_names
        self.bindings: dict[str, Root] = {}
        #: Names with a statically exact class (for CONC003 gating).
        self.exact_class: dict[str, str] = {}
        #: Locally defined nested-function names (CONC003 captures).
        self.local_defs: set[str] = set()
        #: Local names bound to ``set(<fan-in results>)`` (CONC005).
        self.fanin_sets: set[str] = set()
        #: Attribute nodes already recorded by an enclosing handler.
        self._claimed: set[int] = set()
        #: Effect/call sinks — swapped while scanning a run-lambda.
        self._effects = info.effects
        self._calls = info.calls
        for index, name in enumerate(info.params):
            self.bindings[name] = index
            annotation = info.annotations.get(index)
            if annotation in PROCESS_POOL_CLASS_NAMES:
                self.exact_class[name] = annotation

    # -- plumbing ------------------------------------------------------
    def _site(self, node: ast.AST) -> tuple[int, int, str]:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1].strip()
        return line, col, text

    def _record(
        self, node: ast.AST, root: Root, structure: str, kind: str
    ) -> None:
        if root in (OVERLAY, UNKNOWN, PROCPOOL):
            return
        line, col, text = self._site(node)
        self._effects.append(
            Effect(
                root=root,
                structure=structure,
                kind=kind,
                line=line,
                col=col,
                text=text,
            )
        )

    def _syntactic(self, node: ast.AST, rule: str, detail: str) -> None:
        line, col, text = self._site(node)
        self.info.syntactic.append(
            Syntactic(rule=rule, detail=detail, line=line, col=col, text=text)
        )

    # -- classification ------------------------------------------------
    def _classify(self, node: ast.expr) -> Root:
        if isinstance(node, ast.Name):
            if node.id in self.bindings:
                return self.bindings[node.id]
            if node.id in self.outer_names:
                return UNKNOWN
            classified = class_classification(node.id)
            if classified is not None:
                return classified
            return hint(node.id) or UNKNOWN
        if isinstance(node, ast.Attribute):
            return hint(node.attr) or UNKNOWN
        if isinstance(node, ast.Subscript):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, str
            ):
                return hint(index.value) or UNKNOWN
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._classify_call(node)
        if isinstance(node, ast.IfExp):
            body = self._classify(node.body)
            orelse = self._classify(node.orelse)
            return body if body == orelse else UNKNOWN
        return UNKNOWN

    def _classify_call(self, node: ast.Call) -> Root:
        func = node.func
        if isinstance(func, ast.Name):
            return class_classification(func.id) or UNKNOWN
        if isinstance(func, ast.Attribute):
            if func.attr in OVERLAY_FACTORY_METHODS:
                return OVERLAY
            if func.attr in ("create", "attach"):
                receiver = func.value
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in CHANNEL_CLASS_NAMES
                ) or self._classify(receiver) == CHANNEL:
                    return CHANNEL
        return UNKNOWN

    def _is_exact_procpool(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self.exact_class.get(node.id) in PROCESS_POOL_CLASS_NAMES
        return self._classify(node) == PROCPOOL

    def _is_poolish(self, node: ast.expr) -> bool:
        if self._is_exact_procpool(node):
            return True
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        return name is not None and bool(tokens(name) & _POOL_TOKENS)

    # -- statements ----------------------------------------------------
    def scan(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self.visit(statement)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs are separate table entries; only note the name
        # so CONC003 can spot them crossing a process-pool boundary.
        self.local_defs.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.local_defs.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # local classes: methods become their own table entries

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        root = self._classify(node.value)
        exact: Optional[str] = None
        if isinstance(node.value, ast.Call) and isinstance(
            node.value.func, ast.Name
        ):
            if node.value.func.id in PROCESS_POOL_CLASS_NAMES:
                exact = node.value.func.id
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.bindings[target.id] = root
                if exact is not None:
                    self.exact_class[target.id] = exact
                else:
                    self.exact_class.pop(target.id, None)
                self._track_fanin(target.id, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if not isinstance(node.target, ast.Name):
            return
        annotation = annotation_name(node.annotation)
        classified = class_classification(annotation)
        if classified is not None:
            self.bindings[node.target.id] = classified
        elif node.value is not None:
            self.bindings[node.target.id] = self._classify(node.value)
        if annotation in PROCESS_POOL_CLASS_NAMES:
            self.exact_class[node.target.id] = annotation
        if node.value is not None:
            self._track_fanin(node.target.id, node.value)

    def _track_fanin(self, name: str, value: ast.expr) -> None:
        if self._is_fanin_set_expr(value):
            self.fanin_sets.add(name)
        else:
            self.fanin_sets.discard(name)

    @staticmethod
    def _is_fanin_set_expr(value: ast.expr) -> bool:
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
            and value.args
        ):
            return False
        argument = value.args[0]
        name = None
        if isinstance(argument, ast.Name):
            name = argument.id
        elif isinstance(argument, ast.Attribute):
            name = argument.attr
        elif (
            isinstance(argument, ast.Call)
            and isinstance(argument.func, ast.Attribute)
            and argument.func.attr == "run"
        ):
            # ``set(pool.run(...))`` — the fan-in producer itself.
            return True
        return name is not None and bool(tokens(name) & _FANIN_TOKENS)

    # -- CONC005: fan-in order -----------------------------------------
    def visit_For(self, node: ast.For) -> None:
        iterable = node.iter
        if (
            isinstance(iterable, ast.Name)
            and iterable.id in self.fanin_sets
        ) or self._is_fanin_set_expr(iterable):
            self._syntactic(
                iterable,
                "CONC005",
                "iterating fan-in results in set (hash) order",
            )
        self.generic_visit(node)

    # -- effects: attribute / subscript access -------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        structure = ATTR_STRUCTURES.get(node.attr)
        if structure is not None and id(node) not in self._claimed:
            root = self._classify(node.value)
            if isinstance(node.ctx, ast.Load):
                self._record(node, root, structure, "read")
            else:
                self._record(node, root, structure, "write")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
            node.value, ast.Attribute
        ):
            structure = ATTR_STRUCTURES.get(node.value.attr)
            if structure is not None:
                root = self._classify(node.value.value)
                self._record(node, root, structure, "write")
                self._claimed.add(id(node.value))
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "as_completed":
                self._syntactic(
                    node,
                    "CONC005",
                    "as_completed() yields results in completion order",
                )
            elif class_classification(func.id) is None:
                self._add_call_edge(node, func.id, is_method=False)
        elif isinstance(func, ast.Attribute):
            self._visit_method_call(node, func)
        self.generic_visit(node)

    def _visit_method_call(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        if attr == "as_completed":
            self._syntactic(
                node,
                "CONC005",
                "as_completed() yields results in completion order",
            )
            return
        if (
            attr == "pop"
            and not node.args
            and isinstance(func.value, ast.Name)
            and func.value.id in self.fanin_sets
        ):
            self._syntactic(
                node,
                "CONC005",
                "set.pop() drains fan-in results in hash order",
            )
            return
        if attr in CALL_EFFECTS:
            root = self._classify(func.value)
            for structure, kind in CALL_EFFECTS[attr]:
                self._record(node, root, structure, kind)
            return
        if attr in OVERLAY_FACTORY_METHODS:
            return  # sanctioned: result classification happens on bind
        if attr == "run":
            self._visit_pool_run(node, func)
            return
        if attr == "configure":
            self._visit_pool_configure(node, func)
            return
        if attr in ("create", "attach") and self._classify_call(
            node
        ) == CHANNEL:
            return  # channel factories are contract boundaries
        self._add_call_edge(
            node, attr, is_method=True, receiver=func.value
        )

    def _visit_pool_run(self, node: ast.Call, func: ast.Attribute) -> None:
        if not self._is_poolish(func.value):
            self._add_call_edge(
                node, "run", is_method=True, receiver=func.value
            )
            return
        for argument in node.args:
            if isinstance(argument, ast.Lambda):
                if self._is_exact_procpool(func.value):
                    self._syntactic(
                        argument,
                        "CONC003",
                        "lambda task cannot cross the process boundary",
                    )
                self._scan_run_lambda(argument)
                self._claimed.add(id(argument))

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if id(node) in self._claimed:
            return  # already scanned as a pool-run pseudo-seed
        self.generic_visit(node)

    def _visit_pool_configure(
        self, node: ast.Call, func: ast.Attribute
    ) -> None:
        if not self._is_poolish(func.value):
            return
        exact = self._is_exact_procpool(func.value)
        for keyword in node.keywords:
            if keyword.arg not in ("task", "initializer"):
                continue
            value = keyword.value
            if isinstance(value, ast.Lambda):
                if exact:
                    self._syntactic(
                        value,
                        "CONC003",
                        f"lambda {keyword.arg} cannot cross the process"
                        " boundary",
                    )
            elif isinstance(value, ast.Name):
                if value.id in self.local_defs:
                    if exact:
                        self._syntactic(
                            value,
                            "CONC003",
                            f"nested function {value.id!r} captures its"
                            " closure across the process boundary",
                        )
                else:
                    self.info.configure_tasks.append(value.id)
            elif isinstance(value, ast.Attribute) and exact:
                self._syntactic(
                    value,
                    "CONC003",
                    f"bound method {value.attr!r} pickles its whole"
                    " instance across the process boundary",
                )

    def _scan_run_lambda(self, node: ast.Lambda) -> None:
        """Scan a pool-run lambda as a speculative pseudo-seed."""
        scan = LambdaScan(effects=[], calls=[])
        saved_effects, saved_calls = self._effects, self._calls
        saved_bindings = dict(self.bindings)
        self._effects, self._calls = scan.effects, scan.calls
        for argument in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        ):
            self.bindings[argument.arg] = hint(argument.arg) or UNKNOWN
        try:
            self.visit(node.body)
        finally:
            self._effects, self._calls = saved_effects, saved_calls
            self.bindings = saved_bindings
        self.info.run_lambdas.append(scan)

    def _add_call_edge(
        self,
        node: ast.Call,
        name: str,
        *,
        is_method: bool,
        receiver: Optional[ast.expr] = None,
    ) -> None:
        line, col, text = self._site(node)
        receiver_root: Root = UNKNOWN
        if receiver is not None:
            receiver_root = self._classify(receiver)
        self._calls.append(
            CallEdge(
                name=name,
                is_method=is_method,
                receiver_root=receiver_root,
                pos_roots=[self._classify(arg) for arg in node.args],
                kw_roots={
                    keyword.arg: self._classify(keyword.value)
                    for keyword in node.keywords
                    if keyword.arg is not None
                },
                line=line,
                col=col,
                text=text,
            )
        )


def _is_alloc_call(node: ast.Call) -> bool:
    """Whether ``node`` allocates an owned shared-memory resource."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "_create_segment":
            return True
        if func.id == "SharedMemory":
            return any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
        return False
    if isinstance(func, ast.Attribute):
        if func.attr == "SharedMemory":
            return any(
                keyword.arg == "create"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in node.keywords
            )
        if func.attr == "create":
            return (
                isinstance(func.value, ast.Name)
                and func.value.id in CHANNEL_CLASS_NAMES
            )
    return False


class AllocScanner(ast.NodeVisitor):
    """CONC006: shared-memory allocations without a cleanup path.

    An allocation is exempt when it is

    * inside a ``try`` whose handlers or ``finally`` call ``close()``
      or ``unlink()`` (cleanup on the failure path),
    * bound to a name whose ``close()``/``unlink()`` appears inside an
      ``except``/``finally`` block later in the same scope (failure-
      path cleanup of an allocation made before the ``try``),
    * returned from the function (ownership transfers to the caller),
    * or stored on ``self`` (ownership transfers to the instance,
      whose lifecycle methods own cleanup).
    """

    def __init__(
        self, info: FunctionInfo, lines: Sequence[str]
    ) -> None:
        self.info = info
        self.lines = lines
        self._protected = 0
        self._returned_names: set[str] = set()
        self._cleanup_names: set[str] = set()

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            for walked in ast.walk(statement):
                if isinstance(walked, ast.Return) and walked.value is not None:
                    for name in ast.walk(walked.value):
                        if isinstance(name, ast.Name):
                            self._returned_names.add(name.id)
                if isinstance(walked, ast.Try):
                    cleanup: list[ast.stmt] = list(walked.finalbody)
                    for handler in walked.handlers:
                        cleanup.extend(handler.body)
                    self._cleanup_names |= self._cleaned_names(cleanup)
        for statement in body:
            self.visit(statement)

    @staticmethod
    def _cleaned_names(statements: Iterable[ast.stmt]) -> set[str]:
        names: set[str] = set()
        for statement in statements:
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                    and isinstance(node.func.value, ast.Name)
                ):
                    names.add(node.func.value.id)
        return names

    # -- structure -----------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are scanned as their own table entries

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    @staticmethod
    def _has_cleanup(statements: Iterable[ast.stmt]) -> bool:
        for statement in statements:
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("close", "unlink")
                ):
                    return True
        return False

    def visit_Try(self, node: ast.Try) -> None:
        cleanup: list[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            cleanup.extend(handler.body)
        protected = self._has_cleanup(cleanup)
        if protected:
            self._protected += 1
        for statement in node.body:
            self.visit(statement)
        if protected:
            self._protected -= 1
        for statement in node.orelse:
            self.visit(statement)
        for handler in node.handlers:
            for statement in handler.body:
                self.visit(statement)
        for statement in node.finalbody:
            self.visit(statement)

    # -- allocation sites ----------------------------------------------
    def _exempt_assignment(self, targets: Iterable[ast.expr]) -> bool:
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id in ("self", "cls"):
                    return True
            if isinstance(target, ast.Name) and (
                target.id in self._returned_names
                or target.id in self._cleanup_names
            ):
                return True
        return False

    def _check_value(
        self, value: Optional[ast.expr], exempt: bool
    ) -> None:
        if value is None:
            return
        for node in ast.walk(value):
            if not (isinstance(node, ast.Call) and _is_alloc_call(node)):
                continue
            if exempt or self._protected > 0:
                continue
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            text = ""
            if 1 <= line <= len(self.lines):
                text = self.lines[line - 1].strip()
            self.info.syntactic.append(
                Syntactic(
                    rule="CONC006",
                    detail="shared-memory segment leaks if this scope"
                    " unwinds before cleanup",
                    line=line,
                    col=col,
                    text=text,
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_value(node.value, self._exempt_assignment(node.targets))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_value(
            node.value, self._exempt_assignment([node.target])
        )

    def visit_Return(self, node: ast.Return) -> None:
        pass  # returning the allocation transfers ownership

    def visit_Expr(self, node: ast.Expr) -> None:
        self._check_value(node.value, False)


def assigned_names(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> frozenset[str]:
    """Parameters plus every name the function body binds."""
    names = {
        argument.arg
        for argument in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
    }
    if node.args.vararg is not None:
        names.add(node.args.vararg.arg)
    if node.args.kwarg is not None:
        names.add(node.args.kwarg.arg)
    for walked in ast.walk(node):
        if isinstance(walked, ast.Name) and isinstance(
            walked.ctx, (ast.Store, ast.Del)
        ):
            names.add(walked.id)
    return frozenset(names)


_IN_PROGRESS = "in-progress"


class CallGraph:
    """The function table plus interprocedural effect resolution.

    Construction parses every file, scans every function
    (:class:`FunctionScanner` for effects/calls/syntactics,
    :class:`AllocScanner` for CONC006 candidates), seeds implicit
    worker-process contexts from ``configure(task=...)`` boundaries,
    and indexes the table by bare function name for call resolution.
    Subclasses (the CONC and PAR analyzers) layer their rule judgments
    on top.
    """

    def __init__(self, files: Sequence[tuple[str, str]]) -> None:
        self.table: list[FunctionInfo] = []
        self._by_name: dict[str, list[FunctionInfo]] = {}
        self._memo: dict[
            tuple[str, str], Union[str, list[Effect]]
        ] = {}
        for path, source in files:
            tree = ast.parse(source, filename=path)
            lines = source.splitlines()
            self._collect(
                tree.body,
                path=path,
                lines=lines,
                cls=None,
                prefix="",
                outer_names=frozenset(),
            )
        for info in self.table:
            self._by_name.setdefault(info.name, []).append(info)
        self._seed_implicit_contexts()

    # -- table construction --------------------------------------------
    def _collect(
        self,
        body: Sequence[ast.stmt],
        *,
        path: str,
        lines: Sequence[str],
        cls: Optional[str],
        prefix: str,
        outer_names: frozenset[str],
    ) -> None:
        for statement in body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._collect_function(
                    statement,
                    path=path,
                    lines=lines,
                    cls=cls,
                    prefix=prefix,
                    outer_names=outer_names,
                )
            elif isinstance(statement, ast.ClassDef):
                self._collect(
                    statement.body,
                    path=path,
                    lines=lines,
                    cls=statement.name,
                    prefix=f"{prefix}{statement.name}.",
                    outer_names=outer_names,
                )

    def _collect_function(
        self,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        *,
        path: str,
        lines: Sequence[str],
        cls: Optional[str],
        prefix: str,
        outer_names: frozenset[str],
    ) -> None:
        all_args = (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        )
        params = [argument.arg for argument in all_args]
        annotations = {
            index: annotation_name(argument.annotation)
            for index, argument in enumerate(all_args)
        }
        info = FunctionInfo(
            path=path,
            qualname=f"{prefix}{node.name}",
            name=node.name,
            cls=cls,
            params=params,
            annotations=annotations,
        )
        marker = parse_context_decorator(node)
        if marker is not None:
            info.context, info.declared_reads, info.declared_writes = marker
        pair_marker = parse_paired_decorator(node)
        if pair_marker is not None:
            info.pair, info.pair_backend = pair_marker
        self.table.append(info)
        FunctionScanner(info, lines, outer_names).scan(node.body)
        AllocScanner(info, lines).scan(node.body)
        nested_outer = outer_names | assigned_names(node)
        self._collect(
            node.body,
            path=path,
            lines=lines,
            cls=None,
            prefix=f"{prefix}{node.name}.",
            outer_names=nested_outer,
        )

    # -- implicit contexts ---------------------------------------------
    def _seed_implicit_contexts(self) -> None:
        for info in self.table:
            for task_name in info.configure_tasks:
                for callee in self.resolve_name(
                    task_name, info, is_method=False
                ):
                    if callee.context is None:
                        callee.implicit_context = "worker-process"

    # -- call resolution -----------------------------------------------
    def resolve_name(
        self, name: str, caller: FunctionInfo, *, is_method: bool
    ) -> list[FunctionInfo]:
        """Candidate callees for a call to ``name`` from ``caller``.

        Same-module definitions are preferred; ambiguous names (more
        than four candidates) resolve to nothing rather than fanning
        the analysis out over unrelated code.
        """
        candidates = [
            candidate
            for candidate in self._by_name.get(name, [])
            if (candidate.cls is not None) == is_method
        ]
        same_module = [
            candidate
            for candidate in candidates
            if candidate.path == caller.path
        ]
        picked = same_module or candidates
        if not picked or len(picked) > 4:
            return []
        return picked

    def call_arg_root(
        self, call: CallEdge, callee: FunctionInfo, index: int
    ) -> Root:
        """The caller-side root flowing into parameter ``index``."""
        if index >= len(callee.params):
            return UNKNOWN
        position = index
        if call.is_method and callee.cls is not None:
            if index == 0:
                return call.receiver_root
            position = index - 1
        if position < len(call.pos_roots):
            return call.pos_roots[position]
        name = callee.params[index]
        if name in call.kw_roots:
            return call.kw_roots[name]
        return UNKNOWN

    def _remap(
        self, effect: Effect, call: CallEdge, callee: FunctionInfo
    ) -> Optional[Effect]:
        root = effect.root
        if isinstance(root, int):
            root = self.call_arg_root(call, callee, root)
        if not (isinstance(root, int) or root in (BASE, CHANNEL)):
            return None
        return Effect(
            root=root,
            structure=effect.structure,
            kind=effect.kind,
            line=call.line,
            col=call.col,
            text=call.text,
            via=((callee.name,) + effect.via)[:VIA_CAP],
        )

    def call_contributions(
        self, call: CallEdge, caller: FunctionInfo
    ) -> list[Effect]:
        """Effects the callee(s) of ``call`` contribute to ``caller``."""
        out: list[Effect] = []
        for callee in self.resolve_name(
            call.name, caller, is_method=call.is_method
        ):
            if callee is caller:
                continue
            if callee.effective_context is not None:
                # Contract boundary: the declared footprint stands in
                # for the body, which is checked as its own seed.
                for kind, declared in (
                    ("read", callee.declared_reads),
                    ("write", callee.declared_writes),
                ):
                    for structure in declared or ():
                        out.append(
                            Effect(
                                root=CHANNEL
                                if structure == "channel"
                                else BASE,
                                structure=structure,
                                kind=kind,
                                line=call.line,
                                col=call.col,
                                text=call.text,
                                via=(callee.name,),
                            )
                        )
                continue
            for effect in self.summary(callee):
                remapped = self._remap(effect, call, callee)
                if remapped is not None:
                    out.append(remapped)
        return out

    def summary(self, info: FunctionInfo) -> list[Effect]:
        """Memoized transitive effect summary of one function."""
        key = (info.path, info.qualname)
        memo = self._memo.get(key)
        if memo == _IN_PROGRESS:
            return []
        if isinstance(memo, list):
            return memo
        self._memo[key] = _IN_PROGRESS
        out = [
            effect
            for effect in info.effects
            if isinstance(effect.root, int)
            or effect.root in (BASE, CHANNEL)
        ]
        for call in info.calls:
            out.extend(self.call_contributions(call, info))
        self._memo[key] = out
        return out


__all__ = [
    "ATTR_STRUCTURES",
    "BASE",
    "BASE_CLASS_NAMES",
    "CALL_EFFECTS",
    "CHANNEL",
    "CHANNEL_CLASS_NAMES",
    "CallEdge",
    "CallGraph",
    "Effect",
    "FunctionInfo",
    "FunctionScanner",
    "AllocScanner",
    "LambdaScan",
    "OVERLAY",
    "OVERLAY_CLASS_NAMES",
    "OVERLAY_FACTORY_METHODS",
    "PROCESS_POOL_CLASS_NAMES",
    "PROCPOOL",
    "Root",
    "Syntactic",
    "UNKNOWN",
    "VIA_CAP",
    "annotation_name",
    "assigned_names",
    "class_classification",
    "hint",
    "parse_context_decorator",
    "parse_paired_decorator",
    "tokens",
]
