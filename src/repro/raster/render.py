"""Rendering: layout polygons to a gray-level pixel bitmap.

MEBL data preparation rasterizes the layout so each beam can be turned
on or off per pixel (Section II-A).  Rendering slices the layout into
pixels and assigns each pixel an intensity proportional to the pattern
coverage inside it — the first step of Fig. 3.

Geometry is continuous (floats, in pixel units): a wire drawn at
sub-pixel width/offset produces the fractional gray levels that make
dithering non-trivial.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class Polygon:
    """An axis-aligned rectangle in continuous pixel coordinates."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x0 >= self.x1 or self.y0 >= self.y1:
            raise ValueError(f"malformed polygon: {self}")

    @property
    def area(self) -> float:
        """Geometric area in square pixels."""
        return (self.x1 - self.x0) * (self.y1 - self.y0)


def render(
    polygons: Sequence[Polygon], width: int, height: int
) -> np.ndarray:
    """Gray-level bitmap (float in [0, 1]) of coverage per pixel.

    Args:
        polygons: pattern rectangles in pixel coordinates.
        width, height: bitmap dimensions in pixels.

    Returns:
        ``(height, width)`` float array; entry ``[y, x]`` is the
        fraction of pixel ``(x, y)`` covered by patterns (overlapping
        polygons saturate at 1).
    """
    image = np.zeros((height, width), dtype=np.float64)
    for poly in polygons:
        x_lo = max(0, int(np.floor(poly.x0)))
        x_hi = min(width, int(np.ceil(poly.x1)))
        y_lo = max(0, int(np.floor(poly.y0)))
        y_hi = min(height, int(np.ceil(poly.y1)))
        for y in range(y_lo, y_hi):
            cover_y = min(poly.y1, y + 1) - max(poly.y0, y)
            if cover_y <= 0:
                continue
            for x in range(x_lo, x_hi):
                cover_x = min(poly.x1, x + 1) - max(poly.x0, x)
                if cover_x > 0:
                    image[y, x] += cover_x * cover_y
    np.clip(image, 0.0, 1.0, out=image)
    return image
