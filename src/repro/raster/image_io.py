"""Portable graymap (PGM) output for rasterization artifacts.

The rendering/dithering experiments produce small bitmaps; PGM is the
simplest viewable format that needs no imaging dependency.  ``P2``
(ASCII) keeps the files diffable in test fixtures and code review.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

PathLike = Union[str, pathlib.Path]


def to_pgm(image: np.ndarray, max_value: int = 255) -> str:
    """ASCII PGM document for a 2-D image.

    Float images are interpreted as intensities in [0, 1]; integer
    images as already-scaled gray levels (binary bitmaps print as
    0/``max_value``).
    """
    if image.ndim != 2:
        raise ValueError("PGM needs a 2-D image")
    if np.issubdtype(image.dtype, np.floating):
        scaled = np.clip(image, 0.0, 1.0) * max_value
    else:
        unique_max = int(image.max()) if image.size else 0
        factor = max_value if unique_max <= 1 else 1
        scaled = image * factor
    data = np.rint(scaled).astype(int)
    height, width = data.shape
    lines = [f"P2", f"{width} {height}", str(max_value)]
    for row in data:
        lines.append(" ".join(str(v) for v in row))
    return "\n".join(lines) + "\n"


def save_pgm(image: np.ndarray, path: PathLike, max_value: int = 255) -> None:
    """Write ``image`` to ``path`` as ASCII PGM."""
    pathlib.Path(path).write_text(to_pgm(image, max_value))


def load_pgm(path: PathLike) -> np.ndarray:
    """Read an ASCII PGM file back into a float image in [0, 1]."""
    tokens = pathlib.Path(path).read_text().split()
    if not tokens or tokens[0] != "P2":
        raise ValueError("not an ASCII PGM (P2) file")
    width, height, max_value = int(tokens[1]), int(tokens[2]), int(tokens[3])
    values = np.array([int(t) for t in tokens[4 : 4 + width * height]])
    if values.size != width * height:
        raise ValueError("truncated PGM data")
    return values.reshape(height, width).astype(np.float64) / max_value
