"""Rasterize routed layouts: the routing → data-preparation bridge.

The raster substrate's other modules work on synthetic polygons; this
one feeds it *actual routed wires*, closing the paper's loop: route a
design, slice a window around a stitching line, rasterize it like the
MEBL data-preparation flow would, and measure how badly each short
polygon the router left behind would print (the Fig. 4 defect metric,
applied to real geometry).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..detailed import DetailedResult
from ..detailed.wiring import short_polygon_sites, trim_dangling
from ..eval import edges_to_segments
from ..geometry import Orientation, Rect
from .defects import relative_pattern_error
from .dither import DitherKernel, dither
from .render import Polygon, render


def window_polygons(
    result: DetailedResult,
    window: Rect,
    layer: int,
    pixels_per_pitch: int = 4,
    wire_width: float = 0.45,
) -> list[Polygon]:
    """Wire polygons of one layer inside ``window``, in pixel coords.

    Wires are drawn ``wire_width`` pitches wide, centred on their
    track; the default width is deliberately *not* pixel-aligned, so
    wire edges land on fractional pixels and produce the gray levels
    real rasterization has to dither (Fig. 3).
    """
    if not 0.0 < wire_width <= 1.0:
        raise ValueError("wire_width must be in (0, 1] pitches")
    polygons: list[Polygon] = []
    half = wire_width / 2.0
    scale = pixels_per_pitch

    def to_px(value: float) -> float:
        return value * scale

    for record in result.nets.values():
        edges = trim_dangling(record.edges, record.pin_nodes)
        for seg in edges_to_segments(edges):
            if seg.layer != layer or seg.orientation is Orientation.VIA:
                continue
            box = Rect(seg.a.x, seg.a.y, seg.b.x, seg.b.y)
            clipped = box.clipped(window)
            if clipped is None:
                continue
            # Shift into window-local coordinates.
            x0 = clipped.lo_x - window.lo_x
            x1 = clipped.hi_x - window.lo_x
            y0 = clipped.lo_y - window.lo_y
            y1 = clipped.hi_y - window.lo_y
            if seg.orientation is Orientation.HORIZONTAL:
                polygons.append(
                    Polygon(
                        to_px(x0),
                        to_px(y0 + 0.5 - half),
                        to_px(x1 + 1.0),
                        to_px(y0 + 0.5 + half),
                    )
                )
            else:
                polygons.append(
                    Polygon(
                        to_px(x0 + 0.5 - half),
                        to_px(y0),
                        to_px(x0 + 0.5 + half),
                        to_px(y1 + 1.0),
                    )
                )
    return polygons


def rasterize_window(
    result: DetailedResult,
    window: Rect,
    layer: int,
    pixels_per_pitch: int = 4,
    kernel: DitherKernel = DitherKernel.PAPER,
) -> tuple[np.ndarray, np.ndarray]:
    """Gray-level and dithered bitmaps of one routed window."""
    polygons = window_polygons(result, window, layer, pixels_per_pitch)
    width = window.width * pixels_per_pitch
    height = window.height * pixels_per_pitch
    gray = render(polygons, width, height)
    binary = dither(gray, kernel)
    return gray, binary


@dataclasses.dataclass(frozen=True)
class RoutedShortPolygonDefect:
    """Print-quality score of one short polygon in routed geometry."""

    net: str
    line_x: int
    end: tuple[int, int, int]
    stub_length: int
    relative_error: float


def score_short_polygons(
    result: DetailedResult,
    pixels_per_pitch: int = 4,
    margin: int = 4,
    kernel: DitherKernel = DitherKernel.PAPER,
    limit: Optional[int] = None,
) -> list[RoutedShortPolygonDefect]:
    """Rasterize every short polygon the solution contains and score it.

    For each site, the stub (line end → stitching line) is rasterized
    in a small window together with its neighbourhood, and the Fig. 4
    relative pattern error of the stub polygon is reported.
    """
    design = result.design
    assert design.stitches is not None
    scores: list[RoutedShortPolygonDefect] = []
    for name in sorted(result.nets):
        record = result.nets[name]
        edges = trim_dangling(record.edges, record.pin_nodes)
        for crossing, end in short_polygon_sites(
            edges, record.pin_nodes, design.stitches
        ):
            line_x = crossing[0]
            end_x, end_y, end_layer = end
            window = Rect(
                max(0, min(end_x, line_x) - margin),
                max(0, end_y - margin),
                min(design.width - 1, max(end_x, line_x) + margin),
                min(design.height - 1, end_y + margin),
            )
            gray, binary = rasterize_window(
                result, window, end_layer, pixels_per_pitch, kernel
            )
            scale = pixels_per_pitch
            stub = Polygon(
                (min(end_x, line_x) - window.lo_x) * scale,
                (end_y - window.lo_y + 0.5 - 0.225) * scale,
                (max(end_x, line_x) - window.lo_x + 1) * scale,
                (end_y - window.lo_y + 0.5 + 0.225) * scale,
            )
            scores.append(
                RoutedShortPolygonDefect(
                    net=name,
                    line_x=line_x,
                    end=end,
                    stub_length=abs(end_x - line_x),
                    relative_error=relative_pattern_error(binary, stub),
                )
            )
            if limit is not None and len(scores) >= limit:
                return scores
    return scores
