"""MEBL throughput model (the paper's Section I motivation).

Single-beam EBL throughput is limited by writing every pixel serially —
the reason EBL never reached volume manufacturing.  MEBL splits the
layout into stripes written by thousands of parallel beams, which is
why stitching lines (and this whole library) exist.  This small model
makes the trade quantitative: wafers per hour against beam count, with
the stripe count (and therefore the stitching-line count) that a given
configuration implies.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class WriterConfig:
    """Direct-write system parameters.

    Attributes:
        pixel_rate_hz: pixels one beam exposes per second.
        num_beams: beams writing in parallel (1 = conventional EBL).
        stripe_width_pixels: deflection-limited stripe width; the
            layout splits into ceil(width / stripe_width) stripes.
        overhead_s: per-wafer mechanical/settling overhead in seconds.
    """

    pixel_rate_hz: float
    num_beams: int = 1
    stripe_width_pixels: int = 4096
    overhead_s: float = 30.0

    def __post_init__(self) -> None:
        if self.pixel_rate_hz <= 0:
            raise ValueError("pixel rate must be positive")
        if self.num_beams < 1:
            raise ValueError("need at least one beam")
        if self.stripe_width_pixels < 1:
            raise ValueError("stripe width must be positive")


@dataclasses.dataclass(frozen=True)
class ThroughputEstimate:
    """Writing-time breakdown for one wafer layer."""

    write_time_s: float
    num_stripes: int
    num_stitching_lines: int
    wafers_per_hour: float


def estimate_throughput(
    config: WriterConfig,
    layout_width_pixels: int,
    layout_height_pixels: int,
    dies_per_wafer: int = 100,
) -> ThroughputEstimate:
    """Writing time and stitching-line count for one wafer layer.

    Beams write stripes concurrently; with more beams than stripes the
    extra beams idle (stripes are the parallelism unit), so the time is
    governed by ``ceil(stripes / beams)`` sequential stripe passes.
    """
    if layout_width_pixels < 1 or layout_height_pixels < 1:
        raise ValueError("layout dimensions must be positive")
    num_stripes = math.ceil(layout_width_pixels / config.stripe_width_pixels)
    pixels_per_stripe = (
        min(config.stripe_width_pixels, layout_width_pixels)
        * layout_height_pixels
    )
    passes = math.ceil(num_stripes / config.num_beams)
    die_time = passes * pixels_per_stripe / config.pixel_rate_hz
    wafer_time = die_time * dies_per_wafer + config.overhead_s
    return ThroughputEstimate(
        write_time_s=wafer_time,
        num_stripes=num_stripes,
        num_stitching_lines=max(0, num_stripes - 1),
        wafers_per_hour=3600.0 / wafer_time,
    )


def beams_for_target(
    config: WriterConfig,
    layout_width_pixels: int,
    layout_height_pixels: int,
    target_wafers_per_hour: float,
    dies_per_wafer: int = 100,
    max_beams: int = 1_000_000,
) -> int:
    """Smallest beam count reaching the throughput target.

    Raises :class:`ValueError` when even ``max_beams`` cannot reach it
    (the overhead floor dominates).
    """
    if target_wafers_per_hour <= 0:
        raise ValueError("target must be positive")
    beams = 1
    while beams <= max_beams:
        candidate = dataclasses.replace(config, num_beams=beams)
        estimate = estimate_throughput(
            candidate, layout_width_pixels, layout_height_pixels, dies_per_wafer
        )
        if estimate.wafers_per_hour >= target_wafers_per_hour:
            return beams
        beams *= 2
    raise ValueError(
        f"target {target_wafers_per_hour} wafers/h unreachable with "
        f"{max_beams} beams (overhead floor)"
    )
