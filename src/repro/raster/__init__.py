"""MEBL rasterization substrate: rendering, dithering, defect scoring."""

from .defects import (
    DefectScore,
    apply_overlay,
    relative_pattern_error,
    short_polygon_experiment,
)
from .dither import DitherKernel, boundary_error_pixels, dither
from .overlay_study import (
    PATTERN_KINDS,
    OverlayDistortion,
    overlay_study,
    pattern_distortion,
)
from .from_routing import (
    RoutedShortPolygonDefect,
    rasterize_window,
    score_short_polygons,
    window_polygons,
)
from .image_io import load_pgm, save_pgm, to_pgm
from .render import Polygon, render
from .throughput import (
    ThroughputEstimate,
    WriterConfig,
    beams_for_target,
    estimate_throughput,
)

__all__ = [
    "DefectScore",
    "DitherKernel",
    "OverlayDistortion",
    "PATTERN_KINDS",
    "overlay_study",
    "pattern_distortion",
    "ThroughputEstimate",
    "WriterConfig",
    "beams_for_target",
    "estimate_throughput",
    "RoutedShortPolygonDefect",
    "load_pgm",
    "rasterize_window",
    "score_short_polygons",
    "window_polygons",
    "save_pgm",
    "to_pgm",
    "Polygon",
    "apply_overlay",
    "boundary_error_pixels",
    "dither",
    "relative_pattern_error",
    "render",
    "short_polygon_experiment",
]
