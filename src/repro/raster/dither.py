"""Dithering with error diffusion (Section II-A, Fig. 3).

Transforms a gray-level bitmap into a black/white bitmap: each pixel is
thresholded and its quantization error is diffused to neighbouring
unprocessed pixels instead of being discarded.  Two kernels:

* ``PAPER`` — the simple kernel of Fig. 3: half of the error to the
  right neighbour, half to the lower neighbour;
* ``FLOYD_STEINBERG`` — the classic 7/16, 3/16, 5/16, 1/16 kernel used
  by production data-preparation flows.

Either way, gray edges produce the *irregular boundary pixels* that
make short polygons dangerous (Fig. 4).
"""

from __future__ import annotations

import enum

import numpy as np


class DitherKernel(enum.Enum):
    """Error-diffusion kernel choice."""

    PAPER = "paper"
    FLOYD_STEINBERG = "floyd-steinberg"


#: (dx, dy, weight) taps per kernel; dy >= 0 and (dy > 0 or dx > 0) so
#: error only flows to unprocessed pixels in raster order.
_TAPS = {
    DitherKernel.PAPER: ((1, 0, 0.5), (0, 1, 0.5)),
    DitherKernel.FLOYD_STEINBERG: (
        (1, 0, 7 / 16),
        (-1, 1, 3 / 16),
        (0, 1, 5 / 16),
        (1, 1, 1 / 16),
    ),
}


def dither(
    gray: np.ndarray,
    kernel: DitherKernel = DitherKernel.PAPER,
    threshold: float = 0.5,
) -> np.ndarray:
    """Error-diffusion dithering of a gray-level image.

    Args:
        gray: float image with values in [0, 1].
        kernel: diffusion kernel.
        threshold: on/off decision level.

    Returns:
        Binary ``uint8`` image of the same shape (1 = beam on).
    """
    if gray.ndim != 2:
        raise ValueError("gray image must be 2-D")
    taps = _TAPS[kernel]
    work = gray.astype(np.float64).copy()
    height, width = work.shape
    out = np.zeros_like(work, dtype=np.uint8)
    for y in range(height):
        for x in range(width):
            value = work[y, x]
            on = value >= threshold
            out[y, x] = 1 if on else 0
            error = value - (1.0 if on else 0.0)
            for dx, dy, weight in taps:
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny < height:
                    work[ny, nx] += error * weight
    return out


def boundary_error_pixels(
    binary: np.ndarray, gray: np.ndarray, threshold: float = 0.5
) -> int:
    """Count pixels whose on/off state contradicts plain thresholding.

    These are the *irregular pixels on feature edges* of Fig. 3b —
    places where diffused error flipped a pixel relative to the naive
    rounding of the rendered intensity.
    """
    naive = (gray >= threshold).astype(np.uint8)
    return int(np.count_nonzero(naive != binary))
