"""Short-polygon defect scoring and overlay-error simulation.

Fig. 4 shows the failure mechanism this library exists to prevent: a
short polygon (the stub a stitching line cuts off a wire) is so small
that the few irregular pixels error diffusion leaves on its corners are
a large *fraction* of its area, so the printed stub is badly distorted
and its landing via misaligns.  :func:`relative_pattern_error` measures
exactly that ratio.

Fig. 1b's overlay mechanism is also modelled: the two sides of a
stitching line are written by different beams/passes, so one side lands
shifted by the overlay error.  :func:`apply_overlay` shifts the pixels
of one stripe; via/vertical-wire patterns cut by the line then degrade
much more than horizontal wires.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .dither import DitherKernel, dither
from .render import Polygon, render


def relative_pattern_error(
    binary: np.ndarray, polygon: Polygon
) -> float:
    """Printed-vs-intended pixel error of one polygon, relative to size.

    Compares the dithered result inside the polygon's pixel bounding
    box with the ideal coverage; the result is
    ``|printed - ideal| summed / ideal area``.  Small polygons produce
    large values — the Fig. 4 effect.
    """
    height, width = binary.shape
    x_lo = max(0, int(np.floor(polygon.x0)))
    x_hi = min(width, int(np.ceil(polygon.x1)))
    y_lo = max(0, int(np.floor(polygon.y0)))
    y_hi = min(height, int(np.ceil(polygon.y1)))
    if x_lo >= x_hi or y_lo >= y_hi:
        return 0.0
    ideal = render([polygon], width, height)[y_lo:y_hi, x_lo:x_hi]
    printed = binary[y_lo:y_hi, x_lo:x_hi].astype(np.float64)
    denominator = max(polygon.area, 1e-9)
    return float(np.abs(printed - ideal).sum() / denominator)


def apply_overlay(
    binary: np.ndarray, stitch_x: int, dx: int, dy: int
) -> np.ndarray:
    """Shift the stripe right of ``stitch_x`` by the overlay error.

    Pixels shifted in from outside are zero (unexposed).  Returns a new
    image; the left stripe is untouched.
    """
    out = binary.copy()
    stripe = binary[:, stitch_x:]
    shifted = np.zeros_like(stripe)
    h, w = stripe.shape
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_x = slice(max(0, dx), min(w, w + dx))
    src_y = slice(max(0, -dy), min(h, h - dy))
    dst_y = slice(max(0, dy), min(h, h + dy))
    shifted[dst_y, dst_x] = stripe[src_y, src_x]
    out[:, stitch_x:] = shifted
    return out


@dataclasses.dataclass(frozen=True)
class DefectScore:
    """Outcome of one rasterization defect experiment."""

    description: str
    polygon_area: float
    error_pixels: float
    relative_error: float


def short_polygon_experiment(
    stub_length: float,
    wire_width: float = 1.0,
    canvas: int = 24,
    kernel: DitherKernel = DitherKernel.PAPER,
) -> DefectScore:
    """Rasterize a wire stub of the given length and score its defect.

    The stub models the piece of a horizontal wire cut off by a
    stitching line (Fig. 4).  Sub-pixel width/position produce the gray
    edges whose diffused error lands on the stub's corners.
    """
    if stub_length <= 0:
        raise ValueError("stub_length must be positive")
    y0 = canvas / 2 - wire_width / 2 + 0.3  # off-grid like real layouts
    stub = Polygon(2.3, y0, 2.3 + stub_length, y0 + wire_width)
    gray = render([stub], canvas, canvas)
    binary = dither(gray, kernel)
    error = relative_pattern_error(binary, stub)
    printed = float(binary.sum())
    return DefectScore(
        description=f"stub of length {stub_length:g}px",
        polygon_area=stub.area,
        error_pixels=abs(printed - stub.area),
        relative_error=error,
    )
