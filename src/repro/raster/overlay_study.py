"""Quantifying Fig. 1b: overlay-error tolerance per pattern type.

The two sides of a stitching line are written by different beams or
passes; the right side lands shifted by the overlay error.  This study
prints, for each pattern type cut by the line, the mis-printed area
relative to the pattern size:

* a **horizontal wire** crossing the line only grows a small jog —
  tolerable;
* a **via** (critical-dimension square) centred on the line splits and
  misaligns — severe;
* a **vertical wire** running along the line shears apart — severe.

This is precisely why the via constraint and the vertical routing
constraint are *hard* while crossing horizontally is allowed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .defects import apply_overlay
from .render import Polygon, render


@dataclasses.dataclass(frozen=True)
class OverlayDistortion:
    """Mis-printed fraction of one pattern under one overlay error."""

    pattern: str
    overlay: tuple[int, int]
    distortion: float


def _pattern_polygons(kind: str, stitch_x: int, canvas: int) -> list[Polygon]:
    mid = canvas / 2
    if kind == "horizontal wire":
        return [Polygon(2, mid - 1, canvas - 2, mid + 1)]
    if kind == "via":
        return [Polygon(stitch_x - 1, mid - 1, stitch_x + 1, mid + 1)]
    if kind == "vertical wire":
        return [Polygon(stitch_x - 1, 2, stitch_x + 1, canvas - 2)]
    raise ValueError(f"unknown pattern kind {kind!r}")


def pattern_distortion(
    kind: str,
    overlay: tuple[int, int],
    stitch_x: int = 12,
    canvas: int = 24,
) -> OverlayDistortion:
    """Print one pattern with the given overlay error and score it.

    The score is the XOR area between intended and printed pattern,
    relative to the intended area — 0 is a perfect print; values near 1
    mean the printed shape barely overlaps the intended one.
    """
    polygons = _pattern_polygons(kind, stitch_x, canvas)
    intended = (render(polygons, canvas, canvas) >= 0.5).astype(np.uint8)
    printed = apply_overlay(intended, stitch_x, overlay[0], overlay[1])
    area = intended.sum()
    mismatch = int(np.count_nonzero(intended != printed))
    return OverlayDistortion(
        pattern=kind,
        overlay=overlay,
        distortion=mismatch / max(int(area), 1),
    )


PATTERN_KINDS = ("horizontal wire", "via", "vertical wire")


def overlay_study(
    overlays: tuple[tuple[int, int], ...] = ((1, 0), (2, 0), (1, 1)),
    stitch_x: int = 12,
    canvas: int = 24,
) -> list[OverlayDistortion]:
    """The full Fig. 1b table: every pattern kind x overlay error."""
    return [
        pattern_distortion(kind, overlay, stitch_x, canvas)
        for kind in PATTERN_KINDS
        for overlay in overlays
    ]
