"""Net geometry utilities for evaluation (re-exported from detailed).

The wire-edge machinery lives in :mod:`repro.detailed.wiring` because
the router itself needs trimming and short-polygon detection for its
cleanup and repair passes; this module re-exports it for evaluation
code plus the aggregate wirelength/via counters.
"""

from __future__ import annotations

from ..detailed.wiring import (
    Edge,
    canonical_edge,
    edges_to_segments,
    nodes_of_edges,
    path_edges,
    short_polygon_sites,
    trim_dangling,
    via_landing_points,
)

__all__ = [
    "Edge",
    "canonical_edge",
    "edges_to_segments",
    "nodes_of_edges",
    "path_edges",
    "short_polygon_sites",
    "trim_dangling",
    "via_count",
    "via_landing_points",
    "wirelength",
]


def wirelength(edges: set[Edge]) -> int:
    """Total routed wirelength (planar edges only; vias not counted)."""
    return sum(1 for a, b in edges if a[2] == b[2])


def via_count(edges: set[Edge]) -> int:
    """Number of layer-transition edges."""
    return sum(1 for a, b in edges if a[2] != b[2])
