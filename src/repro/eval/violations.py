"""Stitch-aware violation checking and routing metrics.

Counts, for a completed detailed routing solution, the quantities the
paper's tables report:

* **#VV** — via violations: vias cut by a stitching line.  Only fixed
  pins may carry them (Problem 1); each routed pin sitting on a line
  contributes its cell-contact via, plus any routed via stack at a line
  x (which the router only permits at such pins).
* **vertical routing violations** — wire running along a stitching
  line on a vertical layer; must be zero for both routers (hard
  constraint, also enforced by the baseline per Section IV-A).
* **#SP** — short polygons: a horizontal wire cut by a stitching line
  whose line end lies within ε of that line *with a landing via*
  (Fig. 5c).  A pin at the wire end counts as a landing via (the cell
  contact).
* routability, wirelength, via count.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from ..detailed import DetailedResult
from ..geometry import Orientation, WireSegment
from ..layout import Design
from ..observe import RunTrace
from .geometry import (
    Edge,
    edges_to_segments,
    short_polygon_sites,
    trim_dangling,
    via_count,
    wirelength,
)


@dataclasses.dataclass
class NetReport:
    """Violation breakdown for one net."""

    name: str
    routed: bool
    via_violations: int
    vertical_violations: int
    short_polygons: int
    wirelength: int
    vias: int


@dataclasses.dataclass
class RoutingReport:
    """Aggregate Table III/VII/VIII row for one routing solution."""

    design_name: str
    total_nets: int
    routed_nets: int
    via_violations: int
    vertical_violations: int
    short_polygons: int
    wirelength: int
    vias: int
    cpu_seconds: float
    nets: Dict[str, NetReport]
    #: Per-stage observability trace of the run that produced this
    #: report (attached by the flow; ``None`` for bare evaluations).
    trace: Optional[RunTrace] = None

    @property
    def routability(self) -> float:
        """Routed fraction (``Rout.`` column)."""
        return self.routed_nets / self.total_nets if self.total_nets else 1.0

    def row(self) -> dict:
        """Dict row matching the paper's table columns."""
        return {
            "circuit": self.design_name,
            "rout_pct": 100.0 * self.routability,
            "vv": self.via_violations,
            "sp": self.short_polygons,
            "wl": self.wirelength,
            "vias": self.vias,
            "cpu_s": self.cpu_seconds,
        }


def evaluate(result: DetailedResult) -> RoutingReport:
    """Check every net of a detailed routing result."""
    design = result.design
    assert design.stitches is not None
    reports: Dict[str, NetReport] = {}
    for name in sorted(result.nets):
        routed_net = result.nets[name]
        reports[name] = _check_net(design, routed_net)
    return RoutingReport(
        design_name=design.name,
        total_nets=len(result.nets),
        routed_nets=sum(1 for r in result.nets.values() if r.routed),
        via_violations=sum(r.via_violations for r in reports.values()),
        vertical_violations=sum(
            r.vertical_violations for r in reports.values()
        ),
        short_polygons=sum(
            r.short_polygons for r in reports.values() if r.routed
        ),
        wirelength=sum(r.wirelength for r in reports.values()),
        vias=sum(r.vias for r in reports.values()),
        cpu_seconds=result.cpu_seconds,
        nets=reports,
    )


def _check_net(design: Design, routed_net) -> NetReport:
    stitches = design.stitches
    pins = routed_net.pin_nodes
    edges = trim_dangling(routed_net.edges, pins)
    segments = edges_to_segments(edges)

    vv = sum(
        1 for (x, _y) in _via_positions(edges) if stitches.is_on_line(x)
    )
    # Each routed pin is a cell contact (an implicit via below layer 1);
    # a pin on a stitching line is therefore a via violation.
    if routed_net.routed:
        vv += sum(1 for (x, _y, _z) in pins if stitches.is_on_line(x))

    vertical = _vertical_violations(design, segments)
    sp = len(short_polygon_sites(edges, pins, stitches))
    return NetReport(
        name=routed_net.net.name,
        routed=routed_net.routed,
        via_violations=vv,
        vertical_violations=vertical,
        short_polygons=sp,
        wirelength=wirelength(edges),
        vias=via_count(edges),
    )


def _via_positions(edges: Set[Edge]) -> Set[Tuple[int, int]]:
    return {(a[0], a[1]) for a, b in edges if a[2] != b[2]}


def _vertical_violations(design: Design, segments: List[WireSegment]) -> int:
    """Vertical wires running along a stitching line (must be zero)."""
    stitches = design.stitches
    count = 0
    for seg in segments:
        if seg.orientation is Orientation.VERTICAL and stitches.is_on_line(
            seg.a.x
        ):
            count += 1
    return count
