"""Stitch-aware violation checking and routing metrics.

Counts, for a completed detailed routing solution, the quantities the
paper's tables report:

* **#VV** — via violations: vias cut by a stitching line.  Only fixed
  pins may carry them (Problem 1); each routed pin sitting on a line
  contributes its cell-contact via, plus any routed via stack at a line
  x (which the router only permits at such pins).
* **vertical routing violations** — wire running along a stitching
  line on a vertical layer; must be zero for both routers (hard
  constraint, also enforced by the baseline per Section IV-A).
* **#SP** — short polygons: a horizontal wire cut by a stitching line
  whose line end lies within ε of that line *with a landing via*
  (Fig. 5c).  A pin at the wire end counts as a landing via (the cell
  contact).
* routability, wirelength, via count.

Every violation is *attributed*: a :class:`Violation` records the net,
the kind, the stitching line (index and x) that caused it, and where
it sits (y, layer).  :meth:`RoutingReport.stitch_line_histogram` rolls
the attributions up per line, which is how the paper's per-feature
evaluation (and detailed routers such as TRIAD / Mr.TPL) report
conflict breakdowns; the aggregate #VV/#SP/vertical columns are by
construction the histogram's totals.

This module is the router's *self*-evaluation: the router optimizes
against these very counts.  :mod:`repro.analysis.audit` is the
independent cross-check — it re-derives every quantity here with its
own geometry code and fails hard on any disagreement (``repro audit``
/ ``RouterConfig(audit=True)``), so a bookkeeping bug in this file
cannot silently skew the reported tables.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..detailed import DetailedResult
from ..geometry import Orientation, WireSegment
from ..layout import Design, StitchingLines
from ..observe import RunTrace
from .geometry import (
    Edge,
    edges_to_segments,
    short_polygon_sites,
    trim_dangling,
    via_count,
    wirelength,
)

#: Violation ``kind`` labels, in histogram column order.
VIOLATION_KINDS = ("via", "vertical", "short-polygon")


@dataclasses.dataclass(frozen=True)
class Violation:
    """One attributed stitch violation.

    Attributes:
        net: name of the offending net.
        kind: ``"via"`` (#VV), ``"vertical"`` (vertical routing
            violation), or ``"short-polygon"`` (#SP).
        line: index of the stitching line that causes the violation
            (position in ``design.stitches.xs``).
        x: x coordinate of that stitching line, in pitches.
        y: y coordinate of the violating via / segment / line end.
        layer: routing layer of the violation (the lower layer for a
            via stack; 0 for a pin's cell contact).
    """

    net: str
    kind: str
    line: int
    x: int
    y: int
    layer: int

    def to_dict(self) -> dict:
        """Plain-dict form (net implied by the enclosing report entry)."""
        return {
            "kind": self.kind,
            "line": self.line,
            "x": self.x,
            "y": self.y,
            "layer": self.layer,
        }

    @classmethod
    def from_dict(cls, net: str, data: dict) -> "Violation":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            net=net,
            kind=data["kind"],
            line=data["line"],
            x=data["x"],
            y=data["y"],
            layer=data["layer"],
        )


@dataclasses.dataclass
class NetReport:
    """Violation breakdown for one net."""

    name: str
    routed: bool
    via_violations: int
    vertical_violations: int
    short_polygons: int
    wirelength: int
    vias: int
    #: Attributed violations behind the three count columns, in kind
    #: order (vias, vertical, short polygons).
    violations: list[Violation] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class RoutingReport:
    """Aggregate Table III/VII/VIII row for one routing solution."""

    design_name: str
    total_nets: int
    routed_nets: int
    via_violations: int
    vertical_violations: int
    short_polygons: int
    wirelength: int
    vias: int
    cpu_seconds: float
    nets: dict[str, NetReport]
    #: Per-stage observability trace of the run that produced this
    #: report (attached by the flow; ``None`` for bare evaluations).
    trace: Optional[RunTrace] = None

    @property
    def routability(self) -> float:
        """Routed fraction (``Rout.`` column)."""
        return self.routed_nets / self.total_nets if self.total_nets else 1.0

    @property
    def violations(self) -> list[Violation]:
        """Every attributed violation the aggregate columns count.

        Mirrors the column semantics exactly: short polygons of
        unrouted nets are excluded (as in the #SP column), everything
        else is included, so per-kind totals over this list equal the
        #VV / vertical / #SP fields.
        """
        out: list[Violation] = []
        for net in self.nets.values():
            for violation in net.violations:
                if violation.kind == "short-polygon" and not net.routed:
                    continue
                out.append(violation)
        return out

    def stitch_line_histogram(self) -> dict[int, dict[str, int]]:
        """Violation counts per stitching line, split by kind.

        Keys are stitching-line indices; each value maps every kind of
        :data:`VIOLATION_KINDS` to its count at that line (zeros
        included).  Lines without violations are absent.  Summing any
        kind over all lines reproduces the corresponding aggregate
        column.
        """
        histogram: dict[int, dict[str, int]] = {}
        for violation in self.violations:
            per_line = histogram.setdefault(
                violation.line, {kind: 0 for kind in VIOLATION_KINDS}
            )
            per_line[violation.kind] += 1
        return dict(sorted(histogram.items()))

    def row(self) -> dict:
        """Dict row matching the paper's table columns."""
        return {
            "circuit": self.design_name,
            "rout_pct": 100.0 * self.routability,
            "vv": self.via_violations,
            "sp": self.short_polygons,
            "wl": self.wirelength,
            "vias": self.vias,
            "cpu_s": self.cpu_seconds,
        }


def evaluate(result: DetailedResult) -> RoutingReport:
    """Check every net of a detailed routing result."""
    design = result.design
    assert design.stitches is not None
    reports: dict[str, NetReport] = {}
    for name in sorted(result.nets):
        routed_net = result.nets[name]
        reports[name] = _check_net(design, routed_net)
    return RoutingReport(
        design_name=design.name,
        total_nets=len(result.nets),
        routed_nets=sum(1 for r in result.nets.values() if r.routed),
        via_violations=sum(r.via_violations for r in reports.values()),
        vertical_violations=sum(
            r.vertical_violations for r in reports.values()
        ),
        short_polygons=sum(
            r.short_polygons for r in reports.values() if r.routed
        ),
        wirelength=sum(r.wirelength for r in reports.values()),
        vias=sum(r.vias for r in reports.values()),
        cpu_seconds=result.cpu_seconds,
        nets=reports,
    )


def _check_net(design: Design, routed_net) -> NetReport:
    stitches = design.stitches
    name = routed_net.net.name
    pins = routed_net.pin_nodes
    edges = trim_dangling(routed_net.edges, pins)
    segments = edges_to_segments(edges)

    violations: list[Violation] = []
    for (x, y), layer in sorted(_via_positions(edges).items()):
        line = stitches.line_index(x)
        if line is not None:
            violations.append(Violation(name, "via", line, x, y, layer))
    # Each routed pin is a cell contact (an implicit via below layer 1);
    # a pin on a stitching line is therefore a via violation.
    if routed_net.routed:
        for x, y, z in sorted(pins):
            line = stitches.line_index(x)
            if line is not None:
                violations.append(Violation(name, "via", line, x, y, z))
    vv = len(violations)

    violations.extend(_vertical_violations(name, stitches, segments))
    vertical = len(violations) - vv

    sp_sites = short_polygon_sites(edges, pins, stitches)
    for (line_x, y, layer), _end in sp_sites:
        line = stitches.line_index(line_x)
        assert line is not None  # crossing nodes sit on a line
        violations.append(
            Violation(name, "short-polygon", line, line_x, y, layer)
        )
    return NetReport(
        name=name,
        routed=routed_net.routed,
        via_violations=vv,
        vertical_violations=vertical,
        short_polygons=len(sp_sites),
        wirelength=wirelength(edges),
        vias=via_count(edges),
        violations=violations,
    )


def _via_positions(edges: set[Edge]) -> dict[tuple[int, int], int]:
    """Via (x, y) positions mapped to the lowest layer of the stack."""
    positions: dict[tuple[int, int], int] = {}
    for a, b in edges:
        if a[2] != b[2]:
            key = (a[0], a[1])
            low = min(a[2], b[2])
            positions[key] = min(positions.get(key, low), low)
    return positions


def _vertical_violations(
    net: str, stitches: StitchingLines, segments: list[WireSegment]
) -> list[Violation]:
    """Vertical wires running along a stitching line (must be zero)."""
    out: list[Violation] = []
    for seg in segments:
        if seg.orientation is Orientation.VERTICAL:
            line = stitches.line_index(seg.a.x)
            if line is not None:
                out.append(
                    Violation(
                        net,
                        "vertical",
                        line,
                        seg.a.x,
                        min(seg.a.y, seg.b.y),
                        seg.a.layer,
                    )
                )
    return out
