"""Congestion analysis: utilization statistics and text heat maps.

Downstream users tuning benchmark specs or router parameters need to
see *where* demand concentrates: per-edge wire utilization and per-tile
line-end utilization of a global routing result, and per-layer metal
utilization of a detailed routing result.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..detailed import DetailedResult
from ..globalroute import GlobalRoutingResult

#: Heat-map glyphs from empty to overflowing.
_GLYPHS = " .:-=+*#%@"


@dataclasses.dataclass(frozen=True)
class CongestionStats:
    """Aggregate utilization of one resource kind."""

    resource: str
    mean_utilization: float
    max_utilization: float
    overflowed: int
    total: int

    @property
    def overflow_fraction(self) -> float:
        """Share of resources above capacity."""
        return self.overflowed / self.total if self.total else 0.0


def global_congestion_stats(result: GlobalRoutingResult) -> list[CongestionStats]:
    """Edge and vertex utilization summary of a global routing."""
    graph = result.graph
    out: list[CongestionStats] = []
    for resource, demand, capacity in (
        ("horizontal edges", graph.h_demand, graph.h_capacity),
        ("vertical edges", graph.v_demand, graph.v_capacity),
        ("line ends (vertices)", graph.vertex_demand, graph.vertex_capacity),
    ):
        if demand.size == 0:
            out.append(CongestionStats(resource, 0.0, 0.0, 0, 0))
            continue
        safe_cap = np.maximum(capacity, 1)
        utilization = demand / safe_cap
        out.append(
            CongestionStats(
                resource=resource,
                mean_utilization=float(utilization.mean()),
                max_utilization=float(utilization.max()),
                overflowed=int(np.count_nonzero(demand > capacity)),
                total=int(demand.size),
            )
        )
    return out


def vertex_heatmap(result: GlobalRoutingResult) -> str:
    """Text heat map of per-tile line-end utilization.

    One glyph per tile, row 0 at the bottom; ``@`` marks saturation or
    overflow.
    """
    graph = result.graph
    capacity = np.maximum(graph.vertex_capacity, 1)
    utilization = graph.vertex_demand / capacity
    lines: list[str] = []
    for j in reversed(range(graph.ny)):
        row = []
        for i in range(graph.nx):
            level = min(int(utilization[i, j] * (len(_GLYPHS) - 1)), len(_GLYPHS) - 1)
            row.append(_GLYPHS[level])
        lines.append("".join(row))
    return "\n".join(lines)


def detailed_layer_utilization(result: DetailedResult) -> dict[int, float]:
    """Fraction of grid nodes occupied per layer after detailed routing."""
    design = result.design
    area = design.width * design.height
    counts: dict[int, int] = {m: 0 for m in design.technology.layers}
    for record in result.nets.values():
        for _x, _y, layer in record.nodes:
            counts[layer] = counts.get(layer, 0) + 1
    return {layer: counts[layer] / area for layer in sorted(counts)}
