"""Violation checking and routing metrics (the paper's table columns)."""

from .geometry import (
    Edge,
    canonical_edge,
    edges_to_segments,
    nodes_of_edges,
    path_edges,
    short_polygon_sites,
    trim_dangling,
    via_count,
    via_landing_points,
    wirelength,
)
from .congestion import (
    CongestionStats,
    detailed_layer_utilization,
    global_congestion_stats,
    vertex_heatmap,
)
from .violations import (
    VIOLATION_KINDS,
    NetReport,
    RoutingReport,
    Violation,
    evaluate,
)

__all__ = [
    "CongestionStats",
    "Edge",
    "NetReport",
    "detailed_layer_utilization",
    "global_congestion_stats",
    "vertex_heatmap",
    "RoutingReport",
    "VIOLATION_KINDS",
    "Violation",
    "canonical_edge",
    "edges_to_segments",
    "evaluate",
    "nodes_of_edges",
    "path_edges",
    "short_polygon_sites",
    "trim_dangling",
    "via_count",
    "via_landing_points",
    "wirelength",
]
