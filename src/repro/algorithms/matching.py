"""Minimum-weight perfect matching on complete bipartite graphs.

Used to merge the coloring groups of successive k-colorable vertex sets
in the proposed layer-assignment heuristic (Section III-B, Fig. 9d):
the two group families form the two sides, edge weights are the total
conflict edge weight between two groups, and a min-weight perfect
matching tells which groups to fuse.

This is the O(n^3) Hungarian algorithm (Jonker–Volgenant style row
reduction over a square cost matrix).
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def hungarian(cost: Sequence[Sequence[float]]) -> list[int]:
    """Solve the square assignment problem.

    Args:
        cost: an ``n x n`` matrix; ``cost[i][j]`` is the weight of
            assigning row ``i`` to column ``j``.

    Returns:
        ``assignment`` where ``assignment[i]`` is the column matched to
        row ``i``, minimizing the total cost.
    """
    n = len(cost)
    if any(len(row) != n for row in cost):
        raise ValueError("cost matrix must be square")
    if n == 0:
        return []

    # Potentials over rows (u) and columns (v); way[j] remembers the
    # previous column on the alternating path; p[j] is the row matched
    # to column j (0 is a virtual unmatched row; 1-based internally).
    INF = math.inf
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)
    way = [0] * (n + 1)
    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                current = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [0] * n
    for j in range(1, n + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    return assignment


def matching_cost(
    cost: Sequence[Sequence[float]], assignment: Sequence[int]
) -> float:
    """Total cost of ``assignment`` on ``cost``."""
    return sum(cost[i][j] for i, j in enumerate(assignment))
