"""Rectilinear Steiner tree construction (greedy 1-Steiner).

Multi-pin nets decompose into two-pin subnets for routing; the paper
uses a spanning-tree decomposition, and this module offers the
classic improvement: iteratively insert the Hanan grid point that most
reduces the rectilinear spanning tree length (Kahng/Robins greedy
1-Steiner), until no insertion helps.  The router exposes it as an
option — wirelength drops a few percent on multi-pin nets while every
experiment stays comparable with the paper's MST defaults.
"""

from __future__ import annotations

from collections.abc import Sequence

Point2 = tuple[int, int]


def manhattan(a: Point2, b: Point2) -> int:
    """Manhattan distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def mst_length(points: Sequence[Point2]) -> int:
    """Rectilinear spanning tree length of a point set (Prim)."""
    if len(points) < 2:
        return 0
    in_tree = [False] * len(points)
    dist = [manhattan(points[0], p) for p in points]
    in_tree[0] = True
    total = 0
    for _ in range(len(points) - 1):
        best = min(
            (i for i in range(len(points)) if not in_tree[i]),
            key=lambda i: dist[i],
        )
        total += dist[best]
        in_tree[best] = True
        for i in range(len(points)):
            if not in_tree[i]:
                d = manhattan(points[best], points[i])
                if d < dist[i]:
                    dist[i] = d
    return total


def mst_edges(points: Sequence[Point2]) -> list[tuple[Point2, Point2]]:
    """Rectilinear spanning tree edges of a point set (Prim)."""
    if len(points) < 2:
        return []
    n = len(points)
    in_tree = [False] * n
    dist = [manhattan(points[0], p) for p in points]
    parent = [0] * n
    in_tree[0] = True
    edges: list[tuple[Point2, Point2]] = []
    for _ in range(n - 1):
        best = min(
            (i for i in range(n) if not in_tree[i]), key=lambda i: dist[i]
        )
        edges.append((points[parent[best]], points[best]))
        in_tree[best] = True
        for i in range(n):
            if not in_tree[i]:
                d = manhattan(points[best], points[i])
                if d < dist[i]:
                    dist[i] = d
                    parent[i] = best
    return edges


def steiner_points(points: Sequence[Point2], max_rounds: int = 8) -> list[Point2]:
    """Greedy 1-Steiner: Hanan points that shorten the spanning tree.

    Returns the inserted Steiner points (possibly empty).  Each round
    evaluates every Hanan candidate and inserts the single best one;
    rounds repeat until no candidate helps or ``max_rounds`` is hit.
    """
    terminals = list(dict.fromkeys(points))
    if len(terminals) < 3:
        return []
    inserted: list[Point2] = []
    current = list(terminals)
    for _ in range(max_rounds):
        base = mst_length(current)
        xs = sorted({p[0] for p in current})
        ys = sorted({p[1] for p in current})
        best_gain = 0
        best_point = None
        occupied = set(current)
        for x in xs:
            for y in ys:
                candidate = (x, y)
                if candidate in occupied:
                    continue
                gain = base - mst_length(current + [candidate])
                if gain > best_gain:
                    best_gain = gain
                    best_point = candidate
        if best_point is None:
            break
        inserted.append(best_point)
        current.append(best_point)
    return inserted


def steiner_tree_edges(
    points: Sequence[Point2], max_rounds: int = 8
) -> list[tuple[Point2, Point2]]:
    """Spanning edges over terminals plus greedy Steiner points.

    The returned edges connect the augmented point set; their summed
    Manhattan length is never longer than the plain spanning tree.
    """
    terminals = list(dict.fromkeys(points))
    augmented = terminals + steiner_points(terminals, max_rounds)
    return mst_edges(augmented)
