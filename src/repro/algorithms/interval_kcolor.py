"""Max-weight k-colorable subsets of intervals (Carlisle–Lloyd).

Segment conflict graphs are interval graphs, so the NP-complete
max-weight k-colorable subgraph problem becomes polynomial: model the
x-axis as a path with capacity ``k`` and each interval as a bypass edge
of capacity 1 and cost ``-weight``, then a min-cost flow of ``k`` units
selects the maximum-weight subset that no point covers more than ``k``
times — together with an explicit k-coloring (the flow decomposes into
``k`` unit paths; intervals on one path are pairwise disjoint and share
a color).  This is the engine of the proposed layer-assignment
heuristic (Section III-B).
"""

from __future__ import annotations

from collections.abc import Sequence

from typing import Optional

from ..geometry import Interval, max_overlap_density
from .mincostflow import MinCostFlow


def max_weight_k_colorable(
    intervals: Sequence[Interval],
    weights: Sequence[float],
    k: int,
    stats: Optional[dict[str, float]] = None,
) -> tuple[list[int], dict[int, int]]:
    """Select a max-weight subset with overlap density <= ``k``.

    Args:
        intervals: candidate intervals (closed; endpoint sharing counts
            as overlap, matching the segment conflict graph).
        weights: one non-negative weight per interval.
        k: number of colors (routing layers) available.
        stats: optional accumulator; gains ``flow_augmentations`` and
            ``flow_nodes`` from the underlying min-cost flow.

    Returns:
        ``(selected, colors)`` — the selected interval indices in input
        order, and a color in ``range(k)`` for each selected index such
        that same-colored intervals are pairwise disjoint.
    """
    if len(intervals) != len(weights):
        raise ValueError("weights must match intervals")
    if k < 1:
        raise ValueError("k must be positive")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if not intervals:
        return [], {}

    coords = sorted(
        {iv.lo for iv in intervals} | {iv.hi + 1 for iv in intervals}
    )
    first, last = coords[0], coords[-1]

    net = MinCostFlow()
    for a, b in zip(coords, coords[1:]):
        net.add_edge(("x", a), ("x", b), capacity=k, cost=0.0)
    edge_ids: list[int] = []
    for idx, iv in enumerate(intervals):
        eid = net.add_edge(
            ("x", iv.lo), ("x", iv.hi + 1), capacity=1, cost=-float(weights[idx])
        )
        edge_ids.append(eid)

    flow, _ = net.min_cost_flow(("x", first), ("x", last), max_flow=k)
    assert flow == k, "spine edges guarantee k units can always flow"
    if stats is not None:
        stats["flow_augmentations"] = (
            stats.get("flow_augmentations", 0) + net.augmentations
        )
        stats["flow_nodes"] = stats.get("flow_nodes", 0) + net.num_nodes

    selected = [
        idx for idx, eid in enumerate(edge_ids) if net.flow_on(eid) > 0.5
    ]
    colors = _decompose_colors(net, intervals, edge_ids, coords, k)
    assert sorted(colors) == selected
    return selected, colors


def _decompose_colors(
    net: MinCostFlow,
    intervals: Sequence[Interval],
    edge_ids: Sequence[int],
    coords: Sequence[int],
    k: int,
) -> dict[int, int]:
    """Peel the flow into ``k`` unit paths; path index = color."""
    # Remaining flow per edge id, for interval edges only; spine flow is
    # implied (a unit path follows the spine wherever no interval edge
    # is taken), so we can greedily walk coordinates left to right and
    # jump along any interval edge with remaining flow.
    remaining: dict[int, int] = {
        idx: int(round(net.flow_on(eid)))
        for idx, eid in enumerate(edge_ids)
    }
    # Intervals starting at each coordinate, heaviest-flow first.
    starts: dict[int, list[int]] = {}
    for idx, iv in enumerate(intervals):
        if remaining[idx] > 0:
            starts.setdefault(iv.lo, []).append(idx)

    colors: dict[int, int] = {}
    for color in range(k):
        position = coords[0]
        while position <= coords[-1]:
            candidates = [
                idx for idx in starts.get(position, []) if remaining[idx] > 0
            ]
            if candidates:
                idx = candidates[0]
                remaining[idx] -= 1
                colors[idx] = color
                position = intervals[idx].hi + 1
            else:
                position += 1
    assert all(r == 0 for r in remaining.values())
    return colors


def is_k_colorable(intervals: Sequence[Interval], k: int) -> bool:
    """Whether the interval set admits a proper k-coloring.

    Interval graphs are perfect: chromatic number equals clique number,
    which is the maximum overlap density.
    """
    return max_overlap_density(intervals) <= k


def greedy_interval_coloring(
    intervals: Sequence[Interval],
) -> dict[int, int]:
    """Proper coloring with the minimum number of colors.

    Left-to-right greedy coloring is optimal on interval graphs; used
    by the conventional (non-stitch-aware) track assignment baseline.
    """
    order = sorted(range(len(intervals)), key=lambda i: intervals[i].lo)
    colors: dict[int, int] = {}
    # Active intervals per color: color -> rightmost occupied endpoint.
    busy_until: list[int] = []
    import heapq

    free: list[int] = []
    active: list[tuple[int, int]] = []  # (hi, color) heap
    for idx in order:
        iv = intervals[idx]
        while active and active[0][0] < iv.lo:
            _, color = heapq.heappop(active)
            heapq.heappush(free, color)
        if free:
            color = heapq.heappop(free)
        else:
            color = len(busy_until)
            busy_until.append(0)
        colors[idx] = color
        heapq.heappush(active, (iv.hi, color))
    return colors
