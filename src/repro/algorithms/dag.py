"""Directed acyclic graph utilities: topological order and longest path.

The graph-based track assignment (Section III-C2) computes, for every
interval, the minimum and maximum feasible track via *longest path* in
the min/max track constraint graphs — both DAGs because "left of"
induces a partial order on non-overlapping intervals.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

Edge = tuple[Hashable, Hashable, float]


class CycleError(ValueError):
    """Raised when a supposed DAG contains a cycle."""


def topological_order(
    vertices: Sequence[Hashable], edges: Iterable[Edge]
) -> list[Hashable]:
    """Kahn's algorithm; raises :class:`CycleError` on cycles."""
    indegree: dict[Hashable, int] = {v: 0 for v in vertices}
    out: dict[Hashable, list[Hashable]] = {v: [] for v in vertices}
    for u, v, _ in edges:
        out[u].append(v)
        indegree[v] += 1
    queue = [v for v in vertices if indegree[v] == 0]
    order: list[Hashable] = []
    while queue:
        node = queue.pop()
        order.append(node)
        for succ in out[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if len(order) != len(indegree):
        raise CycleError("graph contains a cycle")
    return order


def longest_path_lengths(
    vertices: Sequence[Hashable],
    edges: Sequence[Edge],
    sources: Iterable[Hashable],
) -> dict[Hashable, float]:
    """Longest path distance from any source to every reachable vertex.

    Unreachable vertices are absent from the result.  Edge weights may
    be any floats; the graph must be acyclic.
    """
    order = topological_order(vertices, edges)
    out: dict[Hashable, list[tuple[Hashable, float]]] = {v: [] for v in vertices}
    for u, v, w in edges:
        out[u].append((v, w))
    dist: dict[Hashable, float] = {s: 0.0 for s in sources}
    for node in order:
        if node not in dist:
            continue
        base = dist[node]
        for succ, weight in out[node]:
            candidate = base + weight
            if succ not in dist or candidate > dist[succ]:
                dist[succ] = candidate
    return dist
