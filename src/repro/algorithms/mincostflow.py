"""Min-cost max-flow via successive shortest paths with potentials.

The paper solves two subproblems with the LEDA library: the max-weight
k-colorable vertex set on interval graphs (a min-cost flow problem,
Carlisle–Lloyd) and the min-weight perfect bipartite matching used to
merge coloring groups.  This is our from-scratch replacement: a
successive-shortest-path MCMF with Johnson potentials.  Negative edge
costs are supported (needed because interval weights enter as negated
costs); the first potential computation falls back to Bellman–Ford.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Hashable


class MinCostFlow:
    """A directed flow network over arbitrary hashable node names."""

    def __init__(self) -> None:
        self._index: dict[Hashable, int] = {}
        # Edge arrays: to, capacity (residual), cost; paired edges i, i^1.
        self._to: list[int] = []
        self._cap: list[float] = []
        self._cost: list[float] = []
        self._adj: list[list[int]] = []
        self._initial_cap: list[float] = []
        self._has_negative = False
        #: Augmenting paths pushed by :meth:`min_cost_flow` so far — the
        #: observable unit of work of the successive-shortest-path loop.
        self.augmentations = 0

    def node(self, name: Hashable) -> int:
        """Index of ``name``, creating the node if new."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._adj)
            self._index[name] = idx
            self._adj.append([])
        return idx

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._adj)

    def add_edge(
        self, u: Hashable, v: Hashable, capacity: float, cost: float
    ) -> int:
        """Add a directed edge; returns its id for :meth:`flow_on`."""
        if capacity < 0:
            raise ValueError("edge capacity must be non-negative")
        ui, vi = self.node(u), self.node(v)
        if cost < 0:
            self._has_negative = True
        edge_id = len(self._to)
        self._to.append(vi)
        self._cap.append(capacity)
        self._cost.append(cost)
        self._initial_cap.append(capacity)
        self._adj[ui].append(edge_id)
        self._to.append(ui)
        self._cap.append(0.0)
        self._cost.append(-cost)
        self._initial_cap.append(0.0)
        self._adj[vi].append(edge_id + 1)
        return edge_id

    def flow_on(self, edge_id: int) -> float:
        """Flow currently routed through the edge ``edge_id``."""
        return self._initial_cap[edge_id] - self._cap[edge_id]

    def min_cost_flow(
        self, source: Hashable, sink: Hashable, max_flow: float = math.inf
    ) -> tuple[float, float]:
        """Send up to ``max_flow`` units at minimum cost.

        Returns ``(flow_sent, total_cost)``.  Stops early when the
        cheapest augmenting path has positive... no: stops when the sink
        is unreachable or the requested flow is satisfied (classic MCMF
        semantics; callers wanting "profitable-only" flow should bound
        ``max_flow`` or add a zero-cost bypass).
        """
        s, t = self.node(source), self.node(sink)
        n = self.num_nodes
        potential = [0.0] * n
        if self._has_negative:
            potential = self._bellman_ford(s)
        flow_sent = 0.0
        total_cost = 0.0
        while flow_sent < max_flow:
            dist, parent_edge = self._dijkstra(s, potential)
            if dist[t] == math.inf:
                break
            for i in range(n):
                if dist[i] < math.inf:
                    potential[i] += dist[i]
            # Find bottleneck along the s->t path.
            push = max_flow - flow_sent
            node = t
            while node != s:
                eid = parent_edge[node]
                push = min(push, self._cap[eid])
                node = self._to[eid ^ 1]
            node = t
            while node != s:
                eid = parent_edge[node]
                self._cap[eid] -= push
                self._cap[eid ^ 1] += push
                total_cost += push * self._cost[eid]
                node = self._to[eid ^ 1]
            flow_sent += push
            self.augmentations += 1
        return flow_sent, total_cost

    def _dijkstra(
        self, source: int, potential: list[float]
    ) -> tuple[list[float], list[int]]:
        n = self.num_nodes
        dist = [math.inf] * n
        parent_edge = [-1] * n
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist[node]:
                continue
            for eid in self._adj[node]:
                if self._cap[eid] <= 1e-12:
                    continue
                succ = self._to[eid]
                reduced = self._cost[eid] + potential[node] - potential[succ]
                candidate = d + reduced
                if candidate < dist[succ] - 1e-12:
                    dist[succ] = candidate
                    parent_edge[succ] = eid
                    heapq.heappush(heap, (candidate, succ))
        return dist, parent_edge

    def _bellman_ford(self, source: int) -> list[float]:
        n = self.num_nodes
        dist = [math.inf] * n
        dist[source] = 0.0
        for _ in range(n - 1):
            changed = False
            for node in range(n):
                if dist[node] == math.inf:
                    continue
                for eid in self._adj[node]:
                    if self._cap[eid] <= 1e-12:
                        continue
                    succ = self._to[eid]
                    candidate = dist[node] + self._cost[eid]
                    if candidate < dist[succ] - 1e-12:
                        dist[succ] = candidate
                        changed = True
            if not changed:
                break
        return [0.0 if d == math.inf else d for d in dist]
