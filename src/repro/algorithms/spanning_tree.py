"""Maximum spanning forests and tree k-coloring.

These implement the *baseline* layer-assignment heuristic of Chen et al.
(reference [4] of the paper): build a maximum spanning tree of the
segment conflict graph, then k-color the tree by depth so that
heavy-weight conflict edges connect differently colored vertices.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from .unionfind import DisjointSet

Edge = tuple[Hashable, Hashable, float]


def maximum_spanning_forest(
    vertices: Sequence[Hashable], edges: Sequence[Edge]
) -> list[Edge]:
    """Kruskal maximum-weight spanning forest.

    Returns the chosen edges; isolated vertices simply contribute no
    edges.  Ties are broken deterministically by edge order after the
    stable sort.
    """
    ds = DisjointSet(vertices)
    chosen: list[Edge] = []
    for u, v, w in sorted(edges, key=lambda e: -e[2]):
        if ds.union(u, v):
            chosen.append((u, v, w))
    return chosen


def color_forest_by_depth(
    vertices: Sequence[Hashable], tree_edges: Sequence[Edge], k: int
) -> dict[Hashable, int]:
    """Color a forest with ``k`` colors by BFS depth modulo ``k``.

    This is the tree-coloring rule of the maximum-spanning-tree
    heuristic: each tree level gets the next color, so every tree edge
    is bichromatic for any ``k >= 2``.  Roots are the smallest vertex of
    each component (by repr ordering) for determinism.
    """
    if k < 2:
        raise ValueError("tree coloring needs at least two colors")
    adjacency: dict[Hashable, list[Hashable]] = {v: [] for v in vertices}
    for u, v, _ in tree_edges:
        adjacency[u].append(v)
        adjacency[v].append(u)

    colors: dict[Hashable, int] = {}
    for root in sorted(adjacency, key=repr):
        if root in colors:
            continue
        colors[root] = 0
        frontier = [root]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: list[Hashable] = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor not in colors:
                        colors[neighbor] = depth % k
                        next_frontier.append(neighbor)
            frontier = next_frontier
    return colors


def coloring_cost(
    edges: Sequence[Edge], colors: dict[Hashable, int]
) -> float:
    """Total weight of monochromatic edges under ``colors``.

    This is the layer-assignment cost of Section IV-C: the total
    conflict edge weight *not* cut by the coloring — smaller is better.
    """
    return sum(w for u, v, w in edges if colors[u] == colors[v])
