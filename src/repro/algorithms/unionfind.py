"""Disjoint-set (union-find) with path compression and union by rank."""

from __future__ import annotations

from collections.abc import Hashable, Iterable


class DisjointSet:
    """Classic union-find over arbitrary hashable items.

    Items are added lazily on first use.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def find(self, item: Hashable) -> Hashable:
        """Representative of ``item``'s set (adds the item if unseen)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def __len__(self) -> int:
        return len(self._parent)
