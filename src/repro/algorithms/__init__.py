"""From-scratch combinatorial algorithm substrates.

Replaces the LEDA / CPLEX dependencies of the original implementation:
union-find, maximum spanning forests, DAG longest paths, min-cost
max-flow, Hungarian matching, and Carlisle–Lloyd interval k-coloring.
"""

from .dag import CycleError, longest_path_lengths, topological_order
from .interval_kcolor import (
    greedy_interval_coloring,
    is_k_colorable,
    max_weight_k_colorable,
)
from .matching import hungarian, matching_cost
from .mincostflow import MinCostFlow
from .steiner import (
    manhattan,
    mst_edges,
    mst_length,
    steiner_points,
    steiner_tree_edges,
)
from .spanning_tree import (
    color_forest_by_depth,
    coloring_cost,
    maximum_spanning_forest,
)
from .unionfind import DisjointSet

__all__ = [
    "CycleError",
    "DisjointSet",
    "MinCostFlow",
    "color_forest_by_depth",
    "coloring_cost",
    "greedy_interval_coloring",
    "hungarian",
    "is_k_colorable",
    "longest_path_lengths",
    "manhattan",
    "matching_cost",
    "max_weight_k_colorable",
    "maximum_spanning_forest",
    "mst_edges",
    "mst_length",
    "steiner_points",
    "steiner_tree_edges",
    "topological_order",
]
