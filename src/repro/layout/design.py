"""The routing problem instance: netlist + grid + layers + stitching lines.

A :class:`Design` corresponds to one row of Table I/II: a die (in grid
pitches), a layer stack, a netlist, and the uniformly distributed
stitching lines of the MEBL writing strategy.
"""

from __future__ import annotations

import dataclasses

from ..config import RouterConfig
from ..geometry import Point, Rect
from .netlist import Netlist
from .stitch import StitchingLines
from .technology import Technology


@dataclasses.dataclass
class Design:
    """A complete stitch-aware routing instance (Problem 1).

    Attributes:
        name: circuit name (e.g. ``"S38417"``).
        width: die width in routing pitches (number of vertical tracks).
        height: die height in pitches (number of horizontal tracks).
        technology: layer stack.
        netlist: the nets to route.
        stitches: stitching-line set; built uniformly from ``config``
            when not supplied.
        config: framework parameters.
    """

    name: str
    width: int
    height: int
    technology: Technology
    netlist: Netlist
    config: RouterConfig = dataclasses.field(default_factory=RouterConfig)
    stitches: StitchingLines | None = None

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("design must span at least a 2x2 grid")
        if self.stitches is None:
            self.stitches = StitchingLines.uniform(self.width, self.config)
        for pin in self.netlist.pins:
            if not self.bounds.contains(pin.location):
                raise ValueError(
                    f"pin {pin.name!r} at {pin.location} outside die "
                    f"{self.width}x{self.height}"
                )
            if not 1 <= pin.layer <= self.technology.num_layers:
                raise ValueError(
                    f"pin {pin.name!r} on invalid layer {pin.layer}"
                )

    @property
    def bounds(self) -> Rect:
        """The die rectangle in grid coordinates."""
        return Rect(0, 0, self.width - 1, self.height - 1)

    @property
    def num_nets(self) -> int:
        """Number of nets."""
        return len(self.netlist)

    @property
    def num_pins(self) -> int:
        """Total pin count."""
        return self.netlist.num_pins

    def pin_on_stitch_line(self, location: Point) -> bool:
        """Whether a pin at ``location`` sits on a stitching line.

        Connecting such a pin requires a via cut by the line — a via
        violation that Problem 1 permits only on fixed pins.
        """
        assert self.stitches is not None
        return self.stitches.is_on_line(location.x)

    def summary(self) -> dict:
        """One Table I/II row for this design."""
        return {
            "circuit": self.name,
            "size": f"{self.width}x{self.height}",
            "layers": self.technology.num_layers,
            "nets": self.num_nets,
            "pins": self.num_pins,
            "stitch_lines": len(self.stitches or ()),
        }
