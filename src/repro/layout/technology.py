"""Routing technology: layer stack and preferred directions.

The paper's testcases use 3 metal layers (MCNC) or 6 (Faraday) with
alternating preferred directions.  We follow the common HVH convention:
layer 1 is horizontal, layer 2 vertical, layer 3 horizontal, and so on.
Stitch-aware track assignment only acts on *vertical* (column-panel)
layers because short polygons arise from vertical-segment line ends
(Section III-C).
"""

from __future__ import annotations

import dataclasses
import enum


class Direction(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


@dataclasses.dataclass(frozen=True)
class Technology:
    """Layer-stack description.

    Attributes:
        num_layers: number of routing layers (>= 2).
        first_direction: preferred direction of layer 1; layers then
            alternate.  The paper's figures show horizontal wires on the
            lowest drawn layer, so the default is HVH.
    """

    num_layers: int
    first_direction: Direction = Direction.HORIZONTAL

    def __post_init__(self) -> None:
        if self.num_layers < 2:
            raise ValueError("at least two routing layers are required")

    def direction(self, layer: int) -> Direction:
        """Preferred direction of 1-based ``layer``."""
        self._check_layer(layer)
        flip = (layer - 1) % 2 == 1
        if flip:
            return (
                Direction.VERTICAL
                if self.first_direction is Direction.HORIZONTAL
                else Direction.HORIZONTAL
            )
        return self.first_direction

    def is_horizontal(self, layer: int) -> bool:
        """Whether ``layer`` routes in the x direction."""
        return self.direction(layer) is Direction.HORIZONTAL

    def is_vertical(self, layer: int) -> bool:
        """Whether ``layer`` routes in the y direction."""
        return self.direction(layer) is Direction.VERTICAL

    @property
    def layers(self) -> range:
        """Iterable of 1-based layer indices."""
        return range(1, self.num_layers + 1)

    @property
    def horizontal_layers(self) -> list[int]:
        """All layers whose preferred direction is horizontal."""
        return [m for m in self.layers if self.is_horizontal(m)]

    @property
    def vertical_layers(self) -> list[int]:
        """All layers whose preferred direction is vertical."""
        return [m for m in self.layers if self.is_vertical(m)]

    def _check_layer(self, layer: int) -> None:
        if not 1 <= layer <= self.num_layers:
            raise ValueError(
                f"layer {layer} outside stack of {self.num_layers} layers"
            )
