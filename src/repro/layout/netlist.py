"""Netlist model: pins, nets, and the netlist container.

Pins are fixed terminals on layer 1 (the standard-cell pin layer in the
paper's benchmarks).  Via violations are allowed *only* on fixed pins
(Problem 1), which is why the generator may legitimately place pins on
stitching lines — those become the unavoidable #VV counts of Tables
III/VII/VIII.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from ..geometry import Point, Rect


@dataclasses.dataclass(frozen=True)
class Pin:
    """A fixed net terminal at a grid location on a given layer."""

    name: str
    location: Point
    layer: int = 1


@dataclasses.dataclass(frozen=True)
class Net:
    """A named net connecting two or more pins."""

    name: str
    pins: tuple[Pin, ...]

    def __post_init__(self) -> None:
        if len(self.pins) < 2:
            raise ValueError(f"net {self.name!r} needs at least two pins")
        object.__setattr__(self, "pins", tuple(self.pins))

    @property
    def num_pins(self) -> int:
        """Number of terminals."""
        return len(self.pins)

    @property
    def bbox(self) -> Rect:
        """Bounding box of the pin locations."""
        xs = [p.location.x for p in self.pins]
        ys = [p.location.y for p in self.pins]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def hpwl(self) -> int:
        """Half-perimeter wirelength of the pin bounding box."""
        box = self.bbox
        return (box.hi_x - box.lo_x) + (box.hi_y - box.lo_y)


@dataclasses.dataclass
class Netlist:
    """A container of nets with name-based lookup."""

    nets: list[Net]

    def __post_init__(self) -> None:
        names = [n.name for n in self.nets]
        if len(names) != len(set(names)):
            raise ValueError("duplicate net names in netlist")
        self._by_name = {n.name: n for n in self.nets}

    def __len__(self) -> int:
        return len(self.nets)

    def __iter__(self) -> Iterator[Net]:
        return iter(self.nets)

    def __getitem__(self, name: str) -> Net:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def num_pins(self) -> int:
        """Total number of pins across all nets."""
        return sum(n.num_pins for n in self.nets)

    @property
    def pins(self) -> list[Pin]:
        """All pins of all nets."""
        return [p for n in self.nets for p in n.pins]

    def bbox(self) -> Rect:
        """Bounding box of every pin in the netlist."""
        if not self.nets:
            raise ValueError("empty netlist has no bounding box")
        box = self.nets[0].bbox
        for net in self.nets[1:]:
            box = box.union_bbox(net.bbox)
        return box
