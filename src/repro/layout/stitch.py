"""Stitching lines and stitch-unfriendly regions.

In MEBL the layout is written in vertical stripes (Fig. 1a); the stripe
boundaries are *stitching lines* at fixed x coordinates.  Around each
line lies a *stitch unfriendly region* of half-width ``epsilon`` tracks
(Fig. 5c) where vertical-segment line ends with landing vias create
short polygons, plus a wider *escape region* (Section III-D1) whose
routing resources the detailed router tries to reserve.
"""

from __future__ import annotations

import bisect
import dataclasses

from ..config import RouterConfig
from ..geometry import Interval


@dataclasses.dataclass(frozen=True)
class StitchingLines:
    """An ordered set of vertical stitching lines.

    Attributes:
        xs: strictly increasing stitching-line x coordinates (in pitches).
        epsilon: half-width of the stitch unfriendly region, in tracks.
        escape_width: width of the escape region on each side, in tracks.
    """

    xs: tuple[int, ...]
    epsilon: int = 1
    escape_width: int = 4

    def __post_init__(self) -> None:
        xs = tuple(self.xs)
        if list(xs) != sorted(set(xs)):
            raise ValueError("stitching line xs must be strictly increasing")
        object.__setattr__(self, "xs", xs)
        if self.epsilon < 0 or self.escape_width < 0:
            raise ValueError("epsilon and escape_width must be non-negative")

    @classmethod
    def uniform(
        cls, width: int, config: RouterConfig | None = None
    ) -> "StitchingLines":
        """Uniformly distributed lines over a layout of ``width`` pitches.

        Following Section IV, lines are spaced ``config.stitch_spacing``
        pitches apart, starting one spacing in from the left edge.
        """
        config = config or RouterConfig()
        spacing = config.stitch_spacing
        xs = tuple(range(spacing, width, spacing))
        return cls(xs, epsilon=config.epsilon, escape_width=config.escape_width)

    def __len__(self) -> int:
        return len(self.xs)

    def __iter__(self):
        return iter(self.xs)

    def is_on_line(self, x: int) -> bool:
        """Whether ``x`` coincides with a stitching line."""
        i = bisect.bisect_left(self.xs, x)
        return i < len(self.xs) and self.xs[i] == x

    def line_index(self, x: int) -> int | None:
        """Index of the stitching line at ``x`` (``None`` if not a line).

        Violation attribution keys its per-line histograms by this
        index; it is stable under design rescaling of the line
        coordinates while ``x`` itself is not.
        """
        i = bisect.bisect_left(self.xs, x)
        if i < len(self.xs) and self.xs[i] == x:
            return i
        return None

    def nearest_line(self, x: int) -> int | None:
        """The stitching line x closest to ``x`` (ties to the left)."""
        if not self.xs:
            return None
        i = bisect.bisect_left(self.xs, x)
        candidates = []
        if i > 0:
            candidates.append(self.xs[i - 1])
        if i < len(self.xs):
            candidates.append(self.xs[i])
        return min(candidates, key=lambda s: (abs(s - x), s))

    def distance_to_line(self, x: int) -> int | None:
        """Distance from ``x`` to the nearest stitching line."""
        line = self.nearest_line(x)
        if line is None:
            return None
        return abs(x - line)

    def in_unfriendly_region(self, x: int) -> bool:
        """Whether track ``x`` lies in a stitch unfriendly region.

        The region includes the line itself and ``epsilon`` tracks on
        each side.
        """
        d = self.distance_to_line(x)
        return d is not None and d <= self.epsilon

    def in_escape_region(self, x: int) -> bool:
        """Whether track ``x`` lies in an escape region.

        The escape region is the ``escape_width`` tracks nearest to a
        stitching line on each side, excluding the line itself (which is
        unusable anyway).
        """
        d = self.distance_to_line(x)
        return d is not None and 1 <= d <= self.escape_width

    def lines_crossing(self, span: Interval) -> list[int]:
        """Stitching lines strictly inside the x span ``[lo, hi]``.

        A wire whose x extent is ``span`` is *cut* by each of these
        lines.  Lines at the exact endpoints do not cut the wire into
        two polygons and are excluded.
        """
        lo = bisect.bisect_right(self.xs, span.lo)
        hi = bisect.bisect_left(self.xs, span.hi)
        return list(self.xs[lo:hi])

    def lines_in_range(self, lo: int, hi: int) -> list[int]:
        """Stitching lines with ``lo <= x <= hi``."""
        i = bisect.bisect_left(self.xs, lo)
        j = bisect.bisect_right(self.xs, hi)
        return list(self.xs[i:j])

    def usable_vertical_tracks(self, lo: int, hi: int) -> int:
        """Tracks in ``[lo, hi]`` not occupied by a stitching line.

        This is the vertical edge capacity of a global tile column
        (Fig. 7b): the stitching-line track itself is unusable.
        """
        total = hi - lo + 1
        return total - len(self.lines_in_range(lo, hi))

    def friendly_vertical_tracks(self, lo: int, hi: int) -> int:
        """Tracks in ``[lo, hi]`` outside every stitch unfriendly region.

        This is the *vertex capacity* of a global tile: the number of
        vertical tracks on which a segment line end does not risk a
        short polygon (Section III-A).
        """
        return sum(
            1 for x in range(lo, hi + 1) if not self.in_unfriendly_region(x)
        )


def stitch_lines_for_width(
    width: int, config: RouterConfig | None = None
) -> StitchingLines:
    """Convenience wrapper for :meth:`StitchingLines.uniform`."""
    return StitchingLines.uniform(width, config)
