"""Layout model: technology, stitching lines, netlist, design instance."""

from .design import Design
from .netlist import Net, Netlist, Pin
from .stitch import StitchingLines, stitch_lines_for_width
from .technology import Direction, Technology

__all__ = [
    "Design",
    "Direction",
    "Net",
    "Netlist",
    "Pin",
    "StitchingLines",
    "Technology",
    "stitch_lines_for_width",
]
