"""Conflict-aware net batching for parallel routing.

Negotiation-based routers are order-sensitive: net *n* prices its path
against the demand left by nets 1..n-1, so running nets concurrently
silently changes the result unless their searches cannot observe each
other.  The stripe/panel locality of the MEBL layout (and of routed
layouts in general) makes that separation natural: most nets are local,
and two nets whose *expanded* bounding boxes are disjoint read and
write disjoint parts of the routing state.

:func:`plan_batches` partitions an ordered net list into **batches**:

* nets inside one batch have pairwise-disjoint expanded bboxes and may
  route concurrently;
* nets whose expanded bboxes overlap keep their original relative order
  across batches (the later net lands in a strictly later batch, so it
  sees the earlier net's demand exactly as the serial router would);
* batch indices are **monotone in input order**, so each batch is a
  contiguous run of the input and concatenating the batches reproduces
  the input exactly.

The contiguity invariant is load-bearing.  The expansion margin bounds
how far a net's search is *expected* to read beyond its bbox, but
searches can escalate past it (window growth, full-grid fallback), and
the routers' merge-time footprint validation only compares a net
against its own batch-mates.  With contiguous batches every write a
net can observe from an *earlier* batch belongs to a
canonically-earlier net committed before the batch froze — exactly the
state the serial router would have shown it, escalated windows
included.  Backfilling a later net into an earlier batch (the tempting
throughput optimisation) breaks that: the net could observe, or fail
to observe, nets it straddles in canonical order, and no per-batch
check can tell.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator, Sequence
from typing import TYPE_CHECKING, TypeVar, overload

from ..geometry.interval import Interval

if TYPE_CHECKING:
    from ..layout import Net

T = TypeVar("T")

#: An inclusive axis-aligned rectangle ``(lo_x, lo_y, hi_x, hi_y)``.
Rect = tuple[int, int, int, int]


def expand_rect(rect: Rect, margin: int) -> Rect:
    """``rect`` grown by ``margin`` on every side (negative shrinks)."""
    lo_x, lo_y, hi_x, hi_y = rect
    return (lo_x - margin, lo_y - margin, hi_x + margin, hi_y + margin)


def rects_overlap(a: Rect, b: Rect) -> bool:
    """Whether two inclusive rectangles share at least one point.

    A rectangle overlap is two independent closed-interval overlaps —
    the 1-D law :meth:`~repro.geometry.interval.Interval.overlaps` the
    planner (and its property suite) relies on.
    """
    return Interval(a[0], a[2]).overlaps(Interval(b[0], b[2])) and Interval(
        a[1], a[3]
    ).overlaps(Interval(b[1], b[3]))


@dataclasses.dataclass
class BatchPlan(Sequence["list[T]"]):
    """The planner's output: ordered batches of concurrently-safe items.

    Attributes:
        batches: the partition, in execution order; each batch is a
            contiguous run of the input, so concatenating them
            reproduces the input exactly.
        expand: the margin the item rects were grown by.
    """

    batches: list[list[T]]
    expand: int = 0

    def __len__(self) -> int:
        return len(self.batches)

    @overload
    def __getitem__(self, index: int) -> list[T]: ...

    @overload
    def __getitem__(self, index: slice) -> Sequence[list[T]]: ...

    def __getitem__(self, index):  # type: ignore[no-untyped-def]
        return self.batches[index]

    def __iter__(self) -> Iterator[list[T]]:
        return iter(self.batches)

    @property
    def num_items(self) -> int:
        """Total items over all batches."""
        return sum(len(b) for b in self.batches)

    @property
    def max_width(self) -> int:
        """Size of the widest batch (1 = fully serialized)."""
        return max((len(b) for b in self.batches), default=0)

    @property
    def mean_width(self) -> float:
        """Average batch size — the plan's available parallelism."""
        if not self.batches:
            return 0.0
        return self.num_items / len(self.batches)

    @property
    def parallel_items(self) -> int:
        """Items in batches of width > 1 (candidates for worker threads)."""
        return sum(len(b) for b in self.batches if len(b) > 1)


class _SpatialHash:
    """Coarse-cell index of rects for overlap queries.

    Buckets rects by the cells they cover; a query visits only the
    buckets its own rect covers, so planning stays near-linear for the
    local-net-dominated distributions routers actually see.
    """

    def __init__(self, cell: int) -> None:
        self._cell = max(1, cell)
        self._buckets: dict[tuple[int, int], list[int]] = {}

    def _cells(self, rect: Rect) -> Iterator[tuple[int, int]]:
        c = self._cell
        for cx in range(rect[0] // c, rect[2] // c + 1):
            for cy in range(rect[1] // c, rect[3] // c + 1):
                yield (cx, cy)

    def add(self, rect: Rect, index: int) -> None:
        for cell in self._cells(rect):
            self._buckets.setdefault(cell, []).append(index)

    def query(self, rect: Rect) -> Iterator[int]:
        """Indices of previously added rects that may overlap ``rect``."""
        seen = set()
        for cell in self._cells(rect):
            for index in self._buckets.get(cell, ()):
                if index not in seen:
                    seen.add(index)
                    yield index


def plan_batches(
    items: Sequence[T],
    rect_of: Callable[[T], Rect],
    expand: int = 0,
    cell: int = 32,
) -> BatchPlan[T]:
    """Partition ``items`` into conflict-free batches.

    Args:
        items: the nets (or any work units) in canonical serial order.
        rect_of: maps an item to its inclusive bounding rectangle.
        expand: margin added to every rect before overlap testing —
            the search-window allowance around a net's bbox.
        cell: spatial-hash bucket edge length (tuning only).

    Returns:
        A :class:`BatchPlan`.  Each item lands in the earliest batch
        that keeps every invariant: no overlap with a batch-mate,
        strictly after every earlier item it overlaps, and never in an
        earlier batch than any earlier item.
    """
    rects: list[Rect] = []
    batch_index: list[int] = []
    batches: list[list[T]] = []
    index = _SpatialHash(cell)
    for i, item in enumerate(items):
        rect = expand_rect(rect_of(item), expand)
        # Batch indices are monotone in input order: an item never
        # lands in an earlier batch than its predecessor, so batches
        # are contiguous runs of the canonical order.  Backfilling a
        # later item into an earlier batch would commit it before
        # canonically-earlier items in between — sound only while
        # every search stays inside the expansion margin, which
        # window-escalated searches do not.
        target = batch_index[-1] if batch_index else 0
        # The item must also come strictly after every earlier
        # overlapping item: its search would otherwise miss their
        # demand.
        for j in index.query(rect):
            if rects_overlap(rect, rects[j]):
                target = max(target, batch_index[j] + 1)
        rects.append(rect)
        batch_index.append(target)
        index.add(rect, i)
        while len(batches) <= target:
            batches.append([])
        batches[target].append(item)
    return BatchPlan(batches=batches, expand=expand)


def net_rect(net: Net) -> Rect:
    """Inclusive pin bounding box of a :class:`~repro.layout.Net`."""
    box = net.bbox
    return (box.lo_x, box.lo_y, box.hi_x, box.hi_y)
