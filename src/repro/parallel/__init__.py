"""Parallel net-batch routing: conflict-aware planner and worker pool.

The scheduling half of ``RouterConfig(workers=N)``: nets are grouped
into conflict-free batches (:mod:`~repro.parallel.batching`) and run by
an order-preserving worker pool — thread-based
(:mod:`~repro.parallel.executor`) or process-based with shared-memory
state transport (:mod:`~repro.parallel.process`,
:mod:`~repro.parallel.shared_state`), selected by
``RouterConfig(executor=...)``.  The
routing passes speculate each batched net against copy-on-write state
(:class:`repro.globalroute.overlay.GraphSnapshot`,
:class:`repro.detailed.overlay.GridOverlay`) and merge results back in
canonical serial order with read/write-footprint validation — so the
final routing result is byte-identical to the serial router's,
independent of thread scheduling.  ``docs/parallelism.md`` walks
through the model.
"""

from .batching import (
    BatchPlan,
    Rect,
    expand_rect,
    net_rect,
    plan_batches,
    rects_overlap,
)
from .executor import BatchExecutor, validate_workers
from .process import ProcessBatchExecutor
from .shared_state import (
    SharedArraySpec,
    SharedStateChannel,
    active_segments,
)

__all__ = [
    "BatchExecutor",
    "BatchPlan",
    "ProcessBatchExecutor",
    "Rect",
    "SharedArraySpec",
    "SharedStateChannel",
    "active_segments",
    "expand_rect",
    "net_rect",
    "plan_batches",
    "rects_overlap",
    "validate_workers",
]
