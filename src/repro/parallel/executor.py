"""Worker-pool execution of net batches.

A thin, deterministic wrapper around :class:`concurrent.futures`.
Results always come back in submission order — thread scheduling can
never reorder them — and per-task busy times are accumulated so the
routing stages can report worker utilization
(:meth:`BatchExecutor.utilization`).

The pool is thread-based: workers only *read* shared routing state
(their writes go to per-net overlays, see :mod:`repro.parallel.overlay`),
which process pools would have to pickle wholesale.  Pure-Python search
loops contend on the GIL, so the wall-clock win grows with the share of
time spent in C extensions (numpy) and shrinks toward parity on
interpreter-bound workloads — ``docs/parallelism.md`` discusses when to
raise ``workers``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Sequence
from typing import Optional, TypeVar

from ..analysis.context import context
from ..analysis.pairing import paired

T = TypeVar("T")
R = TypeVar("R")


def validate_workers(workers: int) -> None:
    """Reject pool widths below 2 with the shared diagnostic.

    Both batch executors (:class:`BatchExecutor` and
    :class:`~repro.parallel.process.ProcessBatchExecutor`) raise the
    same :class:`ValueError` message: ``workers=1`` callers must keep
    the serial code path and never build a pool.
    """
    if workers < 2:
        raise ValueError(f"batch executor needs workers >= 2, got {workers}")


class BatchExecutor:
    """Orders-preserving thread-pool runner with utilization accounting.

    Args:
        workers: pool size; must be at least 2 (``workers=1`` callers
            must keep the serial code path and never build a pool).
        on_task: optional per-task completion hook, called as
            ``on_task(task_index, busy_seconds)`` *on the calling
            thread* after each pooled batch resolves, in submission
            order — the canonical fan-in point for live-progress
            consumers (:meth:`~repro.observe.Tracer.progress`), which
            must never be reached from worker threads.  ``task_index``
            is the global dispatch index (continues across batches).
            Inline single-item batches bypass the hook, exactly as they
            bypass the pool's task accounting.
    """

    #: Backend discriminator (``"process"`` on the multiprocessing twin).
    kind = "thread"

    def __init__(
        self,
        workers: int,
        on_task: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        validate_workers(workers)
        self.workers = workers
        self.on_task = on_task
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Tasks dispatched through the pool (width-1 batches bypass it).
        self.tasks = 0
        #: Batches dispatched through the pool.
        self.batches = 0
        #: Summed per-task wall time (the "busy" numerator).
        self.busy_seconds = 0.0
        #: Summed ``workers * batch_wall`` (the capacity denominator).
        self.capacity_seconds = 0.0

    # ------------------------------------------------------------------
    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Tear down the pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    @context("canonical")
    @paired("batch-executor", backend="thread")
    def run(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item concurrently; results in item order.

        A single-item batch runs inline on the calling thread — the
        pool only pays off when there is actual width.  Worker
        exceptions propagate to the caller (the same crash the serial
        loop would have raised).
        """
        if len(items) == 1:
            return [fn(items[0])]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-route",
            )
        timed_results: list[tuple[R, float]] = []

        def timed(item: T) -> tuple[R, float]:
            start = time.perf_counter()
            result = fn(item)
            return result, time.perf_counter() - start

        batch_start = time.perf_counter()
        futures = [self._pool.submit(timed, item) for item in items]
        try:
            timed_results = [f.result() for f in futures]
        finally:
            for f in futures:
                f.cancel()
        batch_wall = time.perf_counter() - batch_start
        base_index = self.tasks
        self.batches += 1
        self.tasks += len(items)
        self.busy_seconds += sum(busy for _, busy in timed_results)
        self.capacity_seconds += self.workers * batch_wall
        if self.on_task is not None:
            for offset, (_, busy) in enumerate(timed_results):
                self.on_task(base_index + offset, busy)
        return [result for result, _ in timed_results]

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of pool capacity spent inside tasks (0.0-1.0).

        ``busy / (workers * wall)`` summed over the pooled batches; 1.0
        means every worker was busy for every pooled batch.  GIL
        contention shows up here as apparently high utilization with no
        wall-clock win — pair this with the stage wall times.
        """
        if self.capacity_seconds <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / self.capacity_seconds)
