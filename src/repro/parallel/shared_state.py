"""Shared-memory state transport for the process-pool backend.

The thread pool shares routing state for free; a process pool must
ship it.  :class:`SharedStateChannel` is the one-way channel the
routers use: the submitting process *publishes* the mutable stage
state before each pooled batch, workers *sync* lazily at their next
task.  Three ``multiprocessing.shared_memory`` segments back it:

* a fixed control block (epoch, journal length, journal generation,
  journal capacity) — the only words workers poll;
* one packed array block holding every exported numpy array
  (demand/history grids, array-engine cost caches) at fixed offsets,
  overwritten in place on publish so workers read it zero-copy;
* a growable journal block of length-prefixed binary frames (the
  detailed grid's ownership deltas), appended on publish and replayed
  by workers from their last consumed offset.

Publishes only ever happen *between* pooled batches, while no worker
task is in flight — so workers never observe a torn write.  The
channel is deliberately not a lock-free structure; it is a batch-
synchronous mailbox.

Every segment created here is tracked in a module-level registry so
tests can assert the success *and* error paths leave nothing mapped
(:func:`active_segments`).  Worker-side attachments unregister from
``multiprocessing.resource_tracker`` immediately: the submitting
process owns the lifecycle, and a worker exiting must never reap (or
warn about) segments its parent is still using.
"""

from __future__ import annotations

import os
import itertools
import struct
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from collections.abc import Iterator, Mapping, Sequence
from typing import Optional

import numpy as np

from ..analysis.context import context

#: Control words: epoch, journal bytes used, journal generation,
#: journal capacity.  Little-endian int64 each.
_CTL = struct.Struct("<qqqq")

#: Frame header: payload byte length.
_FRAME = struct.Struct("<q")

_INITIAL_JOURNAL_CAPACITY = 1 << 16

#: Names of every live segment created by this process (owner side).
_LIVE_SEGMENTS: set[str] = set()

_CHANNEL_IDS = itertools.count()


def active_segments() -> frozenset[str]:
    """Names of shared-memory segments this process still owns.

    Empty whenever no :class:`SharedStateChannel` is live — the leak
    check the lifecycle tests assert on success and error paths.
    """
    return frozenset(_LIVE_SEGMENTS)


@dataclass(frozen=True)
class SharedArraySpec:
    """Shape/dtype contract for one exported array.

    The spec travels to workers inside the channel handle; both sides
    derive identical offsets from the spec sequence, so no offset
    table is ever transmitted.
    """

    key: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


#: What a worker needs to attach: the segment-name prefix + the specs.
ChannelHandle = tuple[str, tuple[SharedArraySpec, ...]]


def _create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    segment = shared_memory.SharedMemory(name=name, create=True, size=size)
    _LIVE_SEGMENTS.add(name)
    return segment


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # The attaching process must not adopt cleanup responsibility:
    # until Python 3.13 (``track=False``) the stdlib registers every
    # attachment with the shared resource tracker, and because the
    # tracker keeps one cache entry per name, a worker's registration
    # collides with the owner's — the first unregister (from either
    # side) orphans the other.  Ownership stays with the creating
    # process, so attachments must not register at all.
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    register = resource_tracker.register
    resource_tracker.register = lambda *_args, **_kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


class SharedStateChannel:
    """Batch-synchronous publish/sync mailbox over shared memory.

    Build with :meth:`create` in the submitting process, ship
    :attr:`handle` through the pool initializer, and :meth:`attach` in
    each worker.  The owner calls :meth:`publish` between batches;
    workers call :meth:`sync` at each task and apply whatever arrived
    since their last look.
    """

    def __init__(
        self,
        prefix: str,
        specs: tuple[SharedArraySpec, ...],
        owner: bool,
    ) -> None:
        self.prefix = prefix
        self.specs = specs
        self.owner = owner
        #: Publishes performed (owner side) — ``parallel_ipc_publishes``.
        self.publishes = 0
        #: Bytes written by publishes — ``parallel_ipc_publish_bytes``.
        self.published_bytes = 0
        self._closed = False
        self._generation = 0
        # Consumer cursor (worker side): last seen epoch + journal offset.
        self._seen_epoch = 0
        self._consumed = 0
        self._ctl: Optional[shared_memory.SharedMemory] = None
        self._arr: Optional[shared_memory.SharedMemory] = None
        self._jrn: Optional[shared_memory.SharedMemory] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    @context("canonical")
    def create(
        cls, tag: str, specs: Sequence[SharedArraySpec]
    ) -> "SharedStateChannel":
        """Owner-side constructor: allocate the backing segments."""
        prefix = f"repro-{tag}-{os.getpid()}-{next(_CHANNEL_IDS)}"
        channel = cls(prefix, tuple(specs), owner=True)
        try:
            channel._ctl = _create_segment(f"{prefix}-ctl", _CTL.size)
            channel._ctl.buf[: _CTL.size] = _CTL.pack(
                0, 0, 0, _INITIAL_JOURNAL_CAPACITY
            )
            total = sum(spec.nbytes for spec in channel.specs)
            if total:
                channel._arr = _create_segment(f"{prefix}-arr", total)
            channel._jrn = _create_segment(
                f"{prefix}-jrn0", _INITIAL_JOURNAL_CAPACITY
            )
        except Exception:
            channel.unlink()
            raise
        return channel

    @classmethod
    @context("worker-process", reads=("channel",))
    def attach(cls, handle: ChannelHandle) -> "SharedStateChannel":
        """Worker-side constructor: map the owner's segments."""
        prefix, specs = handle
        channel = cls(prefix, tuple(specs), owner=False)
        channel._ctl = _attach_segment(f"{prefix}-ctl")
        if sum(spec.nbytes for spec in specs):
            channel._arr = _attach_segment(f"{prefix}-arr")
        channel._jrn = _attach_segment(f"{prefix}-jrn0")
        return channel

    @property
    def handle(self) -> ChannelHandle:
        """What :meth:`attach` needs on the worker side."""
        return self.prefix, self.specs

    # ------------------------------------------------------------------
    # Array block layout (identical derivation on both sides)
    # ------------------------------------------------------------------
    def _array_views(self) -> dict[str, np.ndarray]:
        assert self._arr is not None
        views: dict[str, np.ndarray] = {}
        offset = 0
        for spec in self.specs:
            views[spec.key] = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self._arr.buf,
                offset=offset,
            )
            offset += spec.nbytes
        return views

    # ------------------------------------------------------------------
    # Owner side
    # ------------------------------------------------------------------
    @context("canonical", writes=("channel",))
    def publish(
        self, arrays: Mapping[str, np.ndarray], frame: bytes = b""
    ) -> int:
        """Overwrite the array block and append one journal frame.

        Must only be called while no worker task is in flight (between
        pooled batches).  Returns the new epoch.
        """
        if not self.owner:
            raise RuntimeError("publish() is owner-side only")
        assert self._ctl is not None
        epoch, used, generation, capacity = _CTL.unpack(
            bytes(self._ctl.buf[: _CTL.size])
        )
        written = 0
        if self._arr is not None:
            for key, view in self._array_views().items():
                np.copyto(view, arrays[key])
                written += view.nbytes
        needed = used + _FRAME.size + len(frame)
        if needed > capacity:
            capacity = self._grow_journal(used, max(capacity * 2, needed))
            generation = self._generation
        assert self._jrn is not None
        self._jrn.buf[used : used + _FRAME.size] = _FRAME.pack(len(frame))
        used += _FRAME.size
        if frame:
            self._jrn.buf[used : used + len(frame)] = frame
            used += len(frame)
        written += _FRAME.size + len(frame)
        epoch += 1
        self._ctl.buf[: _CTL.size] = _CTL.pack(epoch, used, generation, capacity)
        self.publishes += 1
        self.published_bytes += written
        return epoch

    def _grow_journal(self, used: int, capacity: int) -> int:
        """Move the journal to a larger segment (next generation name)."""
        assert self._jrn is not None
        self._generation += 1
        grown = _create_segment(
            f"{self.prefix}-jrn{self._generation}", capacity
        )
        try:
            grown.buf[:used] = self._jrn.buf[:used]
        except Exception:
            grown_name = grown.name
            grown.close()
            self._unlink_segment(grown, grown_name)
            raise
        old_name = self._jrn.name
        self._jrn.close()
        self._unlink_segment(self._jrn, old_name)
        self._jrn = grown
        return capacity

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    @context("worker-process", reads=("channel",))
    def sync(self) -> Optional[tuple[dict[str, np.ndarray], list[bytes]]]:
        """Adopt anything published since the last sync.

        Returns ``None`` when the epoch has not moved; otherwise the
        current array views plus the journal frames appended since the
        previous sync (oldest first).  A worker forked mid-stage sees
        *every* frame on its first sync — journal frames are absolute
        assignments, so replaying a prefix the inherited state already
        contains is idempotent.
        """
        if self.owner:
            raise RuntimeError("sync() is worker-side only")
        assert self._ctl is not None
        epoch, used, generation, _capacity = _CTL.unpack(
            bytes(self._ctl.buf[: _CTL.size])
        )
        if epoch == self._seen_epoch:
            return None
        if generation != self._generation:
            assert self._jrn is not None
            self._jrn.close()
            self._jrn = _attach_segment(f"{self.prefix}-jrn{generation}")
            self._generation = generation
        assert self._jrn is not None
        frames: list[bytes] = []
        offset = self._consumed
        while offset < used:
            (length,) = _FRAME.unpack(
                bytes(self._jrn.buf[offset : offset + _FRAME.size])
            )
            offset += _FRAME.size
            frames.append(bytes(self._jrn.buf[offset : offset + length]))
            offset += length
        self._consumed = offset
        self._seen_epoch = epoch
        arrays = self._array_views() if self._arr is not None else {}
        return arrays, frames

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _unlink_segment(
        self, segment: shared_memory.SharedMemory, name: str
    ) -> None:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass
        _LIVE_SEGMENTS.discard(name)

    def _segments(self) -> Iterator[shared_memory.SharedMemory]:
        for segment in (self._ctl, self._arr, self._jrn):
            if segment is not None:
                yield segment

    def close(self) -> None:
        """Unmap this process's views (idempotent).

        The owner also unlinks — owner teardown is total teardown.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self._segments():
            name = segment.name
            segment.close()
            if self.owner:
                self._unlink_segment(segment, name)
        self._ctl = self._arr = self._jrn = None

    def unlink(self) -> None:
        """Owner-side teardown alias (reads as intent at call sites)."""
        self.close()
