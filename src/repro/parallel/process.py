"""Process-pool execution of net batches.

The multiprocessing twin of :class:`~repro.parallel.executor.
BatchExecutor`: same submission-order results, same utilization
accounting, same ``on_task`` fan-in hook on the submitting process —
but tasks run in worker *processes*, so pure-Python search loops scale
past the GIL.

The shape differs from the thread pool in one deliberate way: the
task callable and pool initializer are installed **once** via
:meth:`ProcessBatchExecutor.configure`, and :meth:`run` takes
payloads only.  Closures over live routing state cannot cross a
process boundary; the routers instead register a module-level task
function plus an initializer that attaches each worker to the stage's
:class:`~repro.parallel.shared_state.SharedStateChannel`, and ship
tiny picklable payloads (net names) per task.

The pool context prefers ``fork`` where available: workers inherit
the stage's design/graph objects from the initializer arguments
without pickling, and later state flows through shared memory.  On
platforms without ``fork`` the ``spawn`` context works identically,
just with a pricier startup.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from collections.abc import Callable, Sequence
from typing import Any, Optional

from ..analysis.context import context
from ..analysis.pairing import paired
from .executor import validate_workers


def _pool_context() -> multiprocessing.context.BaseContext:
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    return multiprocessing.get_context(method)


@context("worker-process")
def _timed_call(
    task: Callable[[Any], Any], payload: Any
) -> tuple[Any, float]:
    """Worker-side wrapper: run one task and clock its busy time."""
    start = time.perf_counter()
    result = task(payload)
    return result, time.perf_counter() - start


class ProcessBatchExecutor:
    """Order-preserving process-pool runner with utilization accounting.

    Args:
        workers: pool size; must be at least 2 (``workers=1`` callers
            must keep the serial code path and never build a pool).
        on_task: optional per-task completion hook, called as
            ``on_task(task_index, busy_seconds)`` on the submitting
            process after each batch resolves, in submission order —
            identical semantics to the thread pool's hook.

    Unlike the thread pool there is no width-1 inline bypass: the
    routers only submit batches of width >= 2 (width-1 batches route
    inline *before* reaching any pool), so every batch here is pooled
    and every task is accounted.
    """

    #: Backend discriminator (``"thread"`` on the thread-pool twin).
    kind = "process"

    def __init__(
        self,
        workers: int,
        on_task: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        validate_workers(workers)
        self.workers = workers
        self.on_task = on_task
        self._pool: Optional[ProcessPoolExecutor] = None
        self._task: Optional[Callable[[Any], Any]] = None
        self._initializer: Optional[Callable[..., None]] = None
        self._initargs: tuple[Any, ...] = ()
        #: Tasks dispatched through the pool.
        self.tasks = 0
        #: Batches dispatched through the pool.
        self.batches = 0
        #: Summed per-task busy time (the "busy" numerator).
        self.busy_seconds = 0.0
        #: Summed ``workers * batch_wall`` (the capacity denominator).
        self.capacity_seconds = 0.0

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProcessBatchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Tear down the pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    @context("canonical")
    def configure(
        self,
        *,
        task: Callable[[Any], Any],
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple[Any, ...] = (),
    ) -> None:
        """Install the worker entry points (before the first ``run``).

        ``task`` must be a module-level function — it is shipped to
        workers by reference, never by value.  ``initializer`` runs
        once per worker process and typically attaches the shared-state
        channel.  Reconfiguring after the pool has started would leave
        live workers on the old entry points, so it is rejected.
        """
        if self._pool is not None:
            raise RuntimeError(
                "cannot reconfigure a ProcessBatchExecutor after its "
                "pool has started"
            )
        self._task = task
        self._initializer = initializer
        self._initargs = initargs

    # ------------------------------------------------------------------
    @context("canonical")
    @paired("batch-executor", backend="process")
    def run(self, payloads: Sequence[Any]) -> list[Any]:  # repro: allow-PAR006 fn via configure()
        """Run one task per payload; results in payload order.

        Worker exceptions propagate to the caller exactly as the
        serial loop would have raised them.  A worker process *dying*
        (segfault, ``SIGKILL``, interpreter abort) surfaces as a
        :class:`RuntimeError` naming the batch position — the stock
        :class:`BrokenProcessPool` says nothing about what was lost.
        """
        if self._task is None:
            raise RuntimeError(  # repro: allow-PAR004 pool-misuse guard, process-only
                "ProcessBatchExecutor.run() called before configure()"
            )
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=_pool_context(),
                initializer=self._initializer,
                initargs=self._initargs,
            )
        batch_start = time.perf_counter()
        futures = [
            self._pool.submit(_timed_call, self._task, payload)
            for payload in payloads
        ]
        timed_results: list[tuple[Any, float]] = []
        try:
            for position, future in enumerate(futures):
                try:
                    timed_results.append(future.result())
                except BrokenProcessPool as exc:
                    raise RuntimeError(
                        f"process pool worker died mid-batch (task "
                        f"{position + 1} of {len(payloads)}); the "
                        "speculative batch cannot be recovered"
                    ) from exc
        finally:
            for future in futures:
                future.cancel()
        batch_wall = time.perf_counter() - batch_start
        base_index = self.tasks
        self.batches += 1
        self.tasks += len(payloads)
        self.busy_seconds += sum(busy for _, busy in timed_results)
        self.capacity_seconds += self.workers * batch_wall
        if self.on_task is not None:
            for offset, (_, busy) in enumerate(timed_results):
                self.on_task(base_index + offset, busy)
        return [result for result, _ in timed_results]

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of pool capacity spent inside tasks (0.0-1.0).

        Same definition as the thread pool's: ``busy / (workers *
        wall)`` summed over batches.  IPC overhead (pickling payloads
        and results, shared-memory syncs) shows up as the gap between
        this and the wall-clock speedup.
        """
        if self.capacity_seconds <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / self.capacity_seconds)
