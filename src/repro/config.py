"""Global configuration for the stitch-aware routing framework.

The defaults follow the experimental setup of the paper (Section IV):

* the distance between two stitching lines is 15 routing pitches and the
  stitching lines are uniformly distributed over the layout;
* the tracks adjacent to a stitching line fall into the stitch unfriendly
  region (``epsilon = 1`` track on each side);
* the *escape region* used by the stitch-aware detailed router is the four
  tracks nearest to a stitching line (Section III-D1);
* the detailed-routing cost weights of Eq. (10) are ``alpha = 1``,
  ``beta = 10`` and ``gamma = 5``.

All distances are expressed in routing pitches (one grid unit equals one
routing pitch).
"""

from __future__ import annotations

import dataclasses
import enum
import importlib.util
import os
from typing import Union


class Engine(enum.Enum):
    """Which routing-engine implementation the flow runs on.

    Both engines execute the *same algorithms* and produce byte-identical
    :class:`~repro.eval.RoutingReport` documents (counters, histograms,
    traces modulo wall times); they differ only in their data layout:

    * ``OBJECT`` — the reference implementation: dict/tuple object
      graphs, one Python object per grid node.
    * ``ARRAY`` — the :mod:`repro.engine` array core: flat node-indexed
      base-cost/ownership arrays built once per stage and an indexed A*
      that works on integer node ids (see ``docs/performance.md``).
    * ``AUTO`` — ``ARRAY`` when numpy is importable, else ``OBJECT``.
    """

    OBJECT = "object"
    ARRAY = "array"
    AUTO = "auto"


def resolve_engine(engine: Union[Engine, str] = Engine.AUTO) -> Engine:
    """Concrete engine for a requested value.

    ``AUTO`` resolves to :attr:`Engine.ARRAY` when numpy is importable
    (it is a project dependency, so effectively always) and falls back
    to :attr:`Engine.OBJECT` on minimal installs.
    """
    if isinstance(engine, str):
        engine = Engine(engine)
    if engine is not Engine.AUTO:
        return engine
    if importlib.util.find_spec("numpy") is not None:
        return Engine.ARRAY
    return Engine.OBJECT


class ExecutorKind(enum.Enum):
    """Which worker-pool backend ``workers > 1`` runs on.

    Both backends route the same conflict-free net batches and merge
    them in canonical order, so reports, counters and stitch-line
    histograms are byte-identical across executors (and to serial):

    * ``THREAD`` — in-process thread pool; shares routing state for
      free but contends on the GIL for pure-Python search loops.
    * ``PROCESS`` — ``multiprocessing`` pool; the mutable stage state
      travels through ``multiprocessing.shared_memory`` so workers
      read it zero-copy (see ``docs/parallelism.md``).
    * ``AUTO`` — ``PROCESS`` when more than one CPU is usable, else
      ``THREAD`` (a process pool on one core pays IPC for nothing).
    """

    THREAD = "thread"
    PROCESS = "process"
    AUTO = "auto"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_executor(
    executor: Union[ExecutorKind, str] = ExecutorKind.AUTO,
) -> ExecutorKind:
    """Concrete executor backend for a requested value.

    ``AUTO`` resolves to :attr:`ExecutorKind.PROCESS` when the CPU
    affinity mask offers more than one core, else
    :attr:`ExecutorKind.THREAD`.
    """
    if isinstance(executor, str):
        executor = ExecutorKind(executor)
    if executor is not ExecutorKind.AUTO:
        return executor
    if _usable_cpus() > 1:
        return ExecutorKind.PROCESS
    return ExecutorKind.THREAD


class ColoringMethod(enum.Enum):
    """Which max-cut k-coloring heuristic layer assignment uses."""

    MST = "mst"
    FLOW = "flow"


class TrackMethod(enum.Enum):
    """Which column-panel track assignment algorithm to run."""

    BASELINE = "baseline"
    ILP = "ilp"
    GRAPH = "graph"


@dataclasses.dataclass(frozen=True)
class RouterConfig:
    """Parameters shared by every stage of the routing framework.

    Geometry/cost attributes (used by the stages through
    ``design.config``):

    Attributes:
        stitch_spacing: distance between two stitching lines, in pitches.
        epsilon: half-width of the stitch unfriendly region, in tracks.
        escape_width: width of the escape region on each side of a
            stitching line, in tracks (Section III-D1 uses four).
        tile_size: edge length of a level-0 global routing tile, in
            pitches.  Aligned to ``stitch_spacing`` by default so each
            tile boundary layout is identical.
        alpha: wirelength weight in the detailed routing cost, Eq. (10).
        beta: via-in-stitch-unfriendly-region weight in Eq. (10).
        gamma: escape-region weight in Eq. (10).  The paper requires
            ``beta`` to be much larger than ``gamma``.
        max_ripup_iterations: rip-up and re-route rounds for failed nets.
        detail_expansion_limit: A* node-expansion budget per net and
            attempt; keeps worst-case detailed routing bounded.
        engine: routing-engine implementation (:class:`Engine` or its
            string form).  ``"object"`` is the reference object-graph
            implementation, ``"array"`` the :mod:`repro.engine` array
            core, and ``"auto"`` (the default) picks the array core
            whenever numpy is importable.  Both engines produce
            byte-identical reports — the engine is a pure performance
            knob (see ``docs/performance.md``).
        workers: routing worker threads.  ``1`` (the default) runs the
            unchanged serial code path; ``N > 1`` routes conflict-free
            net batches concurrently and merges them deterministically,
            so the report is byte-identical to the serial one (see
            ``docs/parallelism.md``).
        executor: worker-pool backend for ``workers > 1``
            (:class:`ExecutorKind` or its string form).  ``"thread"``
            shares state in-process, ``"process"`` ships net batches
            to a ``multiprocessing`` pool with the stage state in
            shared memory, and ``"auto"`` (the default) picks the
            process pool only when more than one CPU is usable.  The
            backend is a pure performance knob: reports stay
            byte-identical across executors.  Ignored at ``workers=1``
            (serial routing builds no pool).
        sanitize: enable the speculation-footprint sanitizer: workers
            route against instrumented overlays that record every
            shared-state access and raise
            :class:`~repro.analysis.SanitizerViolation` on any access
            outside the declared read/write footprints (see
            ``docs/static_analysis.md``).  Adds overhead; only
            meaningful with ``workers > 1`` (serial routing does not
            speculate).
        audit: run the independent solution auditor
            (:func:`repro.analysis.audit_solution`) on the final
            result and attach its :class:`~repro.analysis.AuditReport`
            to the flow result (``FlowResult.audit``), with
            ``audit_*`` counters in the trace.  The audit re-derives
            every stitching constraint with its own geometry code and
            cross-checks the report's counters; it observes and
            reports but never alters the routing (see
            ``docs/static_analysis.md``).
        profile: engine profiling level.  ``"off"`` (the default) keeps
            the hot loops byte-identical to the committed baselines;
            ``"counters"`` flushes low-overhead engine counters (heap
            pushes/pops, overlay reads/writes, rip-up net visits,
            cost-cache refreshes) into ``perf_*`` trace counters at
            stage boundaries; ``"full"`` additionally emits per-net
            ``progress`` events through the tracer (visible when the
            tracer is a :class:`~repro.observe.StreamingTracer`).
            ``perf_*`` counters are namespaced so identity gates strip
            them (see ``docs/observability.md``).

    Stage-policy attributes (consumed by the router constructors; the
    ablation switches of Tables IV and VIII):

    Attributes:
        track_method: which short-polygon-avoiding track assignment to
            run (GRAPH by default; ILP reproduces the Table VII column
            at the documented runtime cost).
        coloring: layer-assignment coloring heuristic (FLOW = ours,
            MST = the conventional baseline).
        stitch_aware_global: include the vertex (line-end) congestion
            term of Eqs. (2)–(3) in global routing.
        stitch_aware_detail: include the beta/gamma costs and the
            stitch-aware net ordering in detailed routing.
    """

    stitch_spacing: int = 15
    epsilon: int = 1
    escape_width: int = 4
    tile_size: int = 15
    alpha: float = 1.0
    beta: float = 10.0
    gamma: float = 5.0
    max_ripup_iterations: int = 5
    detail_expansion_limit: int = 200_000
    engine: Engine = Engine.AUTO
    workers: int = 1
    executor: ExecutorKind = ExecutorKind.AUTO
    sanitize: bool = False
    audit: bool = False
    profile: str = "off"
    track_method: TrackMethod = TrackMethod.GRAPH
    coloring: ColoringMethod = ColoringMethod.FLOW
    stitch_aware_global: bool = True
    stitch_aware_detail: bool = True

    def __post_init__(self) -> None:
        # Accept the string forms of the policy enums (JSON round trips,
        # CLI flags) and normalize to the enum members.
        if isinstance(self.track_method, str):
            object.__setattr__(
                self, "track_method", TrackMethod(self.track_method)
            )
        if isinstance(self.coloring, str):
            object.__setattr__(
                self, "coloring", ColoringMethod(self.coloring)
            )
        if isinstance(self.engine, str):
            object.__setattr__(self, "engine", Engine(self.engine))
        if not isinstance(self.engine, Engine):
            raise ValueError(
                f"engine must be an Engine or one of "
                f"{[e.value for e in Engine]}, got {self.engine!r}"
            )
        if self.stitch_spacing < 3:
            raise ValueError("stitch_spacing must be at least 3 pitches")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.epsilon * 2 + 1 >= self.stitch_spacing:
            raise ValueError(
                "stitch unfriendly regions of adjacent stitching lines overlap: "
                f"epsilon={self.epsilon}, stitch_spacing={self.stitch_spacing}"
            )
        if self.tile_size < 2:
            raise ValueError("tile_size must be at least 2 pitches")
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValueError("cost weights must be non-negative")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ValueError(f"workers must be an int, got {self.workers!r}")
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if isinstance(self.executor, str):
            object.__setattr__(self, "executor", ExecutorKind(self.executor))
        if not isinstance(self.executor, ExecutorKind):
            raise ValueError(
                f"executor must be an ExecutorKind or one of "
                f"{[e.value for e in ExecutorKind]}, got {self.executor!r}"
            )
        if not isinstance(self.sanitize, bool):
            raise ValueError(f"sanitize must be a bool, got {self.sanitize!r}")
        if not isinstance(self.audit, bool):
            raise ValueError(f"audit must be a bool, got {self.audit!r}")
        if self.profile not in ("off", "counters", "full"):
            raise ValueError(
                "profile must be one of 'off', 'counters', 'full', "
                f"got {self.profile!r}"
            )


DEFAULT_CONFIG = RouterConfig()


def benchmark_scale(default: float = 0.1) -> float:
    """Return the benchmark size scale factor.

    The paper's largest circuits have tens of thousands of nets, which a
    C++ router handles in seconds but is slow in pure Python.  Benchmarks
    therefore run on size-scaled instances by default (area shrinks with
    the net count, so congestion ratios are preserved).  Set the
    environment variable ``REPRO_FULL=1`` for full-size instances, or
    ``REPRO_SCALE=<float>`` for an explicit factor.  Factors above 1
    (up to 100) grow the instance beyond the paper's statistics —
    engine-speedup measurements use them to build workloads large
    enough that wall-clock ratios are meaningful.
    """
    if os.environ.get("REPRO_FULL") == "1":
        return 1.0
    value = os.environ.get("REPRO_SCALE")
    if value is not None:
        scale = float(value)
        if not 0.0 < scale <= 100.0:
            raise ValueError(f"REPRO_SCALE must be in (0, 100], got {scale}")
        return scale
    return default
